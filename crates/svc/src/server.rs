//! The service-tier server: one thread multiplexing thousands of
//! client sockets onto one daemon — or onto the N ring shards of a
//! [`ShardedDaemon`].
//!
//! Each accepted connection (TCP or Unix-domain) is set non-blocking
//! and registered with an [`ar_net::PollSet`] — the same ppoll loop
//! the batched UDP datapath uses, at client-count scale. The loop:
//!
//! 1. polls listeners + client sockets for readability (short
//!    timeout, since daemon events arrive on channels, not fds);
//! 2. accepts new connections (refusing past `max_clients`);
//! 3. reads frames, handling Hello/Join/Leave/Publish/Ack;
//! 4. drains each session's daemon events into window-gated delivery
//!    queues and credit grants;
//! 5. flushes write buffers and evicts slow consumers per policy.
//!
//! Backpressure is end-to-end: each daemon loop publishes its ring
//! send-queue depth into [`ar_daemon::RingPressure`]; while *any*
//! shard is above the configured watermark, credit grants are
//! withheld ([`FlowState::on_ordered`]), so offered load backs off at
//! the clients instead of queueing in the daemon.
//!
//! ## Sharded mode
//!
//! With [`serve_clients_sharded`], each session registers on every
//! ring shard; joins route to the shard that owns the group
//! ([`ar_daemon::ShardMap`]), publishes are stamped with a
//! per-publisher sequence and split into one ordered message per
//! shard touched, and stamped deliveries from local publishers pass
//! through a per-connection hold-back queue ([`crate::order`]) so
//! subscribers observe each publisher's messages in publish order even
//! when consecutive publishes were ordered on different rings.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ar_core::ParticipantId;
use ar_daemon::daemon::RingPressure;
use ar_daemon::{
    ClientEvent, DaemonClient, DaemonConnector, DaemonHandle, ShardMap, ShardedDaemon, TelemetryHub,
};
use ar_net::PollSet;
use ar_telemetry::{Counter, Gauge};
use bytes::Bytes;

use crate::credit::{EvictReason, FlowConfig, FlowState};
use crate::order::HoldBack;
use crate::wire::{
    decode_client, encode_server, frame, try_frame, ClientFrame, FrameBuf, ServerFrame,
    PROTOCOL_VERSION,
};

/// Service-tier tuning.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Maximum concurrent client connections; further connects are
    /// refused at handshake.
    pub max_clients: usize,
    /// Per-session flow control (credits, windows, eviction limits).
    pub flow: FlowConfig,
    /// Withhold credit grants while the ring send queue is above this
    /// many bundles.
    pub ring_high_watermark: usize,
    /// Capacity of each session's daemon event queue.
    pub event_capacity: usize,
    /// When set, per-tier counters and gauges are registered here
    /// (exported via `/metrics` and `/snapshot`).
    pub telemetry: Option<Arc<TelemetryHub>>,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            max_clients: 2048,
            flow: FlowConfig::default(),
            ring_high_watermark: 512,
            event_capacity: ar_daemon::DEFAULT_EVENT_CAPACITY,
            telemetry: None,
        }
    }
}

/// Shared per-tier statistics (registry-backed when telemetry is on).
#[derive(Debug, Clone, Default)]
pub struct SvcStats {
    /// Currently connected clients.
    pub connected: Gauge,
    /// Sessions evicted as slow consumers.
    pub evicted: Counter,
    /// Publishes rejected for lack of credits.
    pub publish_rejects: Counter,
    /// Credit grants sent.
    pub credit_grants: Counter,
    /// Grants currently withheld by ring backpressure.
    pub deferred_grants: Gauge,
    /// Publishes accepted and forwarded to the daemon.
    pub publishes: Counter,
    /// Deliveries written to client sockets.
    pub deliveries: Counter,
    /// Handshakes refused (capacity, bad name, version mismatch).
    pub refused: Counter,
    /// Join/leave requests rejected (reported via GroupRejected).
    pub join_rejected: Counter,
    /// Stamped deliveries currently held back awaiting their
    /// publisher's cross-shard floor.
    pub holdback_held: Gauge,
}

impl SvcStats {
    fn register(hub: &TelemetryHub) -> SvcStats {
        SvcStats {
            connected: hub.registry.gauge(
                "ar_svc_clients_connected",
                "Client connections currently served by the service tier",
            ),
            evicted: hub.registry.counter(
                "ar_svc_clients_evicted_total",
                "Sessions evicted as slow consumers (pending or write-buffer overflow)",
            ),
            publish_rejects: hub.registry.counter(
                "ar_svc_publish_rejects_total",
                "Publishes rejected because the session had no credits",
            ),
            credit_grants: hub.registry.counter(
                "ar_svc_credit_grants_total",
                "Publish credits granted back to clients",
            ),
            deferred_grants: hub.registry.gauge(
                "ar_svc_credits_deferred",
                "Credit grants currently withheld by ring send-queue backpressure",
            ),
            publishes: hub.registry.counter(
                "ar_svc_publishes_total",
                "Publishes accepted and forwarded to the daemon",
            ),
            deliveries: hub.registry.counter(
                "ar_svc_deliveries_total",
                "Ordered deliveries written to client sockets",
            ),
            refused: hub.registry.counter(
                "ar_svc_refused_total",
                "Handshakes refused (capacity, duplicate or invalid name, version mismatch)",
            ),
            join_rejected: hub.registry.counter(
                "ar_svc_join_rejected_total",
                "Join/leave requests rejected (GroupRejected frames sent)",
            ),
            holdback_held: hub.registry.gauge(
                "ar_svc_holdback_held",
                "Deliveries held back awaiting a publisher's cross-shard floor",
            ),
        }
    }
}

/// Where to listen.
#[derive(Debug, Clone, Default)]
pub struct SvcListeners {
    /// TCP listen address (port 0 for ephemeral).
    pub tcp: Option<SocketAddr>,
    /// Unix-domain socket path (removed and rebound at startup,
    /// unlinked on shutdown). Ignored on non-Unix targets.
    pub uds: Option<PathBuf>,
}

/// Handle to a running service tier; dropping it stops the thread,
/// closes every session, and unlinks the Unix socket.
#[derive(Debug)]
pub struct SvcHandle {
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
    stop: Arc<AtomicBool>,
    stats: SvcStats,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl SvcHandle {
    /// The bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// Live per-tier statistics.
    pub fn stats(&self) -> &SvcStats {
        &self.stats
    }

    /// Stops the server and returns its loop result.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the server loop hit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_now()
    }

    fn shutdown_now(&mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        let result = match self.join.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("service-tier thread panicked"))),
            None => Ok(()),
        };
        #[cfg(unix)]
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

impl Drop for SvcHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_now();
    }
}

/// Starts the service tier for a single (unsharded) `daemon` on the
/// given listeners.
///
/// # Errors
///
/// Returns binding errors. Requires at least one listener.
pub fn serve_clients(
    daemon: &DaemonHandle,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    serve_shards(
        vec![daemon.connector()],
        vec![daemon.ring_pressure()],
        listeners,
        config,
    )
}

/// Starts the service tier for every ring shard of a
/// [`ShardedDaemon`]: sessions register on all shards, joins and
/// publishes route by the shard map, and the cross-shard hold-back
/// layer preserves per-publisher FIFO for locally connected
/// publishers.
///
/// # Errors
///
/// Returns binding errors. Requires at least one listener.
pub fn serve_clients_sharded(
    sharded: &ShardedDaemon,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    serve_shards(
        sharded.connectors(),
        sharded
            .shards()
            .iter()
            .map(DaemonHandle::ring_pressure)
            .collect(),
        listeners,
        config,
    )
}

fn serve_shards(
    connectors: Vec<DaemonConnector>,
    pressures: Vec<Arc<RingPressure>>,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    assert_eq!(connectors.len(), pressures.len());
    let tcp = match listeners.tcp {
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    #[cfg(unix)]
    let uds = match &listeners.uds {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    #[cfg(not(unix))]
    let uds: Option<()> = None;
    if tcp.is_none() && uds.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "service tier needs at least one listener (tcp or uds)",
        ));
    }
    let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
    let stats = match &config.telemetry {
        Some(hub) => SvcStats::register(hub),
        None => SvcStats::default(),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let mut server = Server {
        pid: connectors[0].pid(),
        map: ShardMap::new(connectors.len()),
        connectors,
        pressures,
        config,
        tcp,
        #[cfg(unix)]
        uds,
        stop: Arc::clone(&stop),
        stats: stats.clone(),
        conns: HashMap::new(),
        next_conn: 0,
        poll: PollSet::new(),
    };
    let join = std::thread::spawn(move || server.run());
    Ok(SvcHandle {
        tcp_addr,
        #[cfg(unix)]
        uds_path: listeners.uds,
        #[cfg(not(unix))]
        uds_path: None,
        stop,
        stats,
        join: Some(join),
    })
}

// ---- connection state -----------------------------------------------------

/// Either kind of client socket, unified behind non-blocking reads and
/// writes.
#[derive(Debug)]
enum Sock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Sock {
    fn fd(&self) -> i32 {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            match self {
                Sock::Tcp(s) => s.as_raw_fd(),
                Sock::Uds(s) => s.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.write(buf),
        }
    }

    fn shutdown(&self) {
        match self {
            Sock::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Sock::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Bounded outgoing byte queue with partial-write tracking.
#[derive(Debug, Default)]
struct WriteBuf {
    queue: std::collections::VecDeque<Bytes>,
    /// Bytes of the front chunk already written.
    offset: usize,
    total: usize,
}

impl WriteBuf {
    fn push(&mut self, bytes: Bytes) {
        self.total += bytes.len();
        self.queue.push_back(bytes);
    }

    fn len(&self) -> usize {
        self.total
    }

    /// Writes as much as the socket accepts. Returns `Ok(true)` when
    /// drained, `Ok(false)` on WouldBlock.
    fn flush(&mut self, sock: &mut Sock) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            match sock.write(&front[self.offset..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.offset += n;
                    self.total -= n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// A delivery body queued behind the window (the per-connection seq is
/// assigned by [`FlowState`]).
#[derive(Debug)]
struct DeliverBody {
    ring_seq: u64,
    shard: u16,
    service: ar_core::ServiceType,
    sender: ar_daemon::MemberId,
    groups: Vec<String>,
    payload: Bytes,
}

enum ConnState {
    /// Waiting for Hello.
    Handshaking,
    /// Registered with every shard daemon. The flow state is boxed to
    /// keep the per-connection enum small while handshaking sockets
    /// dominate.
    Active {
        /// The session's private name (hold-back floors are looked up
        /// by publisher name).
        name: String,
        /// One registered client per ring shard, index = shard.
        clients: Vec<DaemonClient>,
        flow: Box<FlowState<DeliverBody>>,
        /// Cross-shard per-publisher reorder queue.
        hold: HoldBack<DeliverBody>,
    },
}

struct Conn {
    sock: Sock,
    rbuf: FrameBuf,
    wbuf: WriteBuf,
    state: ConnState,
    /// Set when the session must close (after flushing `wbuf` best
    /// effort).
    dead: bool,
}

/// Queues a frame on a write buffer (free function so callers holding
/// a borrow of `conn.state` can still reach the disjoint `wbuf`
/// field).
fn push_frame(wbuf: &mut WriteBuf, frame_body: &ServerFrame) {
    wbuf.push(frame(&encode_server(frame_body)));
}

// ---- server loop ----------------------------------------------------------

struct Server {
    /// The participant id all shards present (locality test for
    /// hold-back: only locally connected publishers have floors).
    pid: ParticipantId,
    /// Group → shard placement.
    map: ShardMap,
    /// One connector per ring shard, index = shard.
    connectors: Vec<DaemonConnector>,
    /// One backpressure gauge per shard.
    pressures: Vec<Arc<RingPressure>>,
    config: SvcConfig,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    stop: Arc<AtomicBool>,
    stats: SvcStats,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    poll: PollSet,
}

impl Server {
    fn run(&mut self) -> io::Result<()> {
        while !self.stop.load(Ordering::Acquire) {
            self.poll_sockets()?;
            self.accept_new();
            self.read_all();
            self.pump_daemon_events();
            self.fill_windows();
            self.flush_all();
            self.reap();
        }
        // Graceful stop: tell every client and close.
        for (_, conn) in self.conns.iter_mut() {
            push_frame(
                &mut conn.wbuf,
                &ServerFrame::Evicted {
                    reason: "server shutting down".into(),
                },
            );
            let _ = conn.wbuf.flush(&mut conn.sock);
            conn.sock.shutdown();
        }
        self.stats.connected.set(0);
        Ok(())
    }

    /// One ppoll over listeners + every client socket. Readability
    /// results are consumed immediately by the accept/read passes; a
    /// short timeout keeps daemon-event pumping responsive (those
    /// arrive on channels the poll cannot watch).
    fn poll_sockets(&mut self) -> io::Result<()> {
        self.poll.clear();
        if let Some(l) = &self.tcp {
            use std::os::fd::AsRawFd;
            self.poll.register(l.as_raw_fd());
        }
        #[cfg(unix)]
        if let Some(l) = &self.uds {
            use std::os::fd::AsRawFd;
            self.poll.register(l.as_raw_fd());
        }
        for conn in self.conns.values() {
            self.poll.register(conn.sock.fd());
        }
        self.poll.wait(Duration::from_millis(2))?;
        Ok(())
    }

    fn accept_new(&mut self) {
        loop {
            let sock = if let Some(l) = &self.tcp {
                match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_nonblocking(true);
                        Some(Sock::Tcp(s))
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            #[cfg(unix)]
            let sock = sock.or_else(|| {
                self.uds.as_ref().and_then(|l| match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(true);
                        Some(Sock::Uds(s))
                    }
                    Err(_) => None,
                })
            });
            let Some(mut sock) = sock else { return };
            if self.conns.len() >= self.config.max_clients {
                // Best-effort refusal; the socket closes either way.
                let body = encode_server(&ServerFrame::Refused {
                    reason: "server at capacity".into(),
                });
                let _ = sock.write(&frame(&body));
                sock.shutdown();
                self.stats.refused.add(1);
                continue;
            }
            let id = self.next_conn;
            self.next_conn += 1;
            self.conns.insert(
                id,
                Conn {
                    sock,
                    rbuf: FrameBuf::new(),
                    wbuf: WriteBuf::default(),
                    state: ConnState::Handshaking,
                    dead: false,
                },
            );
        }
    }

    fn read_all(&mut self) {
        let mut chunk = [0u8; 64 * 1024];
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut frames = Vec::new();
            {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead {
                    continue;
                }
                loop {
                    match conn.sock.read(&mut chunk) {
                        Ok(0) => {
                            conn.dead = true; // peer closed
                            break;
                        }
                        Ok(n) => conn.rbuf.extend(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.rbuf.next_frame() {
                        Ok(Some(f)) => frames.push(f),
                        Ok(None) => break,
                        Err(_) => {
                            conn.dead = true; // oversized frame: cut loose
                            break;
                        }
                    }
                }
            }
            for f in frames {
                self.handle_frame(id, &f);
            }
        }
    }

    fn handle_frame(&mut self, id: u64, bytes: &[u8]) {
        let Ok(req) = decode_client(bytes) else {
            // Malformed frame: protocol error, close the session.
            if let Some(conn) = self.conns.get_mut(&id) {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Evicted {
                        reason: "protocol error".into(),
                    },
                );
                conn.dead = true;
            }
            return;
        };
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if matches!(conn.state, ConnState::Handshaking) {
            let ClientFrame::Hello { version, name } = req else {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Refused {
                        reason: "expected hello".into(),
                    },
                );
                conn.dead = true;
                self.stats.refused.add(1);
                return;
            };
            if version != PROTOCOL_VERSION {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Refused {
                        reason: format!(
                            "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                        ),
                    },
                );
                conn.dead = true;
                self.stats.refused.add(1);
                return;
            }
            // Register on every shard under the same name; dropping
            // partially connected clients unregisters them cleanly.
            let mut clients = Vec::with_capacity(self.connectors.len());
            let mut refuse = None;
            for connector in &self.connectors {
                match connector.connect_service(&name, self.config.event_capacity) {
                    Ok(client) => clients.push(client),
                    Err(e) => {
                        refuse = Some(e.to_string());
                        break;
                    }
                }
            }
            match refuse {
                None => {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::Welcome {
                            version: PROTOCOL_VERSION,
                            daemon: self.pid.as_u16(),
                            rings: self.connectors.len() as u16,
                            publish_credits: self.config.flow.publish_credits,
                            delivery_window: self.config.flow.delivery_window,
                        },
                    );
                    conn.state = ConnState::Active {
                        name,
                        clients,
                        flow: Box::new(FlowState::new(self.config.flow)),
                        hold: HoldBack::new(),
                    };
                    self.stats.connected.add(1);
                }
                Some(reason) => {
                    push_frame(&mut conn.wbuf, &ServerFrame::Refused { reason });
                    conn.dead = true;
                    self.stats.refused.add(1);
                }
            }
            return;
        }
        let ConnState::Active { clients, flow, .. } = &mut conn.state else {
            return;
        };
        match req {
            ClientFrame::Hello { .. } => {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Evicted {
                        reason: "duplicate hello".into(),
                    },
                );
                conn.dead = true;
            }
            ClientFrame::JoinGroup { group } => {
                let shard = self.map.shard_of(&group);
                if let Err(e) = clients[shard].join(&group) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::GroupRejected {
                            join: true,
                            group,
                            reason: e.to_string(),
                        },
                    );
                    self.stats.join_rejected.add(1);
                }
            }
            ClientFrame::LeaveGroup { group } => {
                let shard = self.map.shard_of(&group);
                if let Err(e) = clients[shard].leave(&group) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::GroupRejected {
                            join: false,
                            group,
                            reason: e.to_string(),
                        },
                    );
                    self.stats.join_rejected.add(1);
                }
            }
            ClientFrame::Publish {
                id: pub_id,
                service,
                groups,
                payload,
            } => {
                // One ordered message per shard the group list touches;
                // one credit and one stamp per publish regardless.
                let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                let parts = self.map.partition(&refs);
                match flow.try_consume_credit(pub_id, parts.len() as u32) {
                    Some(stamp) => {
                        let mut failed = None;
                        for (shard, part) in &parts {
                            if let Err(e) = clients[*shard].multicast_stamped(
                                part,
                                service,
                                stamp,
                                payload.clone(),
                            ) {
                                failed = Some(e.to_string());
                                break;
                            }
                        }
                        match failed {
                            None => self.stats.publishes.add(1),
                            Some(reason) => {
                                push_frame(&mut conn.wbuf, &ServerFrame::Evicted { reason });
                                conn.dead = true;
                            }
                        }
                    }
                    None => {
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::PublishReject {
                                id: pub_id,
                                reason: "no publish credits; wait for CreditGrant".into(),
                            },
                        );
                        self.stats.publish_rejects.add(1);
                    }
                }
            }
            ClientFrame::Ack { through } => {
                flow.on_ack(through);
            }
        }
    }

    /// Converts queued daemon events into frames: deliveries into the
    /// window-gated pending queue, membership/network changes straight
    /// to the write buffer, Ordered acks into credit grants (deferred
    /// while the ring is congested).
    fn pump_daemon_events(&mut self) {
        let congested = self
            .pressures
            .iter()
            .any(|p| p.send_queue_depth() > self.config.ring_high_watermark);
        // Publisher floors are snapshotted BEFORE the drain pass: a
        // floor observed now is only safe to release against once all
        // shard queues that could hold earlier stamps are drained (see
        // `crate::order` for the invariant).
        let mut floors: HashMap<String, u64> = HashMap::new();
        for conn in self.conns.values() {
            if conn.dead {
                continue;
            }
            if let ConnState::Active { name, flow, .. } = &conn.state {
                floors.insert(name.clone(), flow.ordered_through());
            }
        }
        let single_ring = self.connectors.len() == 1;
        let mut deferred_delta: i64 = 0;
        let mut held_delta: i64 = 0;
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            let ConnState::Active {
                clients,
                flow,
                hold,
                ..
            } = &mut conn.state
            else {
                continue;
            };
            let held_before = hold.held_len() as i64;
            let mut evict_reason = None;
            'shards: for (shard, client) in clients.iter_mut().enumerate() {
                for ev in client.drain() {
                    match ev {
                        ClientEvent::Message {
                            sender,
                            groups,
                            service,
                            ring_seq,
                            stamp,
                            payload,
                        } => {
                            let body = DeliverBody {
                                shard: shard as u16,
                                ring_seq,
                                service,
                                sender,
                                groups,
                                payload,
                            };
                            // Hold back only stamped traffic from
                            // publishers connected to this tier: only
                            // they have a floor that will advance.
                            // Single-ring mode needs no hold-back at
                            // all — one ring is already an order.
                            let local = body.sender.daemon == self.pid
                                && floors.contains_key(&body.sender.client);
                            if single_ring || stamp == 0 || !local {
                                if let Err(reason) = flow.queue_delivery(body) {
                                    evict_reason = Some(reason);
                                    break 'shards;
                                }
                            } else {
                                let publisher = body.sender.client.clone();
                                if hold.insert(&publisher, stamp, body)
                                    && hold.held_len() + flow.pending_len()
                                        > self.config.flow.max_pending
                                {
                                    evict_reason = Some(EvictReason::PendingOverflow);
                                    break 'shards;
                                }
                            }
                        }
                        ClientEvent::Ordered { stamp, .. } => {
                            let before = flow.deferred_len() as i64;
                            for acked_id in flow.on_ordered(stamp, congested) {
                                push_frame(
                                    &mut conn.wbuf,
                                    &ServerFrame::CreditGrant {
                                        acked_id,
                                        credits: 1,
                                    },
                                );
                                self.stats.credit_grants.add(1);
                            }
                            deferred_delta += flow.deferred_len() as i64 - before;
                        }
                        ClientEvent::Membership { group, members } => {
                            push_frame(&mut conn.wbuf, &ServerFrame::Membership { group, members });
                        }
                        ClientEvent::NetworkChange { daemons } => {
                            push_frame(
                                &mut conn.wbuf,
                                &ServerFrame::NetworkChange {
                                    daemons: daemons.iter().map(|d| d.as_u16()).collect(),
                                },
                            );
                        }
                    }
                }
            }
            // Every shard queue drained: release what the snapshotted
            // floors cover, in per-publisher stamp order.
            if evict_reason.is_none() && !single_ring {
                for body in hold.release(|publisher| floors.get(publisher).copied()) {
                    if let Err(reason) = flow.queue_delivery(body) {
                        evict_reason = Some(reason);
                        break;
                    }
                }
            }
            held_delta += hold.held_len() as i64 - held_before;
            // Congestion cleared: release withheld credits.
            if !congested && flow.deferred_len() > 0 {
                let ids = flow.flush_deferred();
                deferred_delta -= ids.len() as i64;
                for acked_id in ids {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::CreditGrant {
                            acked_id,
                            credits: 1,
                        },
                    );
                    self.stats.credit_grants.add(1);
                }
            }
            if let Some(reason) = evict_reason {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Evicted {
                        reason: reason.as_str().into(),
                    },
                );
                conn.dead = true;
                self.stats.evicted.add(1);
            }
        }
        if deferred_delta != 0 {
            self.stats.deferred_grants.add(deferred_delta);
        }
        if held_delta != 0 {
            self.stats.holdback_held.add(held_delta);
        }
    }

    /// Moves window-eligible deliveries into write buffers.
    fn fill_windows(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            let ConnState::Active { flow, .. } = &mut conn.state else {
                continue;
            };
            let mut sent = 0u64;
            while let Some(p) = flow.next_sendable() {
                let b = p.item;
                let body = encode_server(&ServerFrame::Deliver {
                    seq: p.seq,
                    ring_seq: b.ring_seq,
                    shard: b.shard,
                    service: b.service,
                    sender: b.sender,
                    groups: b.groups,
                    payload: b.payload,
                });
                match try_frame(&body) {
                    Ok(framed) => {
                        conn.wbuf.push(framed);
                        sent += 1;
                    }
                    Err(e) => {
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::Evicted {
                                reason: e.to_string(),
                            },
                        );
                        conn.dead = true;
                        self.stats.evicted.add(1);
                        break;
                    }
                }
            }
            if sent > 0 {
                self.stats.deliveries.add(sent);
            }
        }
    }

    fn flush_all(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.wbuf.len() == 0 {
                continue;
            }
            match conn.wbuf.flush(&mut conn.sock) {
                Ok(_) => {
                    if conn.dead {
                        continue;
                    }
                    let overflow = match &conn.state {
                        ConnState::Active { flow, .. } => {
                            flow.check_write_buffer(conn.wbuf.len()).err()
                        }
                        ConnState::Handshaking => None,
                    };
                    if let Some(reason) = overflow {
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::Evicted {
                                reason: reason.as_str().into(),
                            },
                        );
                        conn.dead = true;
                        self.stats.evicted.add(1);
                    }
                }
                Err(_) => conn.dead = true,
            }
        }
    }

    /// Closes dead sessions. Dropping the [`DaemonClient`] unregisters
    /// at the daemon, which submits ordered leaves for every group the
    /// client was in — other members see a clean membership change.
    fn reap(&mut self) {
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            if let Some(mut conn) = self.conns.remove(&id) {
                // Last chance for the Evicted frame to reach the peer.
                let _ = conn.wbuf.flush(&mut conn.sock);
                conn.sock.shutdown();
                if let ConnState::Active { hold, .. } = &conn.state {
                    self.stats.connected.add(-1);
                    let held = hold.held_len() as i64;
                    if held != 0 {
                        self.stats.holdback_held.add(-held);
                    }
                }
            }
        }
    }
}
