//! The versioned client service-tier wire protocol.
//!
//! Frames are length-prefixed: a `u32` big-endian length, then a kind
//! byte and fields. Strings carry a `u16` length and must be valid
//! UTF-8. The codec is total: any byte sequence either decodes to a
//! frame or returns an error — it never panics, no matter how the
//! input was truncated or flipped (property-tested in
//! `tests/svc_wire_props.rs`).
//!
//! Unlike the legacy session protocol (`ar_daemon::session`), this
//! protocol is explicitly versioned (Hello/Welcome exchange a version
//! number) and carries the flow-control machinery: client-assigned
//! publish ids, per-connection delivery sequence numbers for window
//! acking, credit grants, and eviction notices.

use std::io;

use ar_core::ServiceType;
use ar_daemon::proto::{MAX_GROUPS, MAX_NAME};
use ar_daemon::MemberId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current protocol version, exchanged in Hello/Welcome.
///
/// Version 2 (sharded multi-ring): `Welcome` carries the ring count,
/// `Deliver` carries the ordering shard, and `GroupRejected` reports
/// failed join/leave requests instead of silently dropping them.
///
/// Version 3 (session resumption): `Hello` optionally carries a
/// [`ResumeToken`] (session id + epoch + last-acked delivery cursor),
/// `Welcome` returns the session identity, whether the resume was
/// honoured, and the server's retained-delivery range; `Goodbye`
/// distinguishes a deliberate close (session torn down immediately)
/// from a connection drop (session parked for the resume grace
/// period).
pub const PROTOCOL_VERSION: u16 = 3;

/// Frames larger than this are rejected (16 MiB; large application
/// messages are fragmented by the daemon, not by this tier).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Largest encoded Publish body a client may send. Strictly below
/// [`MAX_FRAME`]: the matching Deliver re-frames the same payload with
/// sender, groups, and sequencing headers on top, and must itself stay
/// under the frame cap.
pub const MAX_PUBLISH_BODY: usize = MAX_FRAME - 4096;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> io::Result<String> {
    if buf.len() < 2 {
        return Err(bad("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(bad("truncated string"));
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| bad("invalid utf-8"))?;
    let out = s.to_string();
    buf.advance(len);
    Ok(out)
}

fn take_groups(buf: &mut &[u8]) -> io::Result<Vec<String>> {
    if buf.len() < 2 {
        return Err(bad("truncated group count"));
    }
    let n = buf.get_u16() as usize;
    if n > MAX_GROUPS {
        return Err(bad("too many groups"));
    }
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        let g = take_str(buf)?;
        if g.is_empty() || g.len() > MAX_NAME {
            return Err(bad("bad group name"));
        }
        groups.push(g);
    }
    Ok(groups)
}

fn take_payload(buf: &mut &[u8]) -> io::Result<Bytes> {
    if buf.len() < 4 {
        return Err(bad("truncated payload length"));
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(bad("truncated payload"));
    }
    let payload = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Ok(payload)
}

fn take_u64(buf: &mut &[u8]) -> io::Result<u64> {
    if buf.len() < 8 {
        return Err(bad("truncated u64"));
    }
    Ok(buf.get_u64())
}

fn take_u32(buf: &mut &[u8]) -> io::Result<u32> {
    if buf.len() < 4 {
        return Err(bad("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn take_u16(buf: &mut &[u8]) -> io::Result<u16> {
    if buf.len() < 2 {
        return Err(bad("truncated u16"));
    }
    Ok(buf.get_u16())
}

/// Proof of a previous session, presented in
/// [`ClientFrame::Hello`] to resume it after a connection drop.
///
/// The server honours the token only while the session is parked (or
/// still nominally attached to a half-dead socket) **and** the epoch
/// matches the session's current attach generation — a stale token
/// from an older connection cannot hijack a session that has since
/// been resumed elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeToken {
    /// Server-assigned session id (from [`ServerFrame::Welcome`]).
    pub session: u64,
    /// Attach generation; bumped by the server on every successful
    /// attach and returned in the Welcome.
    pub epoch: u64,
    /// Highest delivery sequence the client has consumed — the
    /// redelivery cursor. The server replays retained deliveries
    /// strictly above it.
    pub acked_through: u64,
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// Handshake: protocol version and requested private name.
    Hello {
        /// The client's protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// Requested private name (1..=[`MAX_NAME`] bytes).
        name: String,
        /// When set, resume the identified parked session instead of
        /// starting fresh.
        resume: Option<ResumeToken>,
    },
    /// Join a group.
    JoinGroup {
        /// Group name.
        group: String,
    },
    /// Leave a group.
    LeaveGroup {
        /// Group name.
        group: String,
    },
    /// Multicast to groups. Consumes one publish credit; the server
    /// echoes `id` back in the matching [`ServerFrame::CreditGrant`]
    /// (or [`ServerFrame::PublishReject`]).
    Publish {
        /// Client-assigned id, strictly increasing per connection.
        id: u64,
        /// Delivery service level.
        service: ServiceType,
        /// Target groups.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// Consumer progress: every delivery with `seq <= through` has
    /// been consumed, opening delivery-window space.
    Ack {
        /// Highest consumed per-connection delivery sequence.
        through: u64,
    },
    /// Deliberate close: the server tears the session down immediately
    /// (ordered leaves for every joined group) instead of parking it
    /// for the resume grace period.
    Goodbye,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFrame {
    /// Handshake accepted; flow-control parameters for this session.
    Welcome {
        /// The server's protocol version.
        version: u16,
        /// The daemon id the client is attached to.
        daemon: u16,
        /// Ring shards the daemon drives (1 = unsharded).
        rings: u16,
        /// Initial publish credits.
        publish_credits: u32,
        /// Delivery window: maximum unacked deliveries in flight.
        delivery_window: u32,
        /// Server-assigned session id — half of the resume token.
        session: u64,
        /// Attach generation (1 on a fresh session; bumped per
        /// successful resume). The other half of the resume token.
        epoch: u64,
        /// True when a presented [`ResumeToken`] was honoured: the
        /// delivery stream continues from the client's cursor. False
        /// on a fresh session (including a rejected resume falling
        /// back to fresh — the client must treat continuity as lost).
        resumed: bool,
        /// Lowest retained delivery sequence the server will replay
        /// (`acked + 1`). On a fresh session this is 1.
        retained_lo: u64,
        /// Highest delivery sequence the server has sent (the top of
        /// the retained range; `retained_hi < retained_lo` means
        /// nothing is retained).
        retained_hi: u64,
    },
    /// Handshake rejected.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// A totally ordered message.
    Deliver {
        /// Per-connection delivery sequence (1-based, contiguous),
        /// acked with [`ClientFrame::Ack`].
        seq: u64,
        /// The ring sequence the message was ordered at (the
        /// total-order position *within its shard*; bundled messages
        /// share it).
        ring_seq: u64,
        /// The ring shard that ordered the message. `(shard,
        /// ring_seq)` is the message's global position coordinate;
        /// ring sequences from different shards are not comparable.
        shard: u16,
        /// Delivery service level.
        service: ServiceType,
        /// The sending client.
        sender: MemberId,
        /// The groups the message was addressed to.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// Group membership changed.
    Membership {
        /// The group.
        group: String,
        /// Complete new membership, canonical order.
        members: Vec<MemberId>,
    },
    /// Ring configuration changed.
    NetworkChange {
        /// Daemons in the new regular configuration.
        daemons: Vec<u16>,
    },
    /// One publish reached Agreed order; its credit is returned.
    CreditGrant {
        /// The client-assigned id of the publish that completed.
        acked_id: u64,
        /// Credits returned (usually 1; more after a backpressure
        /// episode drains).
        credits: u32,
    },
    /// A publish was refused (no credits / invalid); no credit was
    /// consumed and the message was not sent.
    PublishReject {
        /// The client-assigned id of the rejected publish.
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The server is closing this session (slow consumer, shutdown).
    Evicted {
        /// Human-readable reason.
        reason: String,
    },
    /// A join or leave request failed; the session stays open and the
    /// group state is unchanged.
    GroupRejected {
        /// True for a failed join, false for a failed leave.
        join: bool,
        /// The group the request named.
        group: String,
        /// Human-readable reason.
        reason: String,
    },
}

/// Encodes a client frame (without the length prefix).
pub fn encode_client(frame: &ClientFrame) -> Bytes {
    let mut buf = BytesMut::new();
    match frame {
        ClientFrame::Hello {
            version,
            name,
            resume,
        } => {
            buf.put_u8(1);
            buf.put_u16(*version);
            put_str(&mut buf, name);
            match resume {
                None => buf.put_u8(0),
                Some(t) => {
                    buf.put_u8(1);
                    buf.put_u64(t.session);
                    buf.put_u64(t.epoch);
                    buf.put_u64(t.acked_through);
                }
            }
        }
        ClientFrame::JoinGroup { group } => {
            buf.put_u8(2);
            put_str(&mut buf, group);
        }
        ClientFrame::LeaveGroup { group } => {
            buf.put_u8(3);
            put_str(&mut buf, group);
        }
        ClientFrame::Publish {
            id,
            service,
            groups,
            payload,
        } => {
            buf.put_u8(4);
            buf.put_u64(*id);
            buf.put_u8(service.as_u8());
            buf.put_u16(groups.len() as u16);
            for g in groups {
                put_str(&mut buf, g);
            }
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
        ClientFrame::Ack { through } => {
            buf.put_u8(5);
            buf.put_u64(*through);
        }
        ClientFrame::Goodbye => {
            buf.put_u8(6);
        }
    }
    buf.freeze()
}

/// Decodes a client frame.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed input (never panics).
pub fn decode_client(mut buf: &[u8]) -> io::Result<ClientFrame> {
    if buf.is_empty() {
        return Err(bad("empty frame"));
    }
    match buf.get_u8() {
        1 => {
            let version = take_u16(&mut buf)?;
            let name = take_str(&mut buf)?;
            if name.is_empty() || name.len() > MAX_NAME {
                return Err(bad("bad client name"));
            }
            if buf.is_empty() {
                return Err(bad("truncated resume flag"));
            }
            let resume = match buf.get_u8() {
                0 => None,
                1 => Some(ResumeToken {
                    session: take_u64(&mut buf)?,
                    epoch: take_u64(&mut buf)?,
                    acked_through: take_u64(&mut buf)?,
                }),
                _ => return Err(bad("bad resume flag")),
            };
            Ok(ClientFrame::Hello {
                version,
                name,
                resume,
            })
        }
        2 => Ok(ClientFrame::JoinGroup {
            group: take_str(&mut buf)?,
        }),
        3 => Ok(ClientFrame::LeaveGroup {
            group: take_str(&mut buf)?,
        }),
        4 => {
            let id = take_u64(&mut buf)?;
            if buf.is_empty() {
                return Err(bad("truncated service"));
            }
            let service = ServiceType::from_u8(buf.get_u8()).ok_or_else(|| bad("bad service"))?;
            let groups = take_groups(&mut buf)?;
            let payload = take_payload(&mut buf)?;
            Ok(ClientFrame::Publish {
                id,
                service,
                groups,
                payload,
            })
        }
        5 => Ok(ClientFrame::Ack {
            through: take_u64(&mut buf)?,
        }),
        6 => Ok(ClientFrame::Goodbye),
        _ => Err(bad("unknown client frame kind")),
    }
}

/// Encodes a server frame (without the length prefix).
pub fn encode_server(frame: &ServerFrame) -> Bytes {
    let mut buf = BytesMut::new();
    match frame {
        ServerFrame::Welcome {
            version,
            daemon,
            rings,
            publish_credits,
            delivery_window,
            session,
            epoch,
            resumed,
            retained_lo,
            retained_hi,
        } => {
            buf.put_u8(1);
            buf.put_u16(*version);
            buf.put_u16(*daemon);
            buf.put_u16(*rings);
            buf.put_u32(*publish_credits);
            buf.put_u32(*delivery_window);
            buf.put_u64(*session);
            buf.put_u64(*epoch);
            buf.put_u8(u8::from(*resumed));
            buf.put_u64(*retained_lo);
            buf.put_u64(*retained_hi);
        }
        ServerFrame::Refused { reason } => {
            buf.put_u8(2);
            put_str(&mut buf, reason);
        }
        ServerFrame::Deliver {
            seq,
            ring_seq,
            shard,
            service,
            sender,
            groups,
            payload,
        } => {
            buf.put_u8(3);
            buf.put_u64(*seq);
            buf.put_u64(*ring_seq);
            buf.put_u16(*shard);
            buf.put_u8(service.as_u8());
            buf.put_u16(sender.daemon.as_u16());
            put_str(&mut buf, &sender.client);
            buf.put_u16(groups.len() as u16);
            for g in groups {
                put_str(&mut buf, g);
            }
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
        ServerFrame::Membership { group, members } => {
            buf.put_u8(4);
            put_str(&mut buf, group);
            buf.put_u16(members.len() as u16);
            for m in members {
                buf.put_u16(m.daemon.as_u16());
                put_str(&mut buf, &m.client);
            }
        }
        ServerFrame::NetworkChange { daemons } => {
            buf.put_u8(5);
            buf.put_u16(daemons.len() as u16);
            for d in daemons {
                buf.put_u16(*d);
            }
        }
        ServerFrame::CreditGrant { acked_id, credits } => {
            buf.put_u8(6);
            buf.put_u64(*acked_id);
            buf.put_u32(*credits);
        }
        ServerFrame::PublishReject { id, reason } => {
            buf.put_u8(7);
            buf.put_u64(*id);
            put_str(&mut buf, reason);
        }
        ServerFrame::Evicted { reason } => {
            buf.put_u8(8);
            put_str(&mut buf, reason);
        }
        ServerFrame::GroupRejected {
            join,
            group,
            reason,
        } => {
            buf.put_u8(9);
            buf.put_u8(u8::from(*join));
            put_str(&mut buf, group);
            put_str(&mut buf, reason);
        }
    }
    buf.freeze()
}

/// Decodes a server frame.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed input (never panics).
pub fn decode_server(mut buf: &[u8]) -> io::Result<ServerFrame> {
    use ar_core::ParticipantId;
    if buf.is_empty() {
        return Err(bad("empty frame"));
    }
    match buf.get_u8() {
        1 => {
            let version = take_u16(&mut buf)?;
            let daemon = take_u16(&mut buf)?;
            let rings = take_u16(&mut buf)?;
            let publish_credits = take_u32(&mut buf)?;
            let delivery_window = take_u32(&mut buf)?;
            let session = take_u64(&mut buf)?;
            let epoch = take_u64(&mut buf)?;
            if buf.is_empty() {
                return Err(bad("truncated resumed flag"));
            }
            let resumed = buf.get_u8() != 0;
            Ok(ServerFrame::Welcome {
                version,
                daemon,
                rings,
                publish_credits,
                delivery_window,
                session,
                epoch,
                resumed,
                retained_lo: take_u64(&mut buf)?,
                retained_hi: take_u64(&mut buf)?,
            })
        }
        2 => Ok(ServerFrame::Refused {
            reason: take_str(&mut buf)?,
        }),
        3 => {
            let seq = take_u64(&mut buf)?;
            let ring_seq = take_u64(&mut buf)?;
            let shard = take_u16(&mut buf)?;
            if buf.is_empty() {
                return Err(bad("truncated service"));
            }
            let service = ServiceType::from_u8(buf.get_u8()).ok_or_else(|| bad("bad service"))?;
            let daemon = ParticipantId::new(take_u16(&mut buf)?);
            let client = take_str(&mut buf)?;
            let groups = take_groups(&mut buf)?;
            let payload = take_payload(&mut buf)?;
            Ok(ServerFrame::Deliver {
                seq,
                ring_seq,
                shard,
                service,
                sender: MemberId::new(daemon, client),
                groups,
                payload,
            })
        }
        4 => {
            let group = take_str(&mut buf)?;
            let n = take_u16(&mut buf)? as usize;
            let mut members = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let d = ParticipantId::new(take_u16(&mut buf)?);
                let c = take_str(&mut buf)?;
                members.push(MemberId::new(d, c));
            }
            Ok(ServerFrame::Membership { group, members })
        }
        5 => {
            let n = take_u16(&mut buf)? as usize;
            let mut daemons = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                daemons.push(take_u16(&mut buf)?);
            }
            Ok(ServerFrame::NetworkChange { daemons })
        }
        6 => Ok(ServerFrame::CreditGrant {
            acked_id: take_u64(&mut buf)?,
            credits: take_u32(&mut buf)?,
        }),
        7 => Ok(ServerFrame::PublishReject {
            id: take_u64(&mut buf)?,
            reason: take_str(&mut buf)?,
        }),
        8 => Ok(ServerFrame::Evicted {
            reason: take_str(&mut buf)?,
        }),
        9 => {
            if buf.is_empty() {
                return Err(bad("truncated rejection"));
            }
            let join = buf.get_u8() != 0;
            Ok(ServerFrame::GroupRejected {
                join,
                group: take_str(&mut buf)?,
                reason: take_str(&mut buf)?,
            })
        }
        _ => Err(bad("unknown server frame kind")),
    }
}

/// Prepends the `u32` big-endian length prefix to an encoded frame.
///
/// Debug builds assert the [`MAX_FRAME`] bound — a frame above it
/// would be rejected by every peer's [`FrameBuf`] (and a body above
/// `u32::MAX` would silently truncate the prefix). Callers that can
/// legitimately see oversized bodies (payloads near the cap plus
/// header overhead) must use [`try_frame`] instead.
pub fn frame(body: &[u8]) -> Bytes {
    debug_assert!(
        body.len() <= MAX_FRAME,
        "frame body {} exceeds MAX_FRAME {MAX_FRAME}",
        body.len()
    );
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(body);
    buf.freeze()
}

/// As [`frame`], but returns an error for bodies above [`MAX_FRAME`]
/// instead of producing a frame every peer rejects.
///
/// # Errors
///
/// Returns `InvalidData` when the body exceeds the bound.
pub fn try_frame(body: &[u8]) -> io::Result<Bytes> {
    if body.len() > MAX_FRAME {
        return Err(bad("frame body exceeds MAX_FRAME"));
    }
    Ok(frame(body))
}

/// Incremental frame extraction from a growing byte stream.
///
/// Feed raw socket bytes with [`extend`](FrameBuf::extend); pop
/// complete frames (length prefix stripped) with
/// [`next_frame`](FrameBuf::next_frame). Oversized length prefixes are
/// an error so a corrupt peer cannot make the buffer grow unboundedly.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix; compacted lazily to amortise the memmove.
    head: usize,
}

impl FrameBuf {
    /// Creates an empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame tail).
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the next complete frame, or `None` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the length prefix exceeds
    /// [`MAX_FRAME`].
    pub fn next_frame(&mut self) -> io::Result<Option<Bytes>> {
        let avail = &self.buf[self.head..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(bad("frame too large"));
        }
        if avail.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&avail[4..4 + len]);
        self.head += 4 + len;
        Ok(Some(frame))
    }

    /// Drops the consumed prefix once it dominates the buffer.
    fn compact(&mut self) {
        if self.head > 0 && self.head >= self.buf.len() / 2 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::ParticipantId;

    fn client_frames() -> Vec<ClientFrame> {
        vec![
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
                name: "alice".into(),
                resume: None,
            },
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
                name: "alice".into(),
                resume: Some(ResumeToken {
                    session: 0xdead_beef_cafe,
                    epoch: 3,
                    acked_through: 4096,
                }),
            },
            ClientFrame::JoinGroup { group: "g".into() },
            ClientFrame::LeaveGroup { group: "g".into() },
            ClientFrame::Publish {
                id: 9,
                service: ServiceType::Agreed,
                groups: vec!["a".into(), "b".into()],
                payload: Bytes::from_static(b"payload"),
            },
            ClientFrame::Ack { through: 1234 },
            ClientFrame::Goodbye,
        ]
    }

    fn server_frames() -> Vec<ServerFrame> {
        vec![
            ServerFrame::Welcome {
                version: PROTOCOL_VERSION,
                daemon: 3,
                rings: 4,
                publish_credits: 64,
                delivery_window: 256,
                session: 0x1122_3344_5566_7788,
                epoch: 2,
                resumed: true,
                retained_lo: 17,
                retained_hi: 40,
            },
            ServerFrame::Refused {
                reason: "nope".into(),
            },
            ServerFrame::Deliver {
                seq: 1,
                ring_seq: 77,
                shard: 2,
                service: ServiceType::Safe,
                sender: MemberId::new(ParticipantId::new(1), "bob"),
                groups: vec!["g".into()],
                payload: Bytes::from_static(b"hi"),
            },
            ServerFrame::Membership {
                group: "g".into(),
                members: vec![
                    MemberId::new(ParticipantId::new(0), "a"),
                    MemberId::new(ParticipantId::new(1), "b"),
                ],
            },
            ServerFrame::NetworkChange {
                daemons: vec![0, 1, 2],
            },
            ServerFrame::CreditGrant {
                acked_id: 9,
                credits: 1,
            },
            ServerFrame::PublishReject {
                id: 10,
                reason: "no credits".into(),
            },
            ServerFrame::Evicted {
                reason: "slow consumer".into(),
            },
            ServerFrame::GroupRejected {
                join: true,
                group: "g".into(),
                reason: "daemon down".into(),
            },
        ]
    }

    #[test]
    fn client_frames_roundtrip() {
        for f in client_frames() {
            let enc = encode_client(&f);
            assert_eq!(decode_client(&enc).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_roundtrip() {
        for f in server_frames() {
            let enc = encode_server(&f);
            assert_eq!(decode_server(&enc).unwrap(), f);
        }
    }

    #[test]
    fn truncations_error_cleanly() {
        for f in client_frames() {
            let enc = encode_client(&f);
            for cut in 0..enc.len() {
                assert!(decode_client(&enc[..cut]).is_err(), "client cut {cut}");
            }
        }
        for f in server_frames() {
            let enc = encode_server(&f);
            for cut in 0..enc.len() {
                assert!(decode_server(&enc[..cut]).is_err(), "server cut {cut}");
            }
        }
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let a = encode_client(&ClientFrame::Ack { through: 5 });
        let b = encode_client(&ClientFrame::JoinGroup { group: "g".into() });
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame(&a));
        stream.extend_from_slice(&frame(&b));
        // Feed one byte at a time: frames pop exactly at boundaries.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for byte in stream {
            fb.extend(&[byte]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], a);
        assert_eq!(got[1], b);
        assert!(fb.is_empty());
    }

    #[test]
    fn frame_buf_rejects_oversized_prefix() {
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn try_frame_enforces_the_bound() {
        assert!(try_frame(&[0u8; 16]).is_ok());
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(try_frame(&big).is_err());
    }
}
