//! # ar-svc — the client service tier
//!
//! One daemon, thousands of flow-controlled clients. This crate turns
//! the in-process [`ar_daemon`] client API into a network service:
//!
//! * a versioned, length-prefixed wire protocol ([`wire`]) spoken over
//!   TCP and Unix-domain sockets — Hello/Welcome handshake, group
//!   join/leave, credit-controlled Publish, windowed Deliver with the
//!   delivery level and global ring sequence, CreditGrant and Ack;
//! * a connection multiplexer ([`server`]) that registers every client
//!   socket with one [`ar_net::PollSet`] and services them all from a
//!   single thread, bridging frames to per-session [`DaemonClient`]s;
//! * per-client flow control ([`credit`]) in both directions: publish
//!   credits replenished as messages reach Agreed order (withheld while
//!   the ring send queue is backpressured), and delivery windows so a
//!   slow consumer buffers boundedly and is evicted by policy rather
//!   than stalling the daemon or its neighbours;
//! * cross-shard per-publisher ordering ([`order`]) for sharded
//!   multi-ring daemons: publishes carry a per-publisher stamp and a
//!   subscriber's stamped deliveries are held back until the
//!   publisher's earlier publishes are agreed on every shard, so
//!   per-publisher FIFO survives group placement across rings;
//! * a client library ([`client`]) used by `arclient`, the tests, and
//!   `ar-bench loadgen` — with automatic reconnect-and-resume: the
//!   server parks a disconnected session for a grace period and the
//!   client redials with jittered backoff, presents a resume token,
//!   replays unacked publishes (deduplicated server-side), and
//!   suppresses re-delivered duplicates, keeping delivery exactly-once
//!   and gap-free per publisher across connection and daemon chaos.
//!
//! [`DaemonClient`]: ar_daemon::DaemonClient

#![warn(missing_docs)]

pub mod client;
pub mod credit;
pub mod order;
pub mod server;
pub mod wire;

pub use client::{PublishError, ResumePolicy, SvcClient, SvcEvent};
pub use credit::{DedupWindow, EvictReason, FlowConfig, FlowState, Offer};
pub use order::HoldBack;
pub use server::{
    serve_clients, serve_clients_sharded, SvcConfig, SvcHandle, SvcListeners, SvcStats,
};
pub use wire::{ClientFrame, ResumeToken, ServerFrame, PROTOCOL_VERSION};
