//! `arclient` — interactive client for an Accelerated Ring daemon
//! (the `spuser` analog).
//!
//! Speaks the flow-controlled service-tier protocol by default;
//! `--legacy` falls back to the original line protocol.
//!
//! Dropped connections are redialed automatically with jittered
//! backoff and the session resumed (exactly-once delivery across the
//! seam); `--no-resume` restores the old exit-on-disconnect behavior.
//!
//! ```text
//! usage: arclient [--legacy] [--no-resume] [--uds PATH] [<daemon-host:port>] <name>
//!
//! commands:
//!   join <group>
//!   leave <group>
//!   send <group>[,<group>...] <text>        (agreed delivery)
//!   sends <group>[,<group>...] <text>       (safe delivery)
//!   credits                                 (show flow-control state)
//!   quit
//! ```
//!
//! Incoming messages print with their delivery level and global ring
//! sequence as they arrive.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use ar_core::ServiceType;
use ar_daemon::{ClientEvent, RemoteClient};
use ar_svc::{PublishError, ResumePolicy, SvcClient, SvcEvent};
use bytes::Bytes;

const USAGE: &str =
    "usage: arclient [--legacy] [--no-resume] [--uds PATH] [<daemon-host:port>] <name>";

fn main() -> ExitCode {
    let mut legacy = false;
    let mut no_resume = false;
    let mut uds: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--legacy" {
            legacy = true;
        } else if arg == "--no-resume" {
            no_resume = true;
        } else if arg == "--uds" {
            match args.next() {
                Some(p) => uds = Some(p),
                None => {
                    eprintln!("arclient: --uds requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(p) = arg.strip_prefix("--uds=") {
            uds = Some(p.to_string());
        } else {
            positional.push(arg);
        }
    }

    if legacy {
        let (Some(addr), Some(name)) = (positional.first(), positional.get(1)) else {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        };
        let addr = match addr.parse() {
            Ok(a) => a,
            Err(_) => {
                eprintln!("arclient: invalid address '{addr}'");
                return ExitCode::from(2);
            }
        };
        return run_legacy(addr, name);
    }

    let (addr, name) = match (&uds, positional.as_slice()) {
        (Some(_), [name]) => (None, name.clone()),
        (None, [addr, name]) => (Some(addr.clone()), name.clone()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let client = if let Some(path) = &uds {
        SvcClient::connect_uds(path, &name)
    } else {
        let addr = match addr.as_deref().unwrap().parse() {
            Ok(a) => a,
            Err(_) => {
                eprintln!("arclient: invalid address");
                return ExitCode::from(2);
            }
        };
        SvcClient::connect_tcp(addr, &name)
    };
    let mut client = match client {
        Ok(c) => c,
        Err(e) => {
            eprintln!("arclient: cannot connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    if no_resume {
        client.set_resume_policy(ResumePolicy::disabled());
    }
    run_svc(client, &name)
}

fn run_svc(mut client: SvcClient, name: &str) -> ExitCode {
    println!(
        "connected as {name} to daemon {} ({} publish credits, delivery window {})",
        client.daemon(),
        client.credits(),
        client.delivery_window(),
    );

    let stdin = std::io::stdin();
    print_prompt();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        for ev in client.drain() {
            print_svc_event(&ev);
        }
        if client.evicted_reason().is_some() {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            print_prompt();
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        match verb {
            "quit" | "exit" => break,
            "credits" => {
                println!(
                    "[flow] {}/{} publish credits, delivery window {}",
                    client.credits(),
                    client.initial_credits(),
                    client.delivery_window(),
                );
            }
            "join" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.join(g) {
                        eprintln!("join failed: {e}");
                    }
                }
                None => eprintln!("usage: join <group>"),
            },
            "leave" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.leave(g) {
                        eprintln!("leave failed: {e}");
                    }
                }
                None => eprintln!("usage: leave <group>"),
            },
            "send" | "sends" => {
                let service = if verb == "sends" {
                    ServiceType::Safe
                } else {
                    ServiceType::Agreed
                };
                match (parts.next(), parts.next()) {
                    (Some(groups), Some(text)) => {
                        let gs: Vec<&str> = groups.split(',').collect();
                        match client.publish(
                            &gs,
                            service,
                            Bytes::from(text.to_string()),
                            Duration::from_secs(5),
                        ) {
                            Ok(id) => {
                                println!("[publish #{id}, {} credits left]", client.credits())
                            }
                            Err(PublishError::NoCredits) => {
                                eprintln!("send failed: no publish credits (daemon backpressured)")
                            }
                            Err(e) => eprintln!("send failed: {e}"),
                        }
                    }
                    _ => eprintln!("usage: {verb} <group>[,<group>...] <text>"),
                }
            }
            other => eprintln!("unknown command '{other}' (join/leave/send/sends/credits/quit)"),
        }
        // Give events a moment to arrive, then print them.
        std::thread::sleep(Duration::from_millis(100));
        for ev in client.drain() {
            print_svc_event(&ev);
        }
        if let Some(reason) = client.evicted_reason() {
            eprintln!("arclient: evicted by server: {reason}");
            return ExitCode::FAILURE;
        }
        print_prompt();
    }
    println!("bye");
    ExitCode::SUCCESS
}

fn run_legacy(addr: std::net::SocketAddr, name: &str) -> ExitCode {
    let mut client = match RemoteClient::connect(addr, name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("arclient: cannot connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected as {} (legacy protocol)", client.member_id());

    let stdin = std::io::stdin();
    print_prompt();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        for ev in client.drain() {
            print_legacy_event(&ev);
        }
        let line = line.trim();
        if line.is_empty() {
            print_prompt();
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        match verb {
            "quit" | "exit" => break,
            "join" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.join(g) {
                        eprintln!("join failed: {e}");
                    }
                }
                None => eprintln!("usage: join <group>"),
            },
            "leave" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.leave(g) {
                        eprintln!("leave failed: {e}");
                    }
                }
                None => eprintln!("usage: leave <group>"),
            },
            "send" | "sends" => {
                let service = if verb == "sends" {
                    ServiceType::Safe
                } else {
                    ServiceType::Agreed
                };
                match (parts.next(), parts.next()) {
                    (Some(groups), Some(text)) => {
                        let gs: Vec<&str> = groups.split(',').collect();
                        if let Err(e) =
                            client.multicast(&gs, service, Bytes::from(text.to_string()))
                        {
                            eprintln!("send failed: {e}");
                        }
                    }
                    _ => eprintln!("usage: {verb} <group>[,<group>...] <text>"),
                }
            }
            other => eprintln!("unknown command '{other}' (join/leave/send/sends/quit)"),
        }
        std::thread::sleep(Duration::from_millis(100));
        for ev in client.drain() {
            print_legacy_event(&ev);
        }
        print_prompt();
    }
    println!("bye");
    ExitCode::SUCCESS
}

fn print_prompt() {
    print!("> ");
    let _ = std::io::stdout().flush();
}

fn print_svc_event(ev: &SvcEvent) {
    match ev {
        SvcEvent::Deliver {
            ring_seq,
            service,
            sender,
            groups,
            payload,
            ..
        } => {
            println!(
                "[{service} @{ring_seq}] {sender} -> {}: {}",
                groups.join(","),
                String::from_utf8_lossy(payload)
            );
        }
        SvcEvent::Membership { group, members } => {
            let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            println!("[membership] {group}: {{{}}}", names.join(", "));
        }
        SvcEvent::NetworkChange { daemons } => {
            let names: Vec<String> = daemons.iter().map(|d| d.to_string()).collect();
            println!("[network] daemons: {{{}}}", names.join(", "));
        }
        SvcEvent::PublishOrdered { id } => {
            println!("[ordered #{id}: credit returned]");
        }
        SvcEvent::PublishRejected { id, reason } => {
            eprintln!("[rejected #{id}: {reason}]");
        }
        SvcEvent::GroupRejected {
            join,
            group,
            reason,
        } => {
            let verb = if *join { "join" } else { "leave" };
            eprintln!("[{verb} {group} rejected: {reason}]");
        }
        SvcEvent::Evicted { reason } => {
            eprintln!("[evicted: {reason}]");
        }
        SvcEvent::Reconnected { resumed } => {
            if *resumed {
                println!("[reconnected: session resumed]");
            } else {
                println!("[reconnected: session lost, started fresh (groups re-joined)]");
            }
        }
    }
}

fn print_legacy_event(ev: &ClientEvent) {
    match ev {
        ClientEvent::Message {
            sender,
            groups,
            service,
            ring_seq,
            payload,
            ..
        } => {
            println!(
                "[{service} @{ring_seq}] {sender} -> {}: {}",
                groups.join(","),
                String::from_utf8_lossy(payload)
            );
        }
        ClientEvent::Ordered { ring_seq, .. } => {
            println!("[ordered @{ring_seq}]");
        }
        ClientEvent::Membership { group, members } => {
            let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            println!("[membership] {group}: {{{}}}", names.join(", "));
        }
        ClientEvent::NetworkChange { daemons } => {
            let names: Vec<String> = daemons.iter().map(|d| d.to_string()).collect();
            println!("[network] daemons: {{{}}}", names.join(", "));
        }
    }
}
