//! `ard` — the Accelerated Ring daemon.
//!
//! Runs one ring participant from a deployment file (see
//! [`ar_daemon::deployconf`]) and serves local and remote clients,
//! playing the role of the `spread` daemon binary. Clients connect
//! through the flow-controlled service tier (`--client-addr` /
//! `--client-uds`); the per-daemon `client_addr` from the deployment
//! file still serves the legacy line protocol.
//!
//! ```text
//! usage: ard [--rings N] [--ring-port-stride P]
//!            [--metrics-addr ADDR] [--log-dir DIR] [--fsync POLICY]
//!            [--no-safe-durable] [--loss P] [--loss-seed N]
//!            [--client-addr ADDR] [--client-uds PATH]
//!            [--max-clients N] [--publish-credits N]
//!            [--resume-grace-ms MS] [--holdback-stall-ms MS]
//!            <config-file> <daemon-id>
//!
//! # terminal 1              # terminal 2
//! ard ar.conf 0             ard ar.conf 1
//!
//! # with live metrics (Prometheus on /metrics, JSON on /snapshot,
//! # recent protocol events on /flight):
//! ard --metrics-addr 127.0.0.1:9464 ar.conf 0
//!
//! # serve flow-controlled clients on TCP and a Unix socket:
//! ard --client-addr 127.0.0.1:4804 --client-uds /tmp/ard0.sock ar.conf 0
//!
//! # crash-safe Safe delivery: persist ordered deliveries to a
//! # segmented log and recover them after kill -9
//! # (POLICY: always | never | every:<n> | interval:<ms>):
//! ard --log-dir /var/lib/ard/0 --fsync every:64 ar.conf 0
//!
//! # sharded scale-out: one process, 4 independent rings; groups are
//! # placed on rings by consistent hashing, shard k's protocol
//! # sockets are the file's ports + k * stride (default 100), and
//! # clients keep per-publisher FIFO across rings:
//! ard --rings 4 --client-addr 127.0.0.1:4804 ar.conf 0
//! ```

use std::process::ExitCode;

use ar_core::Participant;
use ar_daemon::{
    serve_metrics, DaemonConfig, DaemonLogConfig, Deployment, ShardedDaemon, TelemetryHub,
};
use ar_log::FsyncPolicy;
use ar_net::{LossyTransport, NetMetrics, UdpTransport};
use ar_svc::{serve_clients_sharded, SvcConfig, SvcListeners};

const USAGE: &str = "usage: ard [--rings N] [--ring-port-stride P] [--metrics-addr ADDR] \
[--log-dir DIR] [--fsync POLICY] [--no-safe-durable] [--loss P] [--loss-seed N] \
[--client-addr ADDR] [--client-uds PATH] [--max-clients N] [--publish-credits N] \
[--resume-grace-ms MS] [--holdback-stall-ms MS] <config-file> <daemon-id>";

fn main() -> ExitCode {
    let mut metrics_addr: Option<String> = None;
    let mut log_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::EveryN(64);
    let mut gate_safe = true;
    let mut loss: f64 = 0.0;
    let mut loss_seed: u64 = 1;
    let mut client_addr: Option<String> = None;
    let mut client_uds: Option<String> = None;
    let mut max_clients: Option<usize> = None;
    let mut publish_credits: Option<u32> = None;
    let mut resume_grace_ms: Option<u64> = None;
    let mut holdback_stall_ms: Option<u64> = None;
    let mut rings: usize = 1;
    let mut ring_port_stride: u16 = 100;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    // Flags take a value either as the next argument or after `=`.
    let take = |args: &mut dyn Iterator<Item = String>, arg: &str, name: &str| {
        if arg == name {
            return match args.next() {
                Some(v) => Some(Some(v)),
                None => {
                    eprintln!("ard: {name} requires a value\n{USAGE}");
                    None
                }
            };
        }
        arg.strip_prefix(&format!("{name}="))
            .map(|v| Some(v.to_string()))
    };
    while let Some(arg) = args.next() {
        if let Some(v) = take(&mut args, &arg, "--metrics-addr") {
            match v {
                Some(v) => metrics_addr = Some(v),
                None => return ExitCode::from(2),
            }
        } else if let Some(v) = take(&mut args, &arg, "--log-dir") {
            match v {
                Some(v) => log_dir = Some(v),
                None => return ExitCode::from(2),
            }
        } else if let Some(v) = take(&mut args, &arg, "--client-addr") {
            match v {
                Some(v) => client_addr = Some(v),
                None => return ExitCode::from(2),
            }
        } else if let Some(v) = take(&mut args, &arg, "--client-uds") {
            match v {
                Some(v) => client_uds = Some(v),
                None => return ExitCode::from(2),
            }
        } else if let Some(v) = take(&mut args, &arg, "--max-clients") {
            match v.and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => max_clients = Some(n),
                _ => {
                    eprintln!("ard: --max-clients wants a positive integer");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--publish-credits") {
            match v.and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => publish_credits = Some(n),
                _ => {
                    eprintln!("ard: --publish-credits wants a positive integer");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--resume-grace-ms") {
            match v.and_then(|v| v.parse().ok()) {
                Some(ms) => resume_grace_ms = Some(ms),
                _ => {
                    eprintln!("ard: --resume-grace-ms wants a duration in milliseconds (0 disables session parking)");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--holdback-stall-ms") {
            match v.and_then(|v| v.parse().ok()) {
                Some(ms) => holdback_stall_ms = Some(ms),
                _ => {
                    eprintln!("ard: --holdback-stall-ms wants a duration in milliseconds (0 disables the watchdog)");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--rings") {
            match v.and_then(|v| v.parse().ok()) {
                Some(n) if (1..=64).contains(&n) => rings = n,
                _ => {
                    eprintln!("ard: --rings wants an integer in 1..=64");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--ring-port-stride") {
            match v.and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => ring_port_stride = n,
                _ => {
                    eprintln!("ard: --ring-port-stride wants a positive integer");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--fsync") {
            match v.and_then(|v| FsyncPolicy::parse(&v)) {
                Some(p) => fsync = p,
                None => {
                    eprintln!("ard: --fsync wants always|never|every:<n>|interval:<ms>");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--loss") {
            match v.and_then(|v| v.parse().ok()) {
                Some(p) if (0.0..1.0).contains(&p) => loss = p,
                _ => {
                    eprintln!("ard: --loss wants a probability in [0,1)");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = take(&mut args, &arg, "--loss-seed") {
            match v.and_then(|v| v.parse().ok()) {
                Some(s) => loss_seed = s,
                _ => {
                    eprintln!("ard: --loss-seed wants an integer");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--no-safe-durable" {
            gate_safe = false;
        } else {
            positional.push(arg);
        }
    }
    if positional.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let deployment = match Deployment::load(&positional[0]) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ard: {}: {e}", positional[0]);
            return ExitCode::FAILURE;
        }
    };
    let id: u16 = match positional[1].parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("ard: daemon id must be a small integer");
            return ExitCode::from(2);
        }
    };
    let pid = ar_core::ParticipantId::new(id);
    let Some(entry) = deployment.daemon(pid) else {
        eprintln!("ard: daemon {id} is not in {}", positional[0]);
        return ExitCode::FAILURE;
    };

    let members = deployment.members();
    println!(
        "ard: daemon {pid} on ring of {} ({} protocol, token {}, data {}{})",
        members.len(),
        deployment.protocol.variant,
        entry.addrs.token,
        entry.addrs.data,
        if rings > 1 {
            format!(", {rings} ring shards, port stride {ring_port_stride}")
        } else {
            String::new()
        },
    );

    let mut config = DaemonConfig::default();
    let metrics_server = match &metrics_addr {
        Some(addr) => {
            let hub = TelemetryHub::shared();
            config.telemetry = Some(hub.clone());
            match serve_metrics(addr.as_str(), hub) {
                Ok(server) => {
                    println!(
                        "ard: metrics on http://{}/ (paths: /metrics /snapshot /flight)",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("ard: cannot bind metrics endpoint on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    if let Some(dir) = &log_dir {
        config.log = Some(
            DaemonLogConfig::new(dir)
                .with_fsync(fsync)
                .with_gate_safe(gate_safe),
        );
        println!(
            "ard: durable log in {dir}{} (fsync {fsync}, safe delivery {})",
            if rings > 1 { "/shard-<k>" } else { "" },
            if gate_safe {
                "gated on durability"
            } else {
                "not gated"
            }
        );
    }
    let telemetry = config.telemetry.clone();
    if loss > 0.0 {
        println!("ard: injecting seeded datagram loss p={loss} seed={loss_seed}");
    }

    // One protocol participant + bound transport per ring shard.
    // Shard k's sockets are the deployment file's ports offset by
    // k * stride; shard 0 is the file verbatim.
    let mut parts: Vec<Option<(Participant, UdpTransport)>> = Vec::with_capacity(rings);
    for k in 0..rings {
        let Some(map) = deployment.peer_map_for_shard(k, ring_port_stride) else {
            eprintln!("ard: shard {k} port offset overflows (lower --ring-port-stride?)");
            return ExitCode::FAILURE;
        };
        let mut transport = match UdpTransport::bind(pid, map) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ard: cannot bind protocol sockets for shard {k}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Export the transport's counters (e.g. decode drops from
        // garbage datagrams) through the same registry the daemon
        // loops use; shard-labelled when there is more than one ring.
        if let Some(hub) = &telemetry {
            let m = if rings > 1 {
                NetMetrics::register_labeled(&hub.registry, &NetMetrics::shard_labels(k))
            } else {
                NetMetrics::register(&hub.registry)
            };
            transport.set_metrics(&m);
        }
        // Each shard is its own ring: same membership, distinct id.
        let shard_ring = ar_core::RingId::new(members[0], 1 + k as u64);
        let participant =
            match Participant::new(pid, deployment.protocol, shard_ring, members.clone()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ard: {e}");
                    return ExitCode::FAILURE;
                }
            };
        parts.push(Some((participant, transport)));
    }

    let sharded = if loss > 0.0 {
        ShardedDaemon::spawn(rings, |k| {
            let (part, transport) = parts[k].take().expect("each shard built once");
            (
                part,
                LossyTransport::new(transport, loss, loss_seed ^ k as u64),
                config.clone(),
            )
        })
    } else {
        ShardedDaemon::spawn(rings, |k| {
            let (part, transport) = parts[k].take().expect("each shard built once");
            (part, transport, config.clone())
        })
    };

    // The flow-controlled service tier (the new client protocol).
    let svc = if client_addr.is_some() || client_uds.is_some() {
        let mut listeners = SvcListeners::default();
        if let Some(addr) = &client_addr {
            match addr.parse() {
                Ok(a) => listeners.tcp = Some(a),
                Err(_) => {
                    eprintln!("ard: invalid --client-addr '{addr}'");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(path) = &client_uds {
            listeners.uds = Some(path.into());
        }
        let mut svc_config = SvcConfig::default();
        if let Some(n) = max_clients {
            svc_config.max_clients = n;
        }
        if let Some(n) = publish_credits {
            svc_config.flow.publish_credits = n;
        }
        if let Some(ms) = resume_grace_ms {
            svc_config.park_grace = std::time::Duration::from_millis(ms);
        }
        if let Some(ms) = holdback_stall_ms {
            svc_config.holdback_stall_timeout = std::time::Duration::from_millis(ms);
        }
        svc_config.telemetry = telemetry;
        match serve_clients_sharded(&sharded, listeners, svc_config) {
            Ok(svc) => {
                if let Some(addr) = svc.tcp_addr() {
                    println!("ard: service tier on tcp {addr}");
                }
                if let Some(path) = svc.uds_path() {
                    println!("ard: service tier on uds {}", path.display());
                }
                Some(svc)
            }
            Err(e) => {
                eprintln!("ard: cannot start service tier: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // The legacy line-protocol listener from the deployment file
    // (attached to shard 0; legacy clients see a single ring).
    let listener = match entry.client_addr {
        Some(addr) => match sharded.shard(0).listen(addr) {
            Ok(l) => {
                println!("ard: accepting legacy clients on {}", l.local_addr());
                Some(l)
            }
            Err(e) => {
                eprintln!("ard: cannot listen for clients on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if svc.is_none() && listener.is_none() {
        println!("ard: no client listener configured (protocol-only daemon)");
    }

    // Run until interrupted.
    println!("ard: running; press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        let _ = &listener;
        let _ = &metrics_server;
        let _ = &svc;
    }
}
