//! Deployment configuration files (the `spread.conf` analog).
//!
//! A deployment file names every daemon in the data center segment with
//! its protocol socket addresses and optional client-listener address,
//! plus protocol tuning options:
//!
//! ```text
//! # ar.conf — one ring, three daemons
//! protocol accelerated
//! personal_window 30
//! accelerated_window 20
//!
//! daemon 0 token=192.168.1.10:7400 data=192.168.1.10:7401 clients=192.168.1.10:7500
//! daemon 1 token=192.168.1.11:7400 data=192.168.1.11:7401 clients=192.168.1.11:7500
//! daemon 2 token=192.168.1.12:7400 data=192.168.1.12:7401
//! ```
//!
//! `#` starts a comment; blank lines are ignored; daemons may appear in
//! any order but identifiers must be unique.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;

use ar_core::{ParticipantId, ProtocolConfig, ProtocolVariant};
use ar_net::{PeerAddrs, PeerMap};

/// One daemon's entry in a deployment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonEntry {
    /// The daemon's participant identifier.
    pub pid: ParticipantId,
    /// Protocol socket addresses (token + data).
    pub addrs: PeerAddrs,
    /// Optional TCP address where this daemon accepts remote clients.
    pub client_addr: Option<SocketAddr>,
}

/// A parsed deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    daemons: BTreeMap<ParticipantId, DaemonEntry>,
    /// The protocol configuration the ring runs.
    pub protocol: ProtocolConfig,
}

/// Errors parsing a deployment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl Deployment {
    /// Parses a deployment from text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Deployment, ParseError> {
        let mut daemons: BTreeMap<ParticipantId, DaemonEntry> = BTreeMap::new();
        let mut protocol = ProtocolConfig::accelerated();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line");
            match key {
                "protocol" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err(lineno, "protocol needs a value"))?;
                    protocol = match v {
                        "accelerated" => ProtocolConfig::accelerated(),
                        "original" => ProtocolConfig::original(),
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown protocol '{other}' (accelerated|original)"),
                            ))
                        }
                    };
                }
                "personal_window" | "global_window" | "accelerated_window" | "max_seq_gap" => {
                    let v: u64 = words
                        .next()
                        .ok_or_else(|| err(lineno, format!("{key} needs a value")))?
                        .parse()
                        .map_err(|_| err(lineno, format!("{key} must be a number")))?;
                    match key {
                        "personal_window" => protocol.personal_window = v as u32,
                        "global_window" => protocol.global_window = v as u32,
                        "accelerated_window" => {
                            protocol.accelerated_window = v as u32;
                            if v > 0 {
                                protocol.variant = ProtocolVariant::Accelerated;
                            }
                        }
                        "max_seq_gap" => protocol.max_seq_gap = v,
                        _ => unreachable!(),
                    }
                }
                "daemon" => {
                    let id: u16 = words
                        .next()
                        .ok_or_else(|| err(lineno, "daemon needs an id"))?
                        .parse()
                        .map_err(|_| err(lineno, "daemon id must be a small integer"))?;
                    let pid = ParticipantId::new(id);
                    let mut token = None;
                    let mut data = None;
                    let mut clients = None;
                    for opt in words {
                        let (k, v) = opt.split_once('=').ok_or_else(|| {
                            err(lineno, format!("expected key=value, got '{opt}'"))
                        })?;
                        let addr: SocketAddr = v
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid address '{v}'")))?;
                        match k {
                            "token" => token = Some(addr),
                            "data" => data = Some(addr),
                            "clients" => clients = Some(addr),
                            other => return Err(err(lineno, format!("unknown option '{other}'"))),
                        }
                    }
                    let token = token.ok_or_else(|| err(lineno, "daemon needs token=host:port"))?;
                    let data = data.ok_or_else(|| err(lineno, "daemon needs data=host:port"))?;
                    let entry = DaemonEntry {
                        pid,
                        addrs: PeerAddrs { token, data },
                        client_addr: clients,
                    };
                    if daemons.insert(pid, entry).is_some() {
                        return Err(err(lineno, format!("duplicate daemon id {id}")));
                    }
                }
                other => return Err(err(lineno, format!("unknown directive '{other}'"))),
            }
        }
        if daemons.is_empty() {
            return Err(err(0, "no daemons defined"));
        }
        protocol
            .validate()
            .map_err(|e| err(0, format!("invalid protocol configuration: {e}")))?;
        Ok(Deployment { daemons, protocol })
    }

    /// Loads and parses a deployment file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error (as a [`ParseError`]) or a parse error.
    pub fn load(path: impl AsRef<Path>) -> Result<Deployment, ParseError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.as_ref().display())))?;
        Deployment::parse(&text)
    }

    /// The daemons, in identifier order.
    pub fn daemons(&self) -> impl Iterator<Item = &DaemonEntry> {
        self.daemons.values()
    }

    /// Looks up one daemon.
    pub fn daemon(&self, pid: ParticipantId) -> Option<&DaemonEntry> {
        self.daemons.get(&pid)
    }

    /// The ring member list.
    pub fn members(&self) -> Vec<ParticipantId> {
        self.daemons.keys().copied().collect()
    }

    /// The protocol peer map for the UDP transport.
    pub fn peer_map(&self) -> PeerMap {
        let mut map = PeerMap::new();
        for d in self.daemons.values() {
            map.insert(d.pid, d.addrs);
        }
        map
    }

    /// The peer map for ring shard `shard` of a multi-ring daemon:
    /// every token and data port in the file is offset by
    /// `shard * stride`, so each shard gets its own sockets from one
    /// deployment file. Shard 0 is the file's own addresses. The
    /// operator picks a stride wider than the port span the file uses
    /// on any one host so shards never collide.
    ///
    /// Returns `None` when an offset port would overflow the 16-bit
    /// port space.
    pub fn peer_map_for_shard(&self, shard: usize, stride: u16) -> Option<PeerMap> {
        let offset = u16::try_from(shard).ok()?.checked_mul(stride)?;
        let mut map = PeerMap::new();
        for d in self.daemons.values() {
            let mut addrs = d.addrs;
            let mut token = addrs.token;
            token.set_port(token.port().checked_add(offset)?);
            let mut data = addrs.data;
            data.set_port(data.port().checked_add(offset)?);
            addrs.token = token;
            addrs.data = data;
            map.insert(d.pid, addrs);
        }
        Some(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment
protocol accelerated
personal_window 25
accelerated_window 15

daemon 0 token=127.0.0.1:7400 data=127.0.0.1:7401 clients=127.0.0.1:7500
daemon 1 token=127.0.0.1:7402 data=127.0.0.1:7403   # trailing comment
";

    #[test]
    fn parses_sample() {
        let d = Deployment::parse(SAMPLE).unwrap();
        assert_eq!(d.members().len(), 2);
        assert_eq!(d.protocol.personal_window, 25);
        assert_eq!(d.protocol.accelerated_window, 15);
        let d0 = d.daemon(ParticipantId::new(0)).unwrap();
        assert_eq!(d0.addrs.token.port(), 7400);
        assert_eq!(d0.client_addr.unwrap().port(), 7500);
        let d1 = d.daemon(ParticipantId::new(1)).unwrap();
        assert_eq!(d1.client_addr, None);
        let map = d.peer_map();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn shard_peer_maps_offset_ports() {
        let d = Deployment::parse(SAMPLE).unwrap();
        let m0 = d.peer_map_for_shard(0, 100).unwrap();
        for pid in d.members() {
            assert_eq!(m0.get(pid), d.peer_map().get(pid));
        }
        let m2 = d.peer_map_for_shard(2, 100).unwrap();
        let a = m2.get(ParticipantId::new(0)).unwrap();
        assert_eq!(a.token.port(), 7600);
        assert_eq!(a.data.port(), 7601);
        assert_eq!(
            a.token.ip(),
            "127.0.0.1".parse::<std::net::IpAddr>().unwrap()
        );
        // Port overflow is a clean None, not a wrap.
        assert!(d.peer_map_for_shard(600, 100).is_none());
    }

    #[test]
    fn original_protocol_directive() {
        let text = "protocol original\ndaemon 0 token=127.0.0.1:1 data=127.0.0.1:2\n";
        let d = Deployment::parse(text).unwrap();
        assert_eq!(d.protocol.variant, ProtocolVariant::Original);
        assert_eq!(d.protocol.accelerated_window, 0);
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = Deployment::parse("bogus 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_duplicate_daemon() {
        let text = "daemon 0 token=127.0.0.1:1 data=127.0.0.1:2\n\
                    daemon 0 token=127.0.0.1:3 data=127.0.0.1:4\n";
        let e = Deployment::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_missing_addresses() {
        let e = Deployment::parse("daemon 0 token=127.0.0.1:1\n").unwrap_err();
        assert!(e.message.contains("data="));
    }

    #[test]
    fn rejects_bad_address() {
        let e = Deployment::parse("daemon 0 token=nonsense data=127.0.0.1:2\n").unwrap_err();
        assert!(e.message.contains("invalid address"));
    }

    #[test]
    fn rejects_empty_file() {
        let e = Deployment::parse("# nothing\n").unwrap_err();
        assert!(e.message.contains("no daemons"));
    }

    #[test]
    fn rejects_invalid_protocol_combination() {
        // original protocol + non-zero accelerated window ordered later
        // flips the variant back to accelerated, so construct the
        // reverse: accelerated_window after original is fine; zero
        // personal_window is not.
        let text = "personal_window 0\ndaemon 0 token=127.0.0.1:1 data=127.0.0.1:2\n";
        let e = Deployment::parse(text).unwrap_err();
        assert!(e.message.contains("invalid protocol"));
    }

    #[test]
    fn parse_error_display() {
        let e = err(3, "boom");
        assert_eq!(e.to_string(), "line 3: boom");
    }
}
