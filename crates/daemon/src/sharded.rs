//! One process, N independent token rings: the sharded daemon.
//!
//! [`ShardedDaemon`] owns N [`DaemonHandle`]s — one per ring shard —
//! plus the [`ShardMap`] that places each group on a shard. Every
//! shard is a full daemon: its own protocol participant, datapath
//! transport, packer, group table, and (when configured) durable-log
//! directory. Nothing is ordered *across* shards here; per-publisher
//! FIFO across shards is restored above, in the `ar-svc` hold-back
//! layer, from the publisher stamps the daemons carry through their
//! rings.
//!
//! All shards share one [`TelemetryHub`](crate::TelemetryHub) when the
//! caller passes the same hub in each shard's config: the spawn hook
//! fills in [`DaemonConfig::shard`], so each ring's series are
//! labelled `shard="k"` and its stats land in a per-shard slot.

use std::io;

use ar_core::{Participant, ParticipantId};
use ar_net::Transport;

use crate::daemon::{spawn_daemon_with, DaemonConfig, DaemonConnector, DaemonHandle};
use crate::shard::ShardMap;

/// N ring shards behind one facade.
#[derive(Debug)]
pub struct ShardedDaemon {
    map: ShardMap,
    shards: Vec<DaemonHandle>,
}

impl ShardedDaemon {
    /// Spawns `rings` daemon threads. `make(k)` supplies shard `k`'s
    /// participant, transport, and config; the hook lets every shard
    /// differ where it must (transport endpoints, ring ids) while this
    /// constructor enforces what must agree and fills in the
    /// shard-specific plumbing:
    ///
    /// * every shard must present the same [`ParticipantId`] — a
    ///   client's [`MemberId`](crate::MemberId) has to mean the same
    ///   publisher on every ring;
    /// * [`DaemonConfig::shard`] is set to `k` (shard-labelled
    ///   telemetry);
    /// * with more than one ring, a configured durable log is
    ///   redirected into the per-shard subdirectory `<dir>/shard-<k>`,
    ///   so N rings never interleave records in one segment file; a
    ///   single ring uses the directory as-is (a 1-ring sharded daemon
    ///   is exactly a plain daemon, logs included).
    ///
    /// # Panics
    ///
    /// Panics if `rings` is zero or the participants disagree on their
    /// id.
    pub fn spawn<T, F>(rings: usize, mut make: F) -> ShardedDaemon
    where
        T: Transport + Send + 'static,
        F: FnMut(usize) -> (Participant, T, DaemonConfig),
    {
        assert!(rings > 0, "a sharded daemon needs at least one ring");
        let map = ShardMap::new(rings);
        let mut shards = Vec::with_capacity(rings);
        let mut pid: Option<ParticipantId> = None;
        for k in 0..rings {
            let (part, transport, mut config) = make(k);
            match pid {
                None => pid = Some(part.pid()),
                Some(p) => assert_eq!(
                    p,
                    part.pid(),
                    "all shards of one daemon must share a participant id"
                ),
            }
            config.shard = Some(k);
            if rings > 1 {
                if let Some(log) = &mut config.log {
                    log.dir = log.dir.join(format!("shard-{k}"));
                }
            }
            shards.push(spawn_daemon_with(part, transport, config));
        }
        ShardedDaemon { map, shards }
    }

    /// Number of ring shards.
    pub fn rings(&self) -> usize {
        self.shards.len()
    }

    /// The participant id every shard presents.
    pub fn pid(&self) -> ParticipantId {
        self.shards[0].pid()
    }

    /// The group→shard placement.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard that orders `group` (shorthand for the map).
    pub fn shard_of(&self, group: &str) -> usize {
        self.map.shard_of(group)
    }

    /// Shard `k`'s daemon handle.
    pub fn shard(&self, k: usize) -> &DaemonHandle {
        &self.shards[k]
    }

    /// All shard handles, index = shard.
    pub fn shards(&self) -> &[DaemonHandle] {
        &self.shards
    }

    /// One connector per shard, index = shard (what the service tier
    /// hands to its multiplexer thread).
    pub fn connectors(&self) -> Vec<DaemonConnector> {
        self.shards.iter().map(DaemonHandle::connector).collect()
    }

    /// Stops every shard, returning the first error (all shards are
    /// joined regardless).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error any shard's loop hit.
    pub fn shutdown(self) -> io::Result<()> {
        let mut first_err = None;
        for shard in self.shards {
            if let Err(e) = shard.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientEvent;
    use ar_core::{ProtocolConfig, RingId, ServiceType};
    use ar_net::LoopbackNet;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn spawn_two_shards() -> ShardedDaemon {
        // Each shard is its own single-member ring on its own loopback
        // network, all presenting participant 0.
        ShardedDaemon::spawn(2, |k| {
            let pid = ParticipantId::new(0);
            let net = LoopbackNet::new();
            let part = Participant::new(
                pid,
                ProtocolConfig::accelerated(),
                RingId::new(pid, k as u64 + 1),
                vec![pid],
            )
            .unwrap();
            (part, net.endpoint(pid), DaemonConfig::default())
        })
    }

    /// Two group names that land on different shards of a 2-ring map.
    fn split_groups(map: &ShardMap) -> (String, String) {
        let a = "group-0".to_string();
        let sa = map.shard_of(&a);
        for i in 1..1000 {
            let b = format!("group-{i}");
            if map.shard_of(&b) != sa {
                return (a, b);
            }
        }
        panic!("no group found on the other shard");
    }

    #[test]
    fn groups_route_to_their_own_rings() {
        let sharded = spawn_two_shards();
        let (ga, gb) = split_groups(sharded.shard_map());
        let (sa, sb) = (sharded.shard_of(&ga), sharded.shard_of(&gb));
        assert_ne!(sa, sb);

        // Subscribe on the owning shard; publish through the same
        // shard; the message comes back ordered by that ring.
        let deadline = Instant::now() + Duration::from_secs(30);
        for (shard, group) in [(sa, &ga), (sb, &gb)] {
            let client = sharded.shard(shard).connect("sub").unwrap();
            client.join(group).unwrap();
            client
                .multicast(&[group], ServiceType::Agreed, Bytes::from_static(b"hi"))
                .unwrap();
            let mut got = false;
            while !got && Instant::now() < deadline {
                if let Some(ClientEvent::Message {
                    groups, payload, ..
                }) = client.recv(Duration::from_millis(50))
                {
                    assert_eq!(groups, vec![group.clone()]);
                    assert_eq!(payload, Bytes::from_static(b"hi"));
                    got = true;
                }
            }
            assert!(got, "shard {shard} never delivered");
        }
        sharded.shutdown().unwrap();
    }

    #[test]
    #[should_panic(expected = "share a participant id")]
    fn mismatched_pids_are_rejected() {
        let _ = ShardedDaemon::spawn(2, |k| {
            let pid = ParticipantId::new(k as u16);
            let net = LoopbackNet::new();
            let part = Participant::new(
                pid,
                ProtocolConfig::accelerated(),
                RingId::new(pid, 1),
                vec![pid],
            )
            .unwrap();
            (part, net.endpoint(pid), DaemonConfig::default())
        });
    }
}
