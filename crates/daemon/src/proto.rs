//! The client/daemon envelope protocol.
//!
//! Everything a client sends — application multicasts, group joins and
//! leaves — travels through the ring's total order as an [`Envelope`]
//! encoded into the protocol payload. Because group membership changes
//! are themselves totally ordered with respect to data messages, every
//! daemon applies them in the same order and group views stay
//! consistent (the classic Spread design).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ar_core::ParticipantId;

/// Maximum length of a client or group name, in bytes.
pub const MAX_NAME: usize = 64;

/// Maximum number of groups one message may target.
pub const MAX_GROUPS: usize = 32;

/// A globally unique member identifier: the client's private name
/// scoped by its daemon — rendered `#client#P3`, like Spread's private
/// group names.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId {
    /// The daemon the client is connected to.
    pub daemon: ParticipantId,
    /// The client's name, unique at its daemon.
    pub client: String,
}

impl MemberId {
    /// Creates a member identifier.
    pub fn new(daemon: ParticipantId, client: impl Into<String>) -> MemberId {
        MemberId {
            daemon,
            client: client.into(),
        }
    }
}

impl core::fmt::Display for MemberId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{}#{}", self.client, self.daemon)
    }
}

/// A totally ordered client/daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// Application data multicast to one or more groups (open-group
    /// semantics: the sender need not be a member of any of them).
    Data {
        /// The sending client.
        sender: MemberId,
        /// The sender's per-publisher sequence number (1-based), or 0
        /// when the publisher does not participate in cross-shard
        /// ordering. The service tier stamps each publish so a
        /// subscriber can restore the publisher's FIFO order across
        /// messages ordered on different ring shards.
        stamp: u64,
        /// Target groups.
        groups: Vec<String>,
        /// The application payload.
        payload: Bytes,
    },
    /// `member` joins `group`.
    Join {
        /// The joining client.
        member: MemberId,
        /// The group being joined.
        group: String,
    },
    /// `member` leaves `group`.
    Leave {
        /// The leaving client.
        member: MemberId,
        /// The group being left.
        group: String,
    },
}

/// Errors decoding an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Input ended early.
    Truncated,
    /// Unknown envelope kind byte.
    UnknownKind(u8),
    /// A name exceeded [`MAX_NAME`] or a group list exceeded
    /// [`MAX_GROUPS`].
    LimitExceeded(&'static str),
    /// A name was not valid UTF-8.
    BadName,
}

impl core::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EnvelopeError::Truncated => f.write_str("envelope truncated"),
            EnvelopeError::UnknownKind(k) => write!(f, "unknown envelope kind {k}"),
            EnvelopeError::LimitExceeded(what) => write!(f, "{what} limit exceeded"),
            EnvelopeError::BadName => f.write_str("name is not valid utf-8"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Encodes an envelope into bytes suitable for a protocol payload.
///
/// # Panics
///
/// Panics if a name exceeds [`MAX_NAME`] or the group list exceeds
/// [`MAX_GROUPS`] — enforce limits at the API boundary.
pub fn encode(env: &Envelope) -> Bytes {
    let mut buf = BytesMut::new();
    match env {
        Envelope::Data {
            sender,
            stamp,
            groups,
            payload,
        } => {
            assert!(groups.len() <= MAX_GROUPS, "too many groups");
            buf.put_u8(1);
            put_member(&mut buf, sender);
            buf.put_u64(*stamp);
            buf.put_u16(groups.len() as u16);
            for g in groups {
                put_name(&mut buf, g);
            }
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
        Envelope::Join { member, group } => {
            buf.put_u8(2);
            put_member(&mut buf, member);
            put_name(&mut buf, group);
        }
        Envelope::Leave { member, group } => {
            buf.put_u8(3);
            put_member(&mut buf, member);
            put_name(&mut buf, group);
        }
    }
    buf.freeze()
}

/// Decodes an envelope from a delivered payload.
///
/// # Errors
///
/// Returns an [`EnvelopeError`] on malformed input.
pub fn decode(mut buf: &[u8]) -> Result<Envelope, EnvelopeError> {
    let kind = take_u8(&mut buf)?;
    match kind {
        1 => {
            let sender = take_member(&mut buf)?;
            let stamp = take_u64(&mut buf)?;
            let n = take_u16(&mut buf)? as usize;
            if n > MAX_GROUPS {
                return Err(EnvelopeError::LimitExceeded("groups"));
            }
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(take_name(&mut buf)?);
            }
            let len = take_u32(&mut buf)? as usize;
            if buf.len() < len {
                return Err(EnvelopeError::Truncated);
            }
            let payload = Bytes::copy_from_slice(&buf[..len]);
            Ok(Envelope::Data {
                sender,
                stamp,
                groups,
                payload,
            })
        }
        2 => Ok(Envelope::Join {
            member: take_member(&mut buf)?,
            group: take_name(&mut buf)?,
        }),
        3 => Ok(Envelope::Leave {
            member: take_member(&mut buf)?,
            group: take_name(&mut buf)?,
        }),
        other => Err(EnvelopeError::UnknownKind(other)),
    }
}

fn put_member(buf: &mut BytesMut, m: &MemberId) {
    buf.put_u16(m.daemon.as_u16());
    put_name(buf, &m.client);
}

fn put_name(buf: &mut BytesMut, name: &str) {
    assert!(name.len() <= MAX_NAME, "name too long");
    buf.put_u8(name.len() as u8);
    buf.put_slice(name.as_bytes());
}

fn take_member(buf: &mut &[u8]) -> Result<MemberId, EnvelopeError> {
    let daemon = ParticipantId::new(take_u16(buf)?);
    let client = take_name(buf)?;
    Ok(MemberId { daemon, client })
}

fn take_name(buf: &mut &[u8]) -> Result<String, EnvelopeError> {
    let len = take_u8(buf)? as usize;
    if len > MAX_NAME {
        return Err(EnvelopeError::LimitExceeded("name"));
    }
    if buf.len() < len {
        return Err(EnvelopeError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| EnvelopeError::BadName)?;
    let out = s.to_string();
    buf.advance(len);
    Ok(out)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, EnvelopeError> {
    if buf.is_empty() {
        return Err(EnvelopeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, EnvelopeError> {
    if buf.len() < 2 {
        return Err(EnvelopeError::Truncated);
    }
    Ok(buf.get_u16())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, EnvelopeError> {
    if buf.len() < 4 {
        return Err(EnvelopeError::Truncated);
    }
    Ok(buf.get_u32())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, EnvelopeError> {
    if buf.len() < 8 {
        return Err(EnvelopeError::Truncated);
    }
    Ok(buf.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member() -> MemberId {
        MemberId::new(ParticipantId::new(3), "alice")
    }

    #[test]
    fn data_roundtrip() {
        for stamp in [0u64, 1, 42, u64::MAX] {
            let env = Envelope::Data {
                sender: member(),
                stamp,
                groups: vec!["chat".into(), "audit".into()],
                payload: Bytes::from_static(b"hello"),
            };
            assert_eq!(decode(&encode(&env)).unwrap(), env);
        }
    }

    #[test]
    fn join_leave_roundtrip() {
        for env in [
            Envelope::Join {
                member: member(),
                group: "chat".into(),
            },
            Envelope::Leave {
                member: member(),
                group: "chat".into(),
            },
        ] {
            assert_eq!(decode(&encode(&env)).unwrap(), env);
        }
    }

    #[test]
    fn empty_groups_and_payload_roundtrip() {
        let env = Envelope::Data {
            sender: member(),
            stamp: 0,
            groups: vec![],
            payload: Bytes::new(),
        };
        assert_eq!(decode(&encode(&env)).unwrap(), env);
    }

    #[test]
    fn truncation_is_detected() {
        let enc = encode(&Envelope::Join {
            member: member(),
            group: "g".into(),
        });
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // Data envelopes too — every cut through the stamp and group
        // fields must fail cleanly.
        let enc = encode(&Envelope::Data {
            sender: member(),
            stamp: 7,
            groups: vec!["g".into()],
            payload: Bytes::from_static(b"p"),
        });
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(decode(&[9]).unwrap_err(), EnvelopeError::UnknownKind(9));
    }

    #[test]
    fn bad_utf8_rejected() {
        // kind=2 (join), daemon=0, client name of length 2 with invalid
        // UTF-8.
        let raw = [2u8, 0, 0, 2, 0xFF, 0xFE, 1, b'g'];
        assert_eq!(decode(&raw).unwrap_err(), EnvelopeError::BadName);
    }

    #[test]
    fn member_id_displays_like_spread_private_names() {
        assert_eq!(member().to_string(), "#alice#P3");
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn oversized_name_panics_on_encode() {
        let env = Envelope::Join {
            member: MemberId::new(ParticipantId::new(0), "x".repeat(MAX_NAME + 1)),
            group: "g".into(),
        };
        let _ = encode(&env);
    }
}
