//! Live metrics: the daemon's telemetry hub and its HTTP endpoint.
//!
//! A [`TelemetryHub`] collects everything observable about one daemon —
//! the [`MetricsRegistry`] the runtime records into, the
//! [`FlightRecorder`] attached to the participant, and a periodically
//! refreshed copy of the [`ParticipantStats`] counters.
//! [`serve_metrics`] exposes the hub over a tiny built-in HTTP server
//! (one thread, no dependencies):
//!
//! | path        | content                                            |
//! |-------------|----------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition (registry + stats)      |
//! | `/snapshot` | the same data as one JSON document                 |
//! | `/flight`   | the flight recorder's event tail as JSON           |
//!
//! Start it from `ard` with `--metrics-addr 127.0.0.1:9464`, then:
//!
//! ```text
//! curl http://127.0.0.1:9464/metrics
//! ```

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ar_core::ParticipantStats;
use ar_telemetry::json::JsonWriter;
use ar_telemetry::{FlightRecorder, MetricsRegistry};
use parking_lot::Mutex;

/// Events the daemon's flight recorder retains.
const FLIGHT_CAPACITY: usize = 512;

/// One daemon's complete telemetry state.
///
/// A sharded daemon's N ring loops share one hub: each refreshes its
/// own per-shard stats slot (keyed by shard index) and registers
/// shard-labelled series, so `/metrics` and `/snapshot` expose every
/// ring side by side while [`stats`](TelemetryHub::stats) aggregates.
#[derive(Debug)]
pub struct TelemetryHub {
    /// The registry the runtime's [`ar_net::NetMetrics`] record into.
    pub registry: MetricsRegistry,
    /// The flight recorder attached to the participant.
    pub flight: Arc<FlightRecorder>,
    /// Latest protocol-counter snapshot per shard (refreshed by each
    /// daemon loop; unsharded daemons use slot 0).
    stats: Mutex<BTreeMap<usize, ParticipantStats>>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub::new()
    }
}

impl TelemetryHub {
    /// Creates an empty hub.
    pub fn new() -> TelemetryHub {
        TelemetryHub {
            registry: MetricsRegistry::new(),
            flight: FlightRecorder::shared(FLIGHT_CAPACITY),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// A hub ready to hand to
    /// [`DaemonConfig`](crate::DaemonConfig)`::telemetry`.
    pub fn shared() -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub::new())
    }

    /// Replaces the stats snapshot (called by an unsharded daemon
    /// loop; shorthand for shard slot 0).
    pub fn update_stats(&self, stats: ParticipantStats) {
        self.update_shard_stats(0, stats);
    }

    /// Replaces one shard's stats snapshot (called by that shard's
    /// daemon loop).
    pub fn update_shard_stats(&self, shard: usize, stats: ParticipantStats) {
        self.stats.lock().insert(shard, stats);
    }

    /// The latest protocol-counter snapshot, aggregated (field-wise
    /// sum) over every shard slot.
    pub fn stats(&self) -> ParticipantStats {
        let m = self.stats.lock();
        let mut total = ParticipantStats::default();
        for s in m.values() {
            add_stats(&mut total, s);
        }
        total
    }

    /// One shard's latest snapshot, if that shard has reported.
    pub fn shard_stats(&self, shard: usize) -> Option<ParticipantStats> {
        self.stats.lock().get(&shard).copied()
    }

    /// Renders the Prometheus exposition: the registry plus the
    /// participant counters as `ar_participant_*` counter series.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.registry.render_prometheus();
        let s = self.stats();
        for (name, help, v) in stat_counters(&s) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        out
    }

    /// Renders the full state as one JSON document:
    /// `{"metrics": {...}, "stats": {...}, "flight": {...}}`.
    pub fn render_json(&self) -> String {
        let s = self.stats();
        let mut stats_w = JsonWriter::new();
        stats_w.begin_object();
        for (name, _, v) in stat_counters(&s) {
            stats_w.key(name.strip_prefix("ar_participant_").unwrap_or(name));
            stats_w.num_u64(v);
        }
        stats_w.end_object();
        let mut flight_w = JsonWriter::new();
        flight_w.begin_object();
        flight_w.key("len");
        flight_w.num_u64(self.flight.len() as u64);
        flight_w.key("total");
        flight_w.num_u64(self.flight.total());
        flight_w.key("digest");
        flight_w.str(&format!("{:016x}", self.flight.digest()));
        flight_w.end_object();
        format!(
            "{{\"metrics\":{},\"stats\":{},\"flight\":{}}}",
            self.registry.render_json(),
            stats_w.finish(),
            flight_w.finish()
        )
    }

    /// Renders the flight recorder's tail as a JSON array of
    /// `{"at": ns, "event": name, "detail": "..."}` objects, oldest
    /// first.
    pub fn render_flight_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_array();
        for fe in self.flight.dump() {
            w.begin_object();
            w.key("at");
            w.num_u64(fe.at);
            w.key("event");
            w.str(fe.ev.name());
            w.key("detail");
            w.str(&format!("{:?}", fe.ev));
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

/// Field-wise sum of two counter snapshots (aggregating shards).
fn add_stats(into: &mut ParticipantStats, s: &ParticipantStats) {
    into.tokens_handled += s.tokens_handled;
    into.tokens_dropped += s.tokens_dropped;
    into.tokens_retransmitted += s.tokens_retransmitted;
    into.messages_initiated += s.messages_initiated;
    into.messages_sent_before_token += s.messages_sent_before_token;
    into.messages_sent_after_token += s.messages_sent_after_token;
    into.retransmissions_sent += s.retransmissions_sent;
    into.retransmissions_requested += s.retransmissions_requested;
    into.messages_received += s.messages_received;
    into.duplicates_dropped += s.duplicates_dropped;
    into.foreign_dropped += s.foreign_dropped;
    into.messages_delivered += s.messages_delivered;
    into.safe_delivered += s.safe_delivered;
    into.messages_discarded += s.messages_discarded;
    into.config_changes += s.config_changes;
    into.gathers_started += s.gathers_started;
    into.timeouts_adapted += s.timeouts_adapted;
    into.members_quarantined += s.members_quarantined;
    into.members_reinstated += s.members_reinstated;
    into.joins_suppressed += s.joins_suppressed;
    into.accel_window_shrinks += s.accel_window_shrinks;
    into.accel_window_grows += s.accel_window_grows;
    into.recovery_burst_truncated += s.recovery_burst_truncated;
    into.recovery_pending_dropped += s.recovery_pending_dropped;
}

/// The participant counters in exposition order, as
/// `(metric_name, help, value)`.
fn stat_counters(s: &ParticipantStats) -> [(&'static str, &'static str, u64); 24] {
    [
        (
            "ar_participant_tokens_handled_total",
            "Tokens handled",
            s.tokens_handled,
        ),
        (
            "ar_participant_tokens_dropped_total",
            "Duplicate/stale tokens dropped",
            s.tokens_dropped,
        ),
        (
            "ar_participant_tokens_retransmitted_total",
            "Tokens retransmitted on timeout",
            s.tokens_retransmitted,
        ),
        (
            "ar_participant_messages_initiated_total",
            "Messages initiated",
            s.messages_initiated,
        ),
        (
            "ar_participant_messages_sent_before_token_total",
            "Messages multicast in the pre-token phase",
            s.messages_sent_before_token,
        ),
        (
            "ar_participant_messages_sent_after_token_total",
            "Messages multicast in the post-token phase",
            s.messages_sent_after_token,
        ),
        (
            "ar_participant_retransmissions_sent_total",
            "Retransmissions answered",
            s.retransmissions_sent,
        ),
        (
            "ar_participant_retransmissions_requested_total",
            "Retransmission requests placed on the token",
            s.retransmissions_requested,
        ),
        (
            "ar_participant_messages_received_total",
            "Data messages received",
            s.messages_received,
        ),
        (
            "ar_participant_duplicates_dropped_total",
            "Duplicate messages dropped",
            s.duplicates_dropped,
        ),
        (
            "ar_participant_foreign_dropped_total",
            "Foreign-ring messages dropped",
            s.foreign_dropped,
        ),
        (
            "ar_participant_messages_delivered_total",
            "Messages delivered",
            s.messages_delivered,
        ),
        (
            "ar_participant_safe_delivered_total",
            "Safe-service deliveries",
            s.safe_delivered,
        ),
        (
            "ar_participant_messages_discarded_total",
            "Messages discarded after stability",
            s.messages_discarded,
        ),
        (
            "ar_participant_config_changes_total",
            "Regular configurations installed",
            s.config_changes,
        ),
        (
            "ar_participant_gathers_started_total",
            "Membership gathers entered",
            s.gathers_started,
        ),
        (
            "ar_participant_timeouts_adapted_total",
            "Adaptive timeout policies installed",
            s.timeouts_adapted,
        ),
        (
            "ar_participant_members_quarantined_total",
            "Members quarantined by flap damping",
            s.members_quarantined,
        ),
        (
            "ar_participant_members_reinstated_total",
            "Members reinstated after penalty decay",
            s.members_reinstated,
        ),
        (
            "ar_participant_joins_suppressed_total",
            "Joins suppressed from quarantined members",
            s.joins_suppressed,
        ),
        (
            "ar_participant_accel_window_shrinks_total",
            "AIMD accelerated-window shrinks",
            s.accel_window_shrinks,
        ),
        (
            "ar_participant_accel_window_grows_total",
            "AIMD accelerated-window recoveries",
            s.accel_window_grows,
        ),
        (
            "ar_participant_recovery_burst_truncated_total",
            "Recovery bursts truncated by the burst limit",
            s.recovery_burst_truncated,
        ),
        (
            "ar_participant_recovery_pending_dropped_total",
            "Recovery-phase new-ring data drops (pending buffer full)",
            s.recovery_pending_dropped,
        ),
    ]
}

/// A running metrics endpoint; dropping it stops the server thread.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the server actually bound (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Serves `hub` over HTTP on `addr` (e.g. `"127.0.0.1:9464"`, or port 0
/// for an ephemeral port). See the module docs for the paths.
///
/// # Errors
///
/// Returns any error from binding the listener.
pub fn serve_metrics<A: ToSocketAddrs>(
    addr: A,
    hub: Arc<TelemetryHub>,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    // Nonblocking accept lets the thread poll the stop flag.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let join = std::thread::spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = handle_request(stream, &hub);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    });
    Ok(MetricsServer {
        local_addr,
        stop,
        join: Some(join),
    })
}

fn handle_request(mut stream: TcpStream, hub: &TelemetryHub) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (or the buffer fills;
    // paths are short and we ignore bodies).
    let mut buf = [0u8; 2048];
    let mut read = 0;
    while read < buf.len() && !buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.render_prometheus(),
        ),
        "/snapshot" => ("200 OK", "application/json", hub.render_json()),
        "/flight" => ("200 OK", "application/json", hub.render_flight_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /snapshot, or /flight\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").expect("has header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_three_paths_and_404() {
        let hub = TelemetryHub::shared();
        hub.registry.counter("ar_demo_total", "Demo").add(7);
        hub.flight
            .push(123, ar_core::ProtoEvent::TokenRetransmit { round: 4 });
        hub.update_stats(ParticipantStats {
            tokens_handled: 9,
            ..ParticipantStats::default()
        });
        let server = serve_metrics("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("ar_demo_total 7"), "{body}");
        assert!(body.contains("ar_participant_tokens_handled_total 9"));

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"));
        let v = ar_telemetry::json::Value::parse(&body).expect("valid JSON");
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("tokens_handled_total"))
                .and_then(ar_telemetry::json::Value::as_f64),
            Some(9.0)
        );

        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.1 200"));
        let v = ar_telemetry::json::Value::parse(&body).expect("valid JSON");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0]
                .get("event")
                .and_then(ar_telemetry::json::Value::as_str),
            Some("token-retransmit")
        );

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.shutdown();
    }
}
