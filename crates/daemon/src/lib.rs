//! # ar-daemon — a Spread-style client/daemon architecture
//!
//! The paper credits much of Spread's practical success to its
//! client/daemon architecture: a single set of daemons per data center
//! serves many applications, with open-group semantics (senders need
//! not join) and multi-group multicast (one message to the members of
//! several groups, ordered across groups). This crate provides that
//! architecture on top of the Accelerated Ring protocol:
//!
//! * [`spawn_daemon`] runs a daemon thread over any
//!   [`ar_net::Transport`];
//! * clients [`connect`](DaemonHandle::connect) with a private name,
//!   [`join`](DaemonClient::join)/[`leave`](DaemonClient::leave) named
//!   groups, and [`multicast`](DaemonClient::multicast) to any groups;
//! * group membership changes travel through the ring's total order, so
//!   every daemon sees every group's membership transition at the same
//!   point of the message sequence.
//!
//! ## Example: two daemons, two clients, one group
//!
//! ```
//! use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
//! use ar_daemon::{spawn_daemon, ClientEvent};
//! use ar_net::LoopbackNet;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let net = LoopbackNet::new();
//! let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
//! let ring_id = RingId::new(members[0], 1);
//! let daemons: Vec<_> = members.iter().map(|&p| {
//!     let part = Participant::new(p, ProtocolConfig::accelerated(),
//!                                 ring_id, members.clone()).unwrap();
//!     spawn_daemon(part, net.endpoint(p))
//! }).collect();
//!
//! let alice = daemons[0].connect("alice").unwrap();
//! let bob = daemons[1].connect("bob").unwrap();
//! alice.join("room").unwrap();
//! // Wait until the (totally ordered) join has taken effect, so bob's
//! // message is ordered after it.
//! let deadline = std::time::Instant::now() + Duration::from_secs(10);
//! let mut joined = false;
//! while !joined && std::time::Instant::now() < deadline {
//!     if let Some(ClientEvent::Membership { .. }) = alice.recv(Duration::from_millis(50)) {
//!         joined = true;
//!     }
//! }
//! assert!(joined);
//! // Open-group semantics: bob can send without joining.
//! bob.multicast(&["room"], ServiceType::Agreed, Bytes::from_static(b"hi")).unwrap();
//! let mut got = false;
//! while !got && std::time::Instant::now() < deadline {
//!     if let Some(ClientEvent::Message { payload, .. }) = alice.recv(Duration::from_millis(50)) {
//!         assert_eq!(payload, Bytes::from_static(b"hi"));
//!         got = true;
//!     }
//! }
//! assert!(got);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod deployconf;
pub mod group;
pub mod metrics;
pub mod packing;
pub mod proto;
pub mod session;
pub mod shard;
pub mod sharded;

pub use client::{ClientError, ClientEvent, DaemonClient, DEFAULT_EVENT_CAPACITY};
pub use daemon::{
    spawn_daemon, spawn_daemon_with, DaemonConfig, DaemonConnector, DaemonHandle, DaemonLogConfig,
    RingPressure,
};
pub use deployconf::Deployment;
pub use group::GroupTable;
pub use metrics::{serve_metrics, MetricsServer, TelemetryHub};
pub use proto::{Envelope, MemberId};
pub use session::{ListenerHandle, ReconnectPolicy, RemoteClient};
pub use shard::ShardMap;
pub use sharded::ShardedDaemon;
