//! The client library: connect to a daemon, join groups, multicast,
//! receive ordered messages and membership notifications.

use std::time::Duration;

use ar_core::ServiceType;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use crate::daemon::Command;
use crate::proto::{MemberId, MAX_GROUPS, MAX_NAME};

/// Events a client receives from its daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A totally ordered message addressed to one of the client's
    /// groups (or to the client directly).
    Message {
        /// The sending client.
        sender: MemberId,
        /// The groups the message was addressed to.
        groups: Vec<String>,
        /// The delivery service it was sent with.
        service: ServiceType,
        /// The application payload.
        payload: Bytes,
    },
    /// The membership of a group the client belongs to changed.
    Membership {
        /// The group whose membership changed.
        group: String,
        /// The complete new membership, in canonical order.
        members: Vec<MemberId>,
    },
    /// The set of connected daemons changed (ring configuration
    /// change).
    NetworkChange {
        /// Daemons in the new regular configuration.
        daemons: Vec<ar_core::ParticipantId>,
    },
}

/// Errors from client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The requested name is already connected at this daemon.
    DuplicateName,
    /// The name is empty or longer than [`MAX_NAME`].
    InvalidName,
    /// Too many groups for one multicast (max [`MAX_GROUPS`]).
    TooManyGroups,
    /// A group name is empty or longer than [`MAX_NAME`].
    InvalidGroup,
    /// The daemon has shut down.
    DaemonDown,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::DuplicateName => f.write_str("client name already in use"),
            ClientError::InvalidName => write!(f, "client name must be 1..={MAX_NAME} bytes"),
            ClientError::TooManyGroups => write!(f, "at most {MAX_GROUPS} groups per message"),
            ClientError::InvalidGroup => write!(f, "group name must be 1..={MAX_NAME} bytes"),
            ClientError::DaemonDown => f.write_str("daemon has shut down"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client session.
///
/// Dropping the connection leaves all joined groups (via the total
/// order) and unregisters from the daemon.
#[derive(Debug)]
pub struct DaemonClient {
    pub(crate) me: MemberId,
    pub(crate) cmd_tx: Sender<Command>,
    pub(crate) events: Receiver<ClientEvent>,
}

impl DaemonClient {
    /// This client's globally unique identifier.
    pub fn member_id(&self) -> &MemberId {
        &self.me
    }

    /// The client's private name at its daemon.
    pub fn name(&self) -> &str {
        &self.me.client
    }

    fn check_group(group: &str) -> Result<(), ClientError> {
        if group.is_empty() || group.len() > MAX_NAME {
            return Err(ClientError::InvalidGroup);
        }
        Ok(())
    }

    /// Joins a group; the membership change is totally ordered, and a
    /// [`ClientEvent::Membership`] arrives once it takes effect.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::InvalidGroup`] or
    /// [`ClientError::DaemonDown`].
    pub fn join(&self, group: &str) -> Result<(), ClientError> {
        Self::check_group(group)?;
        self.cmd_tx
            .send(Command::Join {
                client: self.me.client.clone(),
                group: group.to_string(),
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// As for [`join`](Self::join).
    pub fn leave(&self, group: &str) -> Result<(), ClientError> {
        Self::check_group(group)?;
        self.cmd_tx
            .send(Command::Leave {
                client: self.me.client.clone(),
                group: group.to_string(),
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Multicasts `payload` to every member of every group in `groups`
    /// with the requested service. Open-group semantics: the sender
    /// need not be a member. Multi-group multicast: each recipient
    /// receives the message exactly once, at a single position in the
    /// total order, even if it belongs to several target groups.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::TooManyGroups`],
    /// [`ClientError::InvalidGroup`], or [`ClientError::DaemonDown`].
    pub fn multicast(
        &self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
    ) -> Result<(), ClientError> {
        if groups.len() > MAX_GROUPS {
            return Err(ClientError::TooManyGroups);
        }
        for g in groups {
            Self::check_group(g)?;
        }
        self.cmd_tx
            .send(Command::Multicast {
                client: self.me.client.clone(),
                groups: groups.iter().map(|g| g.to_string()).collect(),
                service,
                payload,
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Receives the next event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Drains any already-queued events without waiting.
    pub fn drain(&self) -> Vec<ClientEvent> {
        self.events.try_iter().collect()
    }
}

impl Drop for DaemonClient {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Unregister {
            client: self.me.client.clone(),
        });
    }
}
