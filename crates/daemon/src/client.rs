//! The client library: connect to a daemon, join groups, multicast,
//! receive ordered messages and membership notifications.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ar_core::ServiceType;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use crate::daemon::Command;
use crate::proto::{MemberId, MAX_GROUPS, MAX_NAME};

/// Default capacity of a client's event queue. A caller that stops
/// draining cannot grow daemon memory past this bound; further events
/// are dropped and counted (see [`DaemonClient::dropped_events`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Events a client receives from its daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A totally ordered message addressed to one of the client's
    /// groups (or to the client directly).
    Message {
        /// The sending client.
        sender: MemberId,
        /// The groups the message was addressed to.
        groups: Vec<String>,
        /// The delivery service it was sent with.
        service: ServiceType,
        /// The ring sequence number the message was ordered at (the
        /// position in the total order; bundled messages share it).
        ring_seq: u64,
        /// The sender's per-publisher sequence stamp, or 0 when the
        /// sender does not stamp (see [`Envelope::Data`]'s field).
        ///
        /// [`Envelope::Data`]: crate::Envelope::Data
        stamp: u64,
        /// The application payload.
        payload: Bytes,
    },
    /// The membership of a group the client belongs to changed.
    Membership {
        /// The group whose membership changed.
        group: String,
        /// The complete new membership, in canonical order.
        members: Vec<MemberId>,
    },
    /// The set of connected daemons changed (ring configuration
    /// change).
    NetworkChange {
        /// Daemons in the new regular configuration.
        daemons: Vec<ar_core::ParticipantId>,
    },
    /// One of this client's own multicasts reached Agreed order (it
    /// was applied at its daemon). Sent only to sessions that opted in
    /// (`wants_send_acks`, used by the `ar-svc` service tier to
    /// replenish publish credits); a client's own messages are ordered
    /// in submission order, so a FIFO count correlates acks to sends.
    Ordered {
        /// The ring sequence number the message was ordered at.
        ring_seq: u64,
        /// The stamp the message carried (0 when unstamped). With
        /// several ring shards per daemon, acks from different shards
        /// interleave arbitrarily; the stamp lets the service tier
        /// credit the right in-flight publish instead of assuming FIFO.
        stamp: u64,
    },
}

/// Errors from client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The requested name is already connected at this daemon.
    DuplicateName,
    /// The name is empty or longer than [`MAX_NAME`].
    InvalidName,
    /// Too many groups for one multicast (max [`MAX_GROUPS`]).
    TooManyGroups,
    /// A group name is empty or longer than [`MAX_NAME`].
    InvalidGroup,
    /// The daemon has shut down.
    DaemonDown,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::DuplicateName => f.write_str("client name already in use"),
            ClientError::InvalidName => write!(f, "client name must be 1..={MAX_NAME} bytes"),
            ClientError::TooManyGroups => write!(f, "at most {MAX_GROUPS} groups per message"),
            ClientError::InvalidGroup => write!(f, "group name must be 1..={MAX_NAME} bytes"),
            ClientError::DaemonDown => f.write_str("daemon has shut down"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client session.
///
/// Dropping the connection leaves all joined groups (via the total
/// order) and unregisters from the daemon.
#[derive(Debug)]
pub struct DaemonClient {
    pub(crate) me: MemberId,
    pub(crate) cmd_tx: Sender<Command>,
    pub(crate) events: Receiver<ClientEvent>,
    /// Events the daemon dropped because this client's bounded queue
    /// was full (shared with the daemon's session entry).
    pub(crate) dropped: Arc<AtomicU64>,
}

impl DaemonClient {
    /// This client's globally unique identifier.
    pub fn member_id(&self) -> &MemberId {
        &self.me
    }

    /// Events the daemon dropped because this client's event queue was
    /// full (the queue is bounded so a stalled caller cannot grow
    /// daemon memory without bound).
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The client's private name at its daemon.
    pub fn name(&self) -> &str {
        &self.me.client
    }

    fn check_group(group: &str) -> Result<(), ClientError> {
        if group.is_empty() || group.len() > MAX_NAME {
            return Err(ClientError::InvalidGroup);
        }
        Ok(())
    }

    /// Joins a group; the membership change is totally ordered, and a
    /// [`ClientEvent::Membership`] arrives once it takes effect.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::InvalidGroup`] or
    /// [`ClientError::DaemonDown`].
    pub fn join(&self, group: &str) -> Result<(), ClientError> {
        Self::check_group(group)?;
        self.cmd_tx
            .send(Command::Join {
                client: self.me.client.clone(),
                group: group.to_string(),
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// As for [`join`](Self::join).
    pub fn leave(&self, group: &str) -> Result<(), ClientError> {
        Self::check_group(group)?;
        self.cmd_tx
            .send(Command::Leave {
                client: self.me.client.clone(),
                group: group.to_string(),
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Multicasts `payload` to every member of every group in `groups`
    /// with the requested service. Open-group semantics: the sender
    /// need not be a member. Multi-group multicast: each recipient
    /// receives the message exactly once, at a single position in the
    /// total order, even if it belongs to several target groups.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::TooManyGroups`],
    /// [`ClientError::InvalidGroup`], or [`ClientError::DaemonDown`].
    pub fn multicast(
        &self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
    ) -> Result<(), ClientError> {
        self.multicast_stamped(groups, service, 0, payload)
    }

    /// [`multicast`](Self::multicast) carrying a per-publisher sequence
    /// stamp. The stamp travels in the ordered envelope and comes back
    /// on every recipient's [`ClientEvent::Message`] and the sender's
    /// [`ClientEvent::Ordered`]; the service tier uses it to keep a
    /// publisher's messages FIFO across ring shards. Stamp 0 means
    /// "unstamped" (plain multicast behaviour).
    ///
    /// # Errors
    ///
    /// As for [`multicast`](Self::multicast).
    pub fn multicast_stamped(
        &self,
        groups: &[&str],
        service: ServiceType,
        stamp: u64,
        payload: Bytes,
    ) -> Result<(), ClientError> {
        if groups.len() > MAX_GROUPS {
            return Err(ClientError::TooManyGroups);
        }
        for g in groups {
            Self::check_group(g)?;
        }
        self.cmd_tx
            .send(Command::Multicast {
                client: self.me.client.clone(),
                groups: groups.iter().map(|g| g.to_string()).collect(),
                service,
                stamp,
                payload,
            })
            .map_err(|_| ClientError::DaemonDown)
    }

    /// Receives the next event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Drains any already-queued events without waiting.
    pub fn drain(&self) -> Vec<ClientEvent> {
        self.events.try_iter().collect()
    }
}

impl Drop for DaemonClient {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Unregister {
            client: self.me.client.clone(),
        });
    }
}
