//! Message packing and large-message fragmentation.
//!
//! Spread improves small-message throughput by *packing* several client
//! messages into one protocol packet (amortizing per-packet protocol
//! and syscall costs), and supports arbitrarily large client messages
//! by *fragmenting* them across protocol packets (§IV-A.3 discusses the
//! packing/fragmentation boundary at the MTU). This module implements
//! both for the daemon:
//!
//! * a **bundle** is the unit carried in one protocol payload: a
//!   sequence of [`Envelope`]s (count-prefixed). The
//!   [`Packer`] greedily fills bundles up to a byte budget.
//! * a client message larger than the budget is split into
//!   [`Envelope::Data`]-like **fragments**; because fragments travel in
//!   the total order they arrive in order, and the [`Reassembler`]
//!   rebuilds the original payload before delivery.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::proto::{decode, encode, Envelope, EnvelopeError, MemberId};

/// Default bundle budget: fill protocol packets to the paper's
/// 1350-byte payload (one standard-MTU frame with headers).
pub const DEFAULT_BUNDLE_BUDGET: usize = 1350;

/// Hard cap on one fragment's chunk size (the protocol's maximum
/// payload minus bundling overhead).
pub const MAX_CHUNK: usize = 60 * 1024;

/// A fragment of a large client message.
///
/// Fragments are carried as envelopes inside bundles like everything
/// else; the group list travels on every fragment so any daemon can
/// route without per-message state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The sending client.
    pub sender: MemberId,
    /// Sender-local identifier of the original message.
    pub msg_id: u64,
    /// The sender's per-publisher sequence stamp (see
    /// [`Envelope::Data`]); replicated on each fragment so the
    /// reassembled message keeps it.
    pub stamp: u64,
    /// This fragment's index, `0..total`.
    pub idx: u32,
    /// Total number of fragments of the message.
    pub total: u32,
    /// Target groups (replicated on each fragment).
    pub groups: Vec<String>,
    /// The payload chunk.
    pub chunk: Bytes,
}

/// One entry of a bundle: either a whole envelope or a fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleEntry {
    /// A complete envelope.
    Whole(Envelope),
    /// A fragment of a large message.
    Fragment(Fragment),
}

/// Encodes a bundle of entries into one protocol payload.
pub fn encode_bundle(entries: &[BundleEntry]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u16(entries.len() as u16);
    for e in entries {
        match e {
            BundleEntry::Whole(env) => {
                let inner = encode(env);
                buf.put_u8(0);
                buf.put_u32(inner.len() as u32);
                buf.put_slice(&inner);
            }
            BundleEntry::Fragment(f) => {
                buf.put_u8(1);
                buf.put_u16(f.sender.daemon.as_u16());
                buf.put_u8(f.sender.client.len() as u8);
                buf.put_slice(f.sender.client.as_bytes());
                buf.put_u64(f.msg_id);
                buf.put_u64(f.stamp);
                buf.put_u32(f.idx);
                buf.put_u32(f.total);
                buf.put_u16(f.groups.len() as u16);
                for g in &f.groups {
                    buf.put_u8(g.len() as u8);
                    buf.put_slice(g.as_bytes());
                }
                buf.put_u32(f.chunk.len() as u32);
                buf.put_slice(&f.chunk);
            }
        }
    }
    buf.freeze()
}

/// Decodes a bundle from a delivered protocol payload.
///
/// # Errors
///
/// Returns an [`EnvelopeError`] on malformed input.
pub fn decode_bundle(mut buf: &[u8]) -> Result<Vec<BundleEntry>, EnvelopeError> {
    if buf.len() < 2 {
        return Err(EnvelopeError::Truncated);
    }
    let count = buf.get_u16() as usize;
    if count > 4096 {
        return Err(EnvelopeError::LimitExceeded("bundle"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.is_empty() {
            return Err(EnvelopeError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                if buf.len() < 4 {
                    return Err(EnvelopeError::Truncated);
                }
                let len = buf.get_u32() as usize;
                if buf.len() < len {
                    return Err(EnvelopeError::Truncated);
                }
                let env = decode(&buf[..len])?;
                buf.advance(len);
                out.push(BundleEntry::Whole(env));
            }
            1 => {
                if buf.len() < 3 {
                    return Err(EnvelopeError::Truncated);
                }
                let daemon = ar_core::ParticipantId::new(buf.get_u16());
                let name_len = buf.get_u8() as usize;
                if buf.len() < name_len {
                    return Err(EnvelopeError::Truncated);
                }
                let client = std::str::from_utf8(&buf[..name_len])
                    .map_err(|_| EnvelopeError::BadName)?
                    .to_string();
                buf.advance(name_len);
                if buf.len() < 8 + 8 + 4 + 4 + 2 {
                    return Err(EnvelopeError::Truncated);
                }
                let msg_id = buf.get_u64();
                let stamp = buf.get_u64();
                let idx = buf.get_u32();
                let total = buf.get_u32();
                let n_groups = buf.get_u16() as usize;
                if n_groups > crate::proto::MAX_GROUPS {
                    return Err(EnvelopeError::LimitExceeded("groups"));
                }
                let mut groups = Vec::with_capacity(n_groups);
                for _ in 0..n_groups {
                    if buf.is_empty() {
                        return Err(EnvelopeError::Truncated);
                    }
                    let glen = buf.get_u8() as usize;
                    if buf.len() < glen {
                        return Err(EnvelopeError::Truncated);
                    }
                    groups.push(
                        std::str::from_utf8(&buf[..glen])
                            .map_err(|_| EnvelopeError::BadName)?
                            .to_string(),
                    );
                    buf.advance(glen);
                }
                if buf.len() < 4 {
                    return Err(EnvelopeError::Truncated);
                }
                let clen = buf.get_u32() as usize;
                if buf.len() < clen {
                    return Err(EnvelopeError::Truncated);
                }
                let chunk = Bytes::copy_from_slice(&buf[..clen]);
                buf.advance(clen);
                out.push(BundleEntry::Fragment(Fragment {
                    sender: MemberId { daemon, client },
                    msg_id,
                    stamp,
                    idx,
                    total,
                    groups,
                    chunk,
                }));
            }
            other => return Err(EnvelopeError::UnknownKind(other)),
        }
    }
    Ok(out)
}

/// Greedy packer: queue entries, drain bundles up to a byte budget.
#[derive(Debug)]
pub struct Packer {
    budget: usize,
    queue: std::collections::VecDeque<BundleEntry>,
}

impl Packer {
    /// Creates a packer with the given bundle byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: usize) -> Packer {
        assert!(budget > 0, "bundle budget must be positive");
        Packer {
            budget,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Queues a whole envelope for bundling.
    pub fn push(&mut self, env: Envelope) {
        self.queue.push_back(BundleEntry::Whole(env));
    }

    /// Queues a large data message, fragmenting it as needed. Messages
    /// that fit in the budget are queued whole.
    pub fn push_data(
        &mut self,
        sender: MemberId,
        groups: Vec<String>,
        payload: Bytes,
        msg_id: u64,
        stamp: u64,
    ) {
        // Leave room for the envelope framing within a bundle.
        let max_whole = self.budget.saturating_sub(96).max(64);
        if payload.len() <= max_whole {
            self.push(Envelope::Data {
                sender,
                stamp,
                groups,
                payload,
            });
            return;
        }
        let chunk_size = max_whole.min(MAX_CHUNK);
        let total = payload.len().div_ceil(chunk_size) as u32;
        for (idx, chunk) in payload.chunks(chunk_size).enumerate() {
            self.queue.push_back(BundleEntry::Fragment(Fragment {
                sender: sender.clone(),
                msg_id,
                stamp,
                idx: idx as u32,
                total,
                groups: groups.clone(),
                chunk: Bytes::copy_from_slice(chunk),
            }));
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains the next bundle (up to the byte budget), or `None` if
    /// nothing is queued. A single oversized entry is emitted alone.
    pub fn next_bundle(&mut self) -> Option<Bytes> {
        if self.queue.is_empty() {
            return None;
        }
        let mut entries = Vec::new();
        let mut size = 2; // count prefix
        while let Some(front) = self.queue.front() {
            let entry_size = 5 + approx_entry_len(front);
            if !entries.is_empty() && size + entry_size > self.budget {
                break;
            }
            size += entry_size;
            entries.push(self.queue.pop_front().expect("non-empty"));
        }
        Some(encode_bundle(&entries))
    }
}

fn approx_entry_len(e: &BundleEntry) -> usize {
    match e {
        BundleEntry::Whole(env) => match env {
            Envelope::Data {
                sender,
                groups,
                payload,
                ..
            } => {
                24 + sender.client.len()
                    + groups.iter().map(|g| g.len() + 1).sum::<usize>()
                    + payload.len()
            }
            Envelope::Join { member, group } | Envelope::Leave { member, group } => {
                8 + member.client.len() + group.len()
            }
        },
        BundleEntry::Fragment(f) => {
            40 + f.sender.client.len()
                + f.groups.iter().map(|g| g.len() + 1).sum::<usize>()
                + f.chunk.len()
        }
    }
}

/// Rebuilds fragmented messages from the ordered fragment stream.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<(MemberId, u64), PartialMessage>,
}

#[derive(Debug)]
struct PartialMessage {
    next_idx: u32,
    total: u32,
    stamp: u64,
    groups: Vec<String>,
    buf: BytesMut,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Number of in-progress messages.
    pub fn in_progress(&self) -> usize {
        self.partial.len()
    }

    /// Feeds one fragment; returns the completed message (sender,
    /// stamp, groups, payload) when the last fragment arrives.
    ///
    /// Fragments travel in the total order, so they arrive in index
    /// order; out-of-order or inconsistent fragments (only possible
    /// through a bug or corruption) drop the partial message.
    pub fn feed(&mut self, f: Fragment) -> Option<(MemberId, u64, Vec<String>, Bytes)> {
        let key = (f.sender.clone(), f.msg_id);
        if f.idx == 0 {
            self.partial.insert(
                key.clone(),
                PartialMessage {
                    next_idx: 0,
                    total: f.total,
                    stamp: f.stamp,
                    groups: f.groups.clone(),
                    buf: BytesMut::new(),
                },
            );
        }
        let Some(p) = self.partial.get_mut(&key) else {
            return None; // never saw fragment 0: drop
        };
        if f.idx != p.next_idx || f.total != p.total || f.stamp != p.stamp {
            self.partial.remove(&key);
            return None;
        }
        p.buf.extend_from_slice(&f.chunk);
        p.next_idx += 1;
        if p.next_idx == p.total {
            let done = self.partial.remove(&key).expect("present");
            Some((f.sender, done.stamp, done.groups, done.buf.freeze()))
        } else {
            None
        }
    }

    /// Drops partial messages from senders at daemons not in `daemons`
    /// (configuration change: those messages can never complete).
    pub fn retain_daemons(&mut self, daemons: &[ar_core::ParticipantId]) {
        self.partial.retain(|(m, _), _| daemons.contains(&m.daemon));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::ParticipantId;

    fn member() -> MemberId {
        MemberId::new(ParticipantId::new(1), "c")
    }

    fn data(n: usize) -> Envelope {
        Envelope::Data {
            sender: member(),
            stamp: 0,
            groups: vec!["g".into()],
            payload: Bytes::from(vec![7u8; n]),
        }
    }

    #[test]
    fn bundle_roundtrip_whole() {
        let entries = vec![
            BundleEntry::Whole(data(10)),
            BundleEntry::Whole(Envelope::Join {
                member: member(),
                group: "g".into(),
            }),
        ];
        let enc = encode_bundle(&entries);
        assert_eq!(decode_bundle(&enc).unwrap(), entries);
    }

    #[test]
    fn bundle_roundtrip_fragment() {
        let entries = vec![BundleEntry::Fragment(Fragment {
            sender: member(),
            msg_id: 42,
            stamp: 7,
            idx: 1,
            total: 3,
            groups: vec!["a".into(), "b".into()],
            chunk: Bytes::from_static(b"chunk-data"),
        })];
        let enc = encode_bundle(&entries);
        assert_eq!(decode_bundle(&enc).unwrap(), entries);
    }

    #[test]
    fn truncated_bundles_error() {
        let entries = vec![BundleEntry::Whole(data(20))];
        let enc = encode_bundle(&entries);
        for cut in 0..enc.len() {
            assert!(decode_bundle(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn packer_fills_to_budget() {
        let mut p = Packer::new(1350);
        for _ in 0..10 {
            p.push(data(400));
        }
        let bundle = p.next_bundle().unwrap();
        let entries = decode_bundle(&bundle).unwrap();
        assert!(entries.len() > 1, "small messages are packed together");
        assert!(entries.len() < 10, "but not beyond the budget");
        assert!(bundle.len() <= 1350 + 500, "close to budget");
        // Remaining entries drain in subsequent bundles.
        let mut total = entries.len();
        while let Some(b) = p.next_bundle() {
            total += decode_bundle(&b).unwrap().len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn packer_emits_oversized_entry_alone() {
        let mut p = Packer::new(256);
        p.push(data(10));
        p.push(data(500)); // exceeds budget but was pushed whole
        let first = decode_bundle(&p.next_bundle().unwrap()).unwrap();
        assert_eq!(first.len(), 1);
        let second = decode_bundle(&p.next_bundle().unwrap()).unwrap();
        assert_eq!(second.len(), 1);
        assert!(p.next_bundle().is_none());
    }

    #[test]
    fn push_data_fragments_large_messages() {
        let mut p = Packer::new(1350);
        let payload = Bytes::from(vec![3u8; 5000]);
        p.push_data(member(), vec!["g".into()], payload.clone(), 77, 9);
        let mut frags = Vec::new();
        while let Some(b) = p.next_bundle() {
            for e in decode_bundle(&b).unwrap() {
                match e {
                    BundleEntry::Fragment(f) => frags.push(f),
                    BundleEntry::Whole(_) => panic!("should be fragmented"),
                }
            }
        }
        assert!(frags.len() >= 4, "{} fragments", frags.len());
        // Reassemble.
        let mut r = Reassembler::new();
        let mut done = None;
        for f in frags {
            if let Some(d) = r.feed(f) {
                done = Some(d);
            }
        }
        let (sender, stamp, groups, rebuilt) = done.expect("reassembled");
        assert_eq!(sender, member());
        assert_eq!(stamp, 9, "stamp survives fragmentation");
        assert_eq!(groups, vec!["g".to_string()]);
        assert_eq!(rebuilt, payload);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn small_push_data_stays_whole() {
        let mut p = Packer::new(1350);
        p.push_data(
            member(),
            vec!["g".into()],
            Bytes::from_static(b"tiny"),
            1,
            0,
        );
        let entries = decode_bundle(&p.next_bundle().unwrap()).unwrap();
        assert!(matches!(entries[0], BundleEntry::Whole(_)));
    }

    #[test]
    fn reassembler_interleaves_senders() {
        let a = MemberId::new(ParticipantId::new(0), "a");
        let b = MemberId::new(ParticipantId::new(1), "b");
        let mut r = Reassembler::new();
        let frag = |m: &MemberId, idx, total, byte: u8| Fragment {
            sender: m.clone(),
            msg_id: 1,
            stamp: 0,
            idx,
            total,
            groups: vec!["g".into()],
            chunk: Bytes::from(vec![byte; 4]),
        };
        assert!(r.feed(frag(&a, 0, 2, 1)).is_none());
        assert!(r.feed(frag(&b, 0, 2, 2)).is_none());
        let done_a = r.feed(frag(&a, 1, 2, 1)).unwrap();
        assert_eq!(done_a.3, Bytes::from(vec![1u8; 8]));
        let done_b = r.feed(frag(&b, 1, 2, 2)).unwrap();
        assert_eq!(done_b.3, Bytes::from(vec![2u8; 8]));
    }

    #[test]
    fn reassembler_drops_orphan_and_inconsistent_fragments() {
        let mut r = Reassembler::new();
        let f = Fragment {
            sender: member(),
            msg_id: 9,
            stamp: 0,
            idx: 1, // never saw 0
            total: 2,
            groups: vec![],
            chunk: Bytes::from_static(b"x"),
        };
        assert!(r.feed(f.clone()).is_none());
        assert_eq!(r.in_progress(), 0);
        // Start properly, then feed an inconsistent total.
        let f0 = Fragment {
            idx: 0,
            ..f.clone()
        };
        assert!(r.feed(f0).is_none());
        let bad = Fragment {
            idx: 1,
            total: 5,
            ..f
        };
        assert!(r.feed(bad).is_none());
        assert_eq!(
            r.in_progress(),
            0,
            "inconsistent fragment drops the partial"
        );
    }

    #[test]
    fn reassembler_retain_daemons_drops_partitioned_partials() {
        let mut r = Reassembler::new();
        let f0 = Fragment {
            sender: member(), // daemon 1
            msg_id: 5,
            stamp: 0,
            idx: 0,
            total: 2,
            groups: vec![],
            chunk: Bytes::from_static(b"x"),
        };
        r.feed(f0).map(|_| ()).unwrap_or(());
        assert_eq!(r.in_progress(), 1);
        r.retain_daemons(&[ParticipantId::new(0)]);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        let _ = Packer::new(0);
    }
}
