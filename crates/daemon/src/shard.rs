//! Group-to-ring placement for sharded multi-ring daemons.
//!
//! One totally ordered ring saturates (PR 7's client-tier bench shows
//! p99 collapsing under load); the scale-out move — HT-Ring Paxos
//! style ring composition — is to run N independent rings and
//! partition the *group namespace* across them. [`ShardMap`] is that
//! partition: a consistent-hash ring over shard indices, so every
//! daemon (and every service-tier front end) derives the same
//! group→shard placement with no coordination, and growing from N to
//! N+1 rings relocates only ~1/(N+1) of the groups.

/// Virtual nodes per shard on the consistent-hash circle. Enough to
/// keep the per-shard load spread within a few percent without making
/// construction or lookup noticeably slower.
const VNODES_PER_SHARD: usize = 64;

/// A consistent mapping from group names to ring shards `0..rings`.
///
/// Pure and deterministic: two `ShardMap`s built with the same ring
/// count agree on every group, which is what lets the service tier
/// route a publish to the right ring without asking the daemon.
#[derive(Debug, Clone)]
pub struct ShardMap {
    rings: usize,
    /// Sorted `(point, shard)` pairs on the hash circle.
    points: Vec<(u64, usize)>,
}

impl ShardMap {
    /// Builds the map for `rings` shards.
    ///
    /// # Panics
    ///
    /// Panics if `rings` is zero.
    pub fn new(rings: usize) -> ShardMap {
        assert!(rings > 0, "a shard map needs at least one ring");
        let mut points = Vec::with_capacity(rings * VNODES_PER_SHARD);
        for shard in 0..rings {
            for vnode in 0..VNODES_PER_SHARD {
                points.push((
                    fnv1a_64(format!("shard-{shard}/vnode-{vnode}").as_bytes()),
                    shard,
                ));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        ShardMap { rings, points }
    }

    /// Number of ring shards.
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// The shard that orders messages for `group`: the first virtual
    /// node at or after the group's hash, wrapping at the top of the
    /// circle.
    pub fn shard_of(&self, group: &str) -> usize {
        let h = fnv1a_64(group.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        if idx == self.points.len() {
            self.points[0].1
        } else {
            self.points[idx].1
        }
    }

    /// Splits a group list into per-shard sublists, preserving order
    /// within each shard; only shards that receive at least one group
    /// appear. A multi-group publish becomes one ordered message per
    /// returned shard.
    pub fn partition<'a>(&self, groups: &[&'a str]) -> Vec<(usize, Vec<&'a str>)> {
        let mut out: Vec<(usize, Vec<&'a str>)> = Vec::new();
        for &g in groups {
            let shard = self.shard_of(g);
            match out.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, list)) => list.push(g),
                None => out.push((shard, vec![g])),
            }
        }
        out
    }
}

/// FNV-1a, 64-bit, with a splitmix64-style avalanche finalizer —
/// tiny, dependency-free, and good enough spread for placement (this
/// is load balancing, not an adversarial boundary). Raw FNV clusters
/// badly on near-identical short strings like `shard-0/vnode-1`, so
/// the finalizer matters: it is what spreads the virtual nodes evenly
/// around the circle.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ring_maps_everything_to_zero() {
        let m = ShardMap::new(1);
        for g in ["a", "chat", "orders", ""] {
            assert_eq!(m.shard_of(g), 0);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = ShardMap::new(4);
        let b = ShardMap::new(4);
        for i in 0..500 {
            let g = format!("group-{i}");
            assert_eq!(a.shard_of(&g), b.shard_of(&g));
        }
    }

    #[test]
    fn load_spreads_across_all_shards() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[m.shard_of(&format!("group-{i}"))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; consistent hashing with 64
            // vnodes lands well within 2x either way.
            assert!(
                (500..=2000).contains(&c),
                "shard {shard} got {c} of 4000 groups: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_count_moves_a_minority_of_groups() {
        let before = ShardMap::new(4);
        let after = ShardMap::new(5);
        let total = 4000;
        let moved = (0..total)
            .filter(|i| {
                let g = format!("group-{i}");
                before.shard_of(&g) != after.shard_of(&g)
            })
            .count();
        // Consistent hashing moves ~1/5 of groups going 4 -> 5 rings;
        // modulo hashing would move ~4/5. Assert we are on the right
        // side of that divide with slack for hash noise.
        assert!(
            moved < total * 2 / 5,
            "{moved}/{total} groups moved going 4 -> 5 rings"
        );
    }

    #[test]
    fn partition_groups_by_shard_preserves_order() {
        let m = ShardMap::new(3);
        let groups = ["a", "b", "c", "d", "e", "f"];
        let parts = m.partition(&groups);
        let mut seen = Vec::new();
        for (shard, list) in &parts {
            assert!(!list.is_empty());
            for g in list {
                assert_eq!(m.shard_of(g), *shard);
                seen.push(*g);
            }
        }
        // Every group appears exactly once across the partitions.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        let mut want = groups.to_vec();
        want.sort_unstable();
        assert_eq!(sorted, want);
        // And per-shard sublists preserve the caller's relative order.
        for (_, list) in &parts {
            let positions: Vec<usize> = list
                .iter()
                .map(|g| groups.iter().position(|x| x == g).unwrap())
                .collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
