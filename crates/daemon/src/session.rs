//! Remote client sessions over TCP.
//!
//! Spread's client/daemon split lets applications link a small client
//! library and talk to a colocated daemon over IPC (or TCP). This
//! module provides that: a daemon can listen on a TCP address; remote
//! clients connect with [`RemoteClient::connect`] and get the same API
//! as in-process clients (join/leave/multicast/receive).
//!
//! The session wire protocol is length-framed: `u32` big-endian frame
//! length, then a kind byte and fields. It is deliberately independent
//! of the ring protocol's wire format.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ar_core::ServiceType;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use crate::client::{ClientError, ClientEvent, DEFAULT_EVENT_CAPACITY};
use crate::daemon::{Command, DaemonHandle};
use crate::proto::{MemberId, MAX_GROUPS, MAX_NAME};

/// Frames larger than this are rejected (64 MiB).
const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Client-to-daemon session messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// Handshake: the client's private name.
    Hello {
        /// Requested private name.
        name: String,
    },
    /// Join a group.
    Join {
        /// Group name.
        group: String,
    },
    /// Leave a group.
    Leave {
        /// Group name.
        group: String,
    },
    /// Multicast to groups.
    Multicast {
        /// Target groups.
        groups: Vec<String>,
        /// Delivery service.
        service: ServiceType,
        /// Payload.
        payload: Bytes,
    },
}

/// Daemon-to-client session messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerReply {
    /// Handshake accepted.
    Welcome {
        /// The daemon id the client is attached to.
        daemon: u16,
    },
    /// Handshake rejected.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// An application event.
    Event(ClientEvent),
}

// ---- codec ----------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> io::Result<String> {
    if buf.len() < 2 {
        return Err(bad("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(bad("truncated string"));
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| bad("invalid utf-8"))?;
    let out = s.to_string();
    buf.advance(len);
    Ok(out)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encodes a client request frame (without the length prefix).
pub fn encode_request(req: &ClientRequest) -> Bytes {
    let mut buf = BytesMut::new();
    match req {
        ClientRequest::Hello { name } => {
            buf.put_u8(1);
            put_str(&mut buf, name);
        }
        ClientRequest::Join { group } => {
            buf.put_u8(2);
            put_str(&mut buf, group);
        }
        ClientRequest::Leave { group } => {
            buf.put_u8(3);
            put_str(&mut buf, group);
        }
        ClientRequest::Multicast {
            groups,
            service,
            payload,
        } => {
            buf.put_u8(4);
            buf.put_u8(service.as_u8());
            buf.put_u16(groups.len() as u16);
            for g in groups {
                put_str(&mut buf, g);
            }
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
    }
    buf.freeze()
}

/// Decodes a client request frame.
///
/// # Errors
///
/// Returns `InvalidData` on malformed frames.
pub fn decode_request(mut buf: &[u8]) -> io::Result<ClientRequest> {
    if buf.is_empty() {
        return Err(bad("empty frame"));
    }
    let kind = buf.get_u8();
    match kind {
        1 => Ok(ClientRequest::Hello {
            name: take_str(&mut buf)?,
        }),
        2 => Ok(ClientRequest::Join {
            group: take_str(&mut buf)?,
        }),
        3 => Ok(ClientRequest::Leave {
            group: take_str(&mut buf)?,
        }),
        4 => {
            if buf.is_empty() {
                return Err(bad("truncated service"));
            }
            let service = ServiceType::from_u8(buf.get_u8()).ok_or_else(|| bad("bad service"))?;
            if buf.len() < 2 {
                return Err(bad("truncated group count"));
            }
            let n = buf.get_u16() as usize;
            if n > MAX_GROUPS {
                return Err(bad("too many groups"));
            }
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(take_str(&mut buf)?);
            }
            if buf.len() < 4 {
                return Err(bad("truncated payload length"));
            }
            let len = buf.get_u32() as usize;
            if buf.len() < len {
                return Err(bad("truncated payload"));
            }
            Ok(ClientRequest::Multicast {
                groups,
                service,
                payload: Bytes::copy_from_slice(&buf[..len]),
            })
        }
        _ => Err(bad("unknown request kind")),
    }
}

/// Encodes a server reply frame (without the length prefix).
pub fn encode_reply(reply: &ServerReply) -> Bytes {
    let mut buf = BytesMut::new();
    match reply {
        ServerReply::Welcome { daemon } => {
            buf.put_u8(1);
            buf.put_u16(*daemon);
        }
        ServerReply::Refused { reason } => {
            buf.put_u8(2);
            put_str(&mut buf, reason);
        }
        ServerReply::Event(ev) => {
            buf.put_u8(3);
            match ev {
                ClientEvent::Message {
                    sender,
                    groups,
                    service,
                    ring_seq,
                    stamp,
                    payload,
                } => {
                    buf.put_u8(1);
                    buf.put_u16(sender.daemon.as_u16());
                    put_str(&mut buf, &sender.client);
                    buf.put_u8(service.as_u8());
                    buf.put_u64(*ring_seq);
                    buf.put_u64(*stamp);
                    buf.put_u16(groups.len() as u16);
                    for g in groups {
                        put_str(&mut buf, g);
                    }
                    buf.put_u32(payload.len() as u32);
                    buf.put_slice(payload);
                }
                ClientEvent::Membership { group, members } => {
                    buf.put_u8(2);
                    put_str(&mut buf, group);
                    buf.put_u16(members.len() as u16);
                    for m in members {
                        buf.put_u16(m.daemon.as_u16());
                        put_str(&mut buf, &m.client);
                    }
                }
                ClientEvent::NetworkChange { daemons } => {
                    buf.put_u8(3);
                    buf.put_u16(daemons.len() as u16);
                    for d in daemons {
                        buf.put_u16(d.as_u16());
                    }
                }
                ClientEvent::Ordered { ring_seq, stamp } => {
                    buf.put_u8(4);
                    buf.put_u64(*ring_seq);
                    buf.put_u64(*stamp);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes a server reply frame.
///
/// # Errors
///
/// Returns `InvalidData` on malformed frames.
pub fn decode_reply(mut buf: &[u8]) -> io::Result<ServerReply> {
    use ar_core::ParticipantId;
    if buf.is_empty() {
        return Err(bad("empty frame"));
    }
    match buf.get_u8() {
        1 => {
            if buf.len() < 2 {
                return Err(bad("truncated welcome"));
            }
            Ok(ServerReply::Welcome {
                daemon: buf.get_u16(),
            })
        }
        2 => Ok(ServerReply::Refused {
            reason: take_str(&mut buf)?,
        }),
        3 => {
            if buf.is_empty() {
                return Err(bad("truncated event"));
            }
            match buf.get_u8() {
                1 => {
                    if buf.len() < 2 {
                        return Err(bad("truncated sender"));
                    }
                    let daemon = ParticipantId::new(buf.get_u16());
                    let client = take_str(&mut buf)?;
                    if buf.is_empty() {
                        return Err(bad("truncated service"));
                    }
                    let service =
                        ServiceType::from_u8(buf.get_u8()).ok_or_else(|| bad("bad service"))?;
                    if buf.len() < 8 {
                        return Err(bad("truncated ring seq"));
                    }
                    let ring_seq = buf.get_u64();
                    if buf.len() < 8 {
                        return Err(bad("truncated stamp"));
                    }
                    let stamp = buf.get_u64();
                    if buf.len() < 2 {
                        return Err(bad("truncated groups"));
                    }
                    let n = buf.get_u16() as usize;
                    let mut groups = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        groups.push(take_str(&mut buf)?);
                    }
                    if buf.len() < 4 {
                        return Err(bad("truncated payload len"));
                    }
                    let len = buf.get_u32() as usize;
                    if buf.len() < len {
                        return Err(bad("truncated payload"));
                    }
                    Ok(ServerReply::Event(ClientEvent::Message {
                        sender: MemberId::new(daemon, client),
                        groups,
                        service,
                        ring_seq,
                        stamp,
                        payload: Bytes::copy_from_slice(&buf[..len]),
                    }))
                }
                2 => {
                    let group = take_str(&mut buf)?;
                    if buf.len() < 2 {
                        return Err(bad("truncated member count"));
                    }
                    let n = buf.get_u16() as usize;
                    let mut members = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        if buf.len() < 2 {
                            return Err(bad("truncated member"));
                        }
                        let d = ParticipantId::new(buf.get_u16());
                        let c = take_str(&mut buf)?;
                        members.push(MemberId::new(d, c));
                    }
                    Ok(ServerReply::Event(ClientEvent::Membership {
                        group,
                        members,
                    }))
                }
                3 => {
                    if buf.len() < 2 {
                        return Err(bad("truncated daemon count"));
                    }
                    let n = buf.get_u16() as usize;
                    let mut daemons = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        if buf.len() < 2 {
                            return Err(bad("truncated daemon id"));
                        }
                        daemons.push(ParticipantId::new(buf.get_u16()));
                    }
                    Ok(ServerReply::Event(ClientEvent::NetworkChange { daemons }))
                }
                4 => {
                    if buf.len() < 16 {
                        return Err(bad("truncated ring seq"));
                    }
                    Ok(ServerReply::Event(ClientEvent::Ordered {
                        ring_seq: buf.get_u64(),
                        stamp: buf.get_u64(),
                    }))
                }
                _ => Err(bad("unknown event kind")),
            }
        }
        _ => Err(bad("unknown reply kind")),
    }
}

// ---- framing ----------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_be_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` for oversized frames.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(bad("frame too large"));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    Ok(frame)
}

// ---- server side --------------------------------------------------------------

/// Handle to a daemon's TCP client listener; dropping it stops
/// accepting new connections, closes the listening socket (freeing the
/// port for a restarted daemon), and joins the accept thread. Existing
/// sessions continue.
#[derive(Debug)]
pub struct ListenerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ListenerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for ListenerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl DaemonHandle {
    /// Starts accepting remote clients on `addr` (TCP).
    ///
    /// # Errors
    ///
    /// Returns any error binding the listener.
    pub fn listen(&self, addr: SocketAddr) -> io::Result<ListenerHandle> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the thread can observe the stop flag
        // (and so the socket closes promptly when the handle drops).
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cmd_tx = self.command_sender();
        let daemon_id = self.pid().as_u16();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || loop {
            if stop_flag.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let cmd_tx = cmd_tx.clone();
                    std::thread::spawn(move || {
                        // Accepted sockets must not inherit the
                        // listener's non-blocking mode.
                        let _ = stream.set_nonblocking(false);
                        let _ = serve_session(stream, cmd_tx, daemon_id);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return,
            }
        });
        Ok(ListenerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

fn serve_session(mut stream: TcpStream, cmd_tx: Sender<Command>, daemon_id: u16) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Handshake.
    let frame = read_frame(&mut stream)?;
    let ClientRequest::Hello { name } = decode_request(&frame)? else {
        let _ = write_frame(
            &mut stream,
            &encode_reply(&ServerReply::Refused {
                reason: "expected hello".into(),
            }),
        );
        return Ok(());
    };
    if name.is_empty() || name.len() > MAX_NAME {
        let _ = write_frame(
            &mut stream,
            &encode_reply(&ServerReply::Refused {
                reason: ClientError::InvalidName.to_string(),
            }),
        );
        return Ok(());
    }
    let (events_tx, events_rx) = bounded::<ClientEvent>(DEFAULT_EVENT_CAPACITY);
    let (ack_tx, ack_rx) = bounded(1);
    if cmd_tx
        .send(Command::Register {
            name: name.clone(),
            events: events_tx,
            wants_send_acks: false,
            drops: Arc::new(AtomicU64::new(0)),
            ack: ack_tx,
        })
        .is_err()
    {
        return Ok(());
    }
    match ack_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            let _ = write_frame(
                &mut stream,
                &encode_reply(&ServerReply::Refused {
                    reason: e.to_string(),
                }),
            );
            return Ok(());
        }
        Err(_) => return Ok(()),
    }
    write_frame(
        &mut stream,
        &encode_reply(&ServerReply::Welcome { daemon: daemon_id }),
    )?;

    // Writer thread: events → socket.
    let mut write_half = stream.try_clone()?;
    let writer = std::thread::spawn(move || -> io::Result<()> {
        loop {
            match events_rx.recv_timeout(Duration::from_millis(200)) {
                Ok(ev) => write_frame(&mut write_half, &encode_reply(&ServerReply::Event(ev)))?,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // The daemon dropped this session's event channel
                    // (shutdown or unregister). Close the socket so the
                    // client observes the disconnect — and can start
                    // reconnecting — instead of writing into a dead
                    // session forever.
                    let _ = write_half.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
            }
        }
    });

    // Reader loop: socket → commands. Connection close unregisters.
    let result = (|| -> io::Result<()> {
        loop {
            let frame = read_frame(&mut stream)?;
            match decode_request(&frame)? {
                ClientRequest::Hello { .. } => return Err(bad("duplicate hello")),
                ClientRequest::Join { group } => {
                    let _ = cmd_tx.send(Command::Join {
                        client: name.clone(),
                        group,
                    });
                }
                ClientRequest::Leave { group } => {
                    let _ = cmd_tx.send(Command::Leave {
                        client: name.clone(),
                        group,
                    });
                }
                ClientRequest::Multicast {
                    groups,
                    service,
                    payload,
                } => {
                    let _ = cmd_tx.send(Command::Multicast {
                        client: name.clone(),
                        groups,
                        service,
                        // Remote sessions do not participate in
                        // cross-shard publisher ordering.
                        stamp: 0,
                        payload,
                    });
                }
            }
        }
    })();
    let _ = cmd_tx.send(Command::Unregister {
        client: name.clone(),
    });
    drop(stream);
    let _ = writer.join();
    // EOF (client closed) is a normal end of session.
    match result {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(()),
        other => other,
    }
}

// ---- client side ----------------------------------------------------------------

/// Reconnection policy for a [`RemoteClient`]: bounded attempts with
/// exponential backoff and decorrelated jitter (the shared
/// [`ar_core::backoff`] schedule). After a detected disconnect (the
/// daemon restarted, or the socket died), the next operation
/// transparently redials, re-runs the handshake, and re-joins every
/// group the client was in.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Maximum dial attempts per recovery (0 disables reconnection).
    pub max_attempts: u32,
    /// Lower bound on the per-attempt delay (the jitter floor).
    pub initial_backoff: Duration,
    /// Upper bound on the per-attempt delay.
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl ReconnectPolicy {
    /// No reconnection: the first socket error is surfaced to the
    /// caller (the pre-hardening behaviour).
    pub fn disabled() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 0,
            ..ReconnectPolicy::default()
        }
    }
}

/// Dials `addr` and performs the hello/welcome handshake.
fn handshake(addr: SocketAddr, name: &str) -> io::Result<(TcpStream, u16)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &encode_request(&ClientRequest::Hello {
            name: name.to_string(),
        }),
    )?;
    let frame = read_frame(&mut stream)?;
    match decode_reply(&frame)? {
        ServerReply::Welcome { daemon } => Ok((stream, daemon)),
        ServerReply::Refused { reason } => {
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
        }
        ServerReply::Event(_) => Err(bad("event before welcome")),
    }
}

/// Spawns the reader thread: socket → event channel. Sets `gone` when
/// the socket dies so the owning client knows to reconnect.
fn spawn_reader(mut read_half: TcpStream, events_tx: Sender<ClientEvent>, gone: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        while let Ok(frame) = read_frame(&mut read_half) {
            match decode_reply(&frame) {
                Ok(ServerReply::Event(ev)) => {
                    if events_tx.send(ev).is_err() {
                        break;
                    }
                }
                _ => break,
            }
        }
        gone.store(true, Ordering::Release);
    });
}

/// A client connected to a (possibly remote) daemon over TCP, with the
/// same surface as the in-process [`crate::DaemonClient`].
///
/// If the connection drops (e.g. the daemon restarts), the next
/// operation transparently reconnects per the [`ReconnectPolicy`] and
/// re-joins the client's groups. Note that a daemon restart is a
/// membership event: other members see this client leave and re-join.
#[derive(Debug)]
pub struct RemoteClient {
    me: MemberId,
    addr: SocketAddr,
    name: String,
    stream: TcpStream,
    events: Receiver<ClientEvent>,
    events_tx: Sender<ClientEvent>,
    /// Groups this client is in, for re-join after reconnect.
    joined: BTreeSet<String>,
    /// Set by the reader thread when the socket dies.
    gone: Arc<AtomicBool>,
    policy: ReconnectPolicy,
    reconnects: u32,
}

impl RemoteClient {
    /// Connects and performs the handshake, with the default
    /// [`ReconnectPolicy`].
    ///
    /// # Errors
    ///
    /// Returns connection errors, or `InvalidData`/`ConnectionRefused`
    /// if the daemon refuses the name. The initial connect is a single
    /// attempt; the policy governs reconnects only.
    pub fn connect(addr: SocketAddr, name: &str) -> io::Result<RemoteClient> {
        RemoteClient::connect_with(addr, name, ReconnectPolicy::default())
    }

    /// Connects with an explicit reconnection policy.
    ///
    /// # Errors
    ///
    /// As for [`RemoteClient::connect`].
    pub fn connect_with(
        addr: SocketAddr,
        name: &str,
        policy: ReconnectPolicy,
    ) -> io::Result<RemoteClient> {
        let (stream, daemon) = handshake(addr, name)?;
        let (events_tx, events_rx) = unbounded();
        let gone = Arc::new(AtomicBool::new(false));
        spawn_reader(stream.try_clone()?, events_tx.clone(), Arc::clone(&gone));
        Ok(RemoteClient {
            me: MemberId::new(ar_core::ParticipantId::new(daemon), name),
            addr,
            name: name.to_string(),
            stream,
            events: events_rx,
            events_tx,
            joined: BTreeSet::new(),
            gone,
            policy,
            reconnects: 0,
        })
    }

    /// This client's globally unique identifier.
    pub fn member_id(&self) -> &MemberId {
        &self.me
    }

    /// Successful reconnections performed so far.
    pub fn reconnects(&self) -> u32 {
        self.reconnects
    }

    /// One full dial + handshake + re-join attempt.
    fn try_reestablish(&mut self) -> io::Result<()> {
        let (mut stream, daemon) = handshake(self.addr, &self.name)?;
        for group in &self.joined {
            write_frame(
                &mut stream,
                &encode_request(&ClientRequest::Join {
                    group: group.clone(),
                }),
            )?;
        }
        let gone = Arc::new(AtomicBool::new(false));
        spawn_reader(
            stream.try_clone()?,
            self.events_tx.clone(),
            Arc::clone(&gone),
        );
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.stream = stream;
        self.gone = gone;
        self.me = MemberId::new(ar_core::ParticipantId::new(daemon), &self.name);
        self.reconnects += 1;
        Ok(())
    }

    /// Redials with bounded exponential backoff + decorrelated jitter
    /// (seeded by the client name, so a herd of clients redialling a
    /// restarted daemon fans out instead of thundering in lockstep).
    fn reconnect(&mut self) -> io::Result<()> {
        let seed = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut backoff = ar_core::backoff::Backoff::new(
            ar_core::backoff::BackoffConfig {
                base: self.policy.initial_backoff,
                cap: self.policy.max_backoff,
                max_attempts: self.policy.max_attempts,
            },
            seed,
        );
        let mut last_err = io::Error::new(
            io::ErrorKind::NotConnected,
            "connection lost and reconnection is disabled",
        );
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                match backoff.next_delay() {
                    Some(delay) => std::thread::sleep(delay),
                    None => break,
                }
            }
            match self.try_reestablish() {
                Ok(()) => return Ok(()),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Sends one request, reconnecting first if the reader noticed a
    /// dead socket, and retrying once if the write itself fails.
    fn send(&mut self, req: &ClientRequest) -> io::Result<()> {
        if self.gone.load(Ordering::Acquire) {
            self.reconnect()?;
        }
        match write_frame(&mut self.stream, &encode_request(req)) {
            Ok(()) => Ok(()),
            Err(_) if self.policy.max_attempts > 0 => {
                self.reconnect()?;
                write_frame(&mut self.stream, &encode_request(req))
            }
            Err(e) => Err(e),
        }
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (after exhausting reconnection
    /// attempts).
    pub fn join(&mut self, group: &str) -> io::Result<()> {
        self.joined.insert(group.to_string());
        self.send(&ClientRequest::Join {
            group: group.to_string(),
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (after exhausting reconnection
    /// attempts).
    pub fn leave(&mut self, group: &str) -> io::Result<()> {
        self.joined.remove(group);
        self.send(&ClientRequest::Leave {
            group: group.to_string(),
        })
    }

    /// Multicasts `payload` to `groups` with the given service.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (after exhausting reconnection
    /// attempts).
    pub fn multicast(
        &mut self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
    ) -> io::Result<()> {
        self.send(&ClientRequest::Multicast {
            groups: groups.iter().map(|g| g.to_string()).collect(),
            service,
            payload,
        })
    }

    /// Receives the next event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Drains queued events without waiting.
    pub fn drain(&self) -> Vec<ClientEvent> {
        self.events.try_iter().collect()
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        // The reader thread holds a clone of the stream; shutting the
        // socket down (not just dropping our handle) wakes it and lets
        // the daemon observe the disconnect immediately.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::ParticipantId;

    #[test]
    fn request_roundtrips() {
        for req in [
            ClientRequest::Hello {
                name: "alice".into(),
            },
            ClientRequest::Join { group: "g".into() },
            ClientRequest::Leave { group: "g".into() },
            ClientRequest::Multicast {
                groups: vec!["a".into(), "b".into()],
                service: ServiceType::Safe,
                payload: Bytes::from_static(b"payload"),
            },
        ] {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let replies = [
            ServerReply::Welcome { daemon: 3 },
            ServerReply::Refused {
                reason: "nope".into(),
            },
            ServerReply::Event(ClientEvent::Message {
                sender: MemberId::new(ParticipantId::new(1), "bob"),
                groups: vec!["g".into()],
                service: ServiceType::Agreed,
                ring_seq: 42,
                stamp: 5,
                payload: Bytes::from_static(b"hi"),
            }),
            ServerReply::Event(ClientEvent::Ordered {
                ring_seq: 7,
                stamp: 3,
            }),
            ServerReply::Event(ClientEvent::Membership {
                group: "g".into(),
                members: vec![
                    MemberId::new(ParticipantId::new(0), "a"),
                    MemberId::new(ParticipantId::new(1), "b"),
                ],
            }),
            ServerReply::Event(ClientEvent::NetworkChange {
                daemons: vec![ParticipantId::new(0), ParticipantId::new(1)],
            }),
        ];
        for reply in replies {
            let enc = encode_reply(&reply);
            assert_eq!(decode_reply(&enc).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[7]).is_err());
        // Truncations.
        let enc = encode_request(&ClientRequest::Multicast {
            groups: vec!["g".into()],
            service: ServiceType::Agreed,
            payload: Bytes::from_static(b"xyz"),
        });
        for cut in 0..enc.len() {
            assert!(decode_request(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn framing_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello frame");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }
}
