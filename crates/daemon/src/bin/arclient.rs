//! `arclient` — interactive client for an Accelerated Ring daemon
//! (the `spuser` analog).
//!
//! ```text
//! usage: arclient <daemon-host:port> <name>
//!
//! commands:
//!   join <group>
//!   leave <group>
//!   send <group>[,<group>...] <text>        (agreed delivery)
//!   sends <group>[,<group>...] <text>       (safe delivery)
//!   quit
//! ```
//!
//! Incoming messages and membership changes print as they arrive.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use ar_core::ServiceType;
use ar_daemon::{ClientEvent, RemoteClient};
use bytes::Bytes;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: arclient <daemon-host:port> <name>");
        return ExitCode::from(2);
    }
    let addr = match args[1].parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("arclient: invalid address '{}'", args[1]);
            return ExitCode::from(2);
        }
    };
    let mut client = match RemoteClient::connect(addr, &args[2]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("arclient: cannot connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected as {}", client.member_id());

    let stdin = std::io::stdin();
    print_prompt();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        // Print any queued events first.
        for ev in client.drain() {
            print_event(&ev);
        }
        let line = line.trim();
        if line.is_empty() {
            print_prompt();
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        match verb {
            "quit" | "exit" => break,
            "join" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.join(g) {
                        eprintln!("join failed: {e}");
                    }
                }
                None => eprintln!("usage: join <group>"),
            },
            "leave" => match parts.next() {
                Some(g) => {
                    if let Err(e) = client.leave(g) {
                        eprintln!("leave failed: {e}");
                    }
                }
                None => eprintln!("usage: leave <group>"),
            },
            "send" | "sends" => {
                let service = if verb == "sends" {
                    ServiceType::Safe
                } else {
                    ServiceType::Agreed
                };
                match (parts.next(), parts.next()) {
                    (Some(groups), Some(text)) => {
                        let gs: Vec<&str> = groups.split(',').collect();
                        if let Err(e) =
                            client.multicast(&gs, service, Bytes::from(text.to_string()))
                        {
                            eprintln!("send failed: {e}");
                        }
                    }
                    _ => eprintln!("usage: {verb} <group>[,<group>...] <text>"),
                }
            }
            other => eprintln!("unknown command '{other}' (join/leave/send/sends/quit)"),
        }
        // Give events a moment to arrive, then print them.
        std::thread::sleep(Duration::from_millis(100));
        for ev in client.drain() {
            print_event(&ev);
        }
        print_prompt();
    }
    println!("bye");
    ExitCode::SUCCESS
}

fn print_prompt() {
    print!("> ");
    let _ = std::io::stdout().flush();
}

fn print_event(ev: &ClientEvent) {
    match ev {
        ClientEvent::Message {
            sender,
            groups,
            service,
            payload,
        } => {
            println!(
                "[{service}] {sender} -> {}: {}",
                groups.join(","),
                String::from_utf8_lossy(payload)
            );
        }
        ClientEvent::Membership { group, members } => {
            let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            println!("[membership] {group}: {{{}}}", names.join(", "));
        }
        ClientEvent::NetworkChange { daemons } => {
            let names: Vec<String> = daemons.iter().map(|d| d.to_string()).collect();
            println!("[network] daemons: {{{}}}", names.join(", "));
        }
    }
}
