//! `ard` — the Accelerated Ring daemon.
//!
//! Runs one ring participant from a deployment file (see
//! [`ar_daemon::deployconf`]) and serves local and remote clients,
//! playing the role of the `spread` daemon binary.
//!
//! ```text
//! usage: ard <config-file> <daemon-id>
//!
//! # terminal 1              # terminal 2
//! ard ar.conf 0             ard ar.conf 1
//! ```

use std::process::ExitCode;

use ar_core::Participant;
use ar_daemon::{spawn_daemon, Deployment};
use ar_net::UdpTransport;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: ard <config-file> <daemon-id>");
        return ExitCode::from(2);
    }
    let deployment = match Deployment::load(&args[1]) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ard: {}: {e}", args[1]);
            return ExitCode::FAILURE;
        }
    };
    let id: u16 = match args[2].parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("ard: daemon id must be a small integer");
            return ExitCode::from(2);
        }
    };
    let pid = ar_core::ParticipantId::new(id);
    let Some(entry) = deployment.daemon(pid) else {
        eprintln!("ard: daemon {id} is not in {}", args[1]);
        return ExitCode::FAILURE;
    };

    let transport = match UdpTransport::bind(pid, deployment.peer_map()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ard: cannot bind protocol sockets: {e}");
            return ExitCode::FAILURE;
        }
    };
    let members = deployment.members();
    let ring_seq = 1;
    let ring_id = ar_core::RingId::new(members[0], ring_seq);
    let participant = match Participant::new(pid, deployment.protocol, ring_id, members.clone()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ard: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ard: daemon {pid} on ring of {} ({} protocol, token {}, data {})",
        members.len(),
        deployment.protocol.variant,
        entry.addrs.token,
        entry.addrs.data,
    );

    let handle = spawn_daemon(participant, transport);
    let listener = match entry.client_addr {
        Some(addr) => match handle.listen(addr) {
            Ok(l) => {
                println!("ard: accepting clients on {}", l.local_addr());
                Some(l)
            }
            Err(e) => {
                eprintln!("ard: cannot listen for clients on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            println!("ard: no client listener configured (protocol-only daemon)");
            None
        }
    };

    // Run until interrupted.
    println!("ard: running; press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        let _ = &listener;
    }
}
