//! The group membership table.
//!
//! Every daemon maintains the same table by applying the totally
//! ordered stream of [`Envelope::Join`]/[`Envelope::Leave`] messages
//! (and ring configuration changes) in delivery order — so all daemons
//! agree on every group's membership at every point of the total order.
//!
//! [`Envelope::Join`]: crate::proto::Envelope::Join
//! [`Envelope::Leave`]: crate::proto::Envelope::Leave

use std::collections::{BTreeMap, BTreeSet};

use ar_core::ParticipantId;

use crate::proto::MemberId;

/// The membership of all groups, as agreed through the total order.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    groups: BTreeMap<String, BTreeSet<MemberId>>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    /// Applies a join; returns true if the membership changed.
    pub fn join(&mut self, group: &str, member: MemberId) -> bool {
        self.groups
            .entry(group.to_string())
            .or_default()
            .insert(member)
    }

    /// Applies a leave; returns true if the membership changed. Empty
    /// groups are removed.
    pub fn leave(&mut self, group: &str, member: &MemberId) -> bool {
        let Some(members) = self.groups.get_mut(group) else {
            return false;
        };
        let removed = members.remove(member);
        if members.is_empty() {
            self.groups.remove(group);
        }
        removed
    }

    /// Members of `group`, in canonical order (empty slice if the group
    /// does not exist).
    pub fn members(&self, group: &str) -> Vec<MemberId> {
        self.groups
            .get(group)
            .map(|m| m.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// True if `member` belongs to `group`.
    pub fn is_member(&self, group: &str, member: &MemberId) -> bool {
        self.groups.get(group).is_some_and(|m| m.contains(member))
    }

    /// All group names with at least one member.
    pub fn group_names(&self) -> Vec<String> {
        self.groups.keys().cloned().collect()
    }

    /// Number of non-empty groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Removes every member whose daemon is *not* in `daemons` (applied
    /// on a regular configuration change: clients of partitioned or
    /// crashed daemons leave all groups). Returns the names of groups
    /// whose membership changed.
    pub fn retain_daemons(&mut self, daemons: &[ParticipantId]) -> Vec<String> {
        let mut changed = Vec::new();
        self.groups.retain(|name, members| {
            let before = members.len();
            members.retain(|m| daemons.contains(&m.daemon));
            if members.len() != before {
                changed.push(name.clone());
            }
            !members.is_empty()
        });
        changed.sort();
        changed
    }

    /// Removes every group membership of `member` (applied when a local
    /// client disconnects). Returns the affected group names.
    pub fn remove_member_everywhere(&mut self, member: &MemberId) -> Vec<String> {
        let mut changed = Vec::new();
        self.groups.retain(|name, members| {
            if members.remove(member) {
                changed.push(name.clone());
            }
            !members.is_empty()
        });
        changed.sort();
        changed
    }

    /// The distinct local clients (at daemon `local`) that belong to
    /// any of `groups` — the delivery set for a multi-group multicast
    /// (each client receives the message once even if it is in several
    /// target groups).
    pub fn local_recipients(&self, local: ParticipantId, groups: &[String]) -> Vec<MemberId> {
        let mut out: BTreeSet<MemberId> = BTreeSet::new();
        for g in groups {
            if let Some(members) = self.groups.get(g) {
                for m in members {
                    if m.daemon == local {
                        out.insert(m.clone());
                    }
                }
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(d: u16, c: &str) -> MemberId {
        MemberId::new(ParticipantId::new(d), c)
    }

    #[test]
    fn join_and_leave() {
        let mut t = GroupTable::new();
        assert!(t.join("chat", m(0, "a")));
        assert!(!t.join("chat", m(0, "a")), "duplicate join is a no-op");
        assert!(t.join("chat", m(1, "b")));
        assert_eq!(t.members("chat").len(), 2);
        assert!(t.is_member("chat", &m(0, "a")));
        assert!(t.leave("chat", &m(0, "a")));
        assert!(!t.leave("chat", &m(0, "a")));
        assert_eq!(t.members("chat"), vec![m(1, "b")]);
    }

    #[test]
    fn empty_groups_disappear() {
        let mut t = GroupTable::new();
        t.join("g", m(0, "a"));
        t.leave("g", &m(0, "a"));
        assert!(t.is_empty());
        assert!(t.members("g").is_empty());
    }

    #[test]
    fn leave_unknown_group_is_noop() {
        let mut t = GroupTable::new();
        assert!(!t.leave("nope", &m(0, "a")));
    }

    #[test]
    fn retain_daemons_drops_partitioned_clients() {
        let mut t = GroupTable::new();
        t.join("g1", m(0, "a"));
        t.join("g1", m(1, "b"));
        t.join("g2", m(1, "c"));
        let changed = t.retain_daemons(&[ParticipantId::new(0)]);
        assert_eq!(changed, vec!["g1".to_string(), "g2".to_string()]);
        assert_eq!(t.members("g1"), vec![m(0, "a")]);
        assert!(t.members("g2").is_empty());
    }

    #[test]
    fn remove_member_everywhere_covers_all_groups() {
        let mut t = GroupTable::new();
        t.join("g1", m(0, "a"));
        t.join("g2", m(0, "a"));
        t.join("g2", m(0, "b"));
        let changed = t.remove_member_everywhere(&m(0, "a"));
        assert_eq!(changed, vec!["g1".to_string(), "g2".to_string()]);
        assert!(t.members("g1").is_empty());
        assert_eq!(t.members("g2"), vec![m(0, "b")]);
    }

    #[test]
    fn local_recipients_dedup_across_groups() {
        let mut t = GroupTable::new();
        let local = ParticipantId::new(0);
        t.join("g1", m(0, "a"));
        t.join("g2", m(0, "a"));
        t.join("g2", m(0, "b"));
        t.join("g2", m(1, "remote"));
        let rcpt = t.local_recipients(local, &["g1".into(), "g2".into()]);
        assert_eq!(rcpt, vec![m(0, "a"), m(0, "b")], "deduped, local only");
    }

    #[test]
    fn members_are_canonically_ordered() {
        let mut t = GroupTable::new();
        t.join("g", m(1, "z"));
        t.join("g", m(0, "a"));
        t.join("g", m(0, "b"));
        assert_eq!(t.members("g"), vec![m(0, "a"), m(0, "b"), m(1, "z")]);
    }
}
