//! The daemon: one protocol participant serving many local clients.
//!
//! The daemon thread owns the protocol runtime and the group table. All
//! client interaction happens over channels (standing in for the
//! paper's IPC sockets): clients submit commands; the daemon pushes
//! ordered messages and membership events back. Everything that must be
//! consistent across daemons — group joins and leaves as well as data —
//! travels through the ring's total order.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ar_core::{ConfigChangeKind, Delivery, Participant, ParticipantId, ServiceType};
use ar_log::{FsyncPolicy, LogConfig, SegmentedLog};
use ar_telemetry::Counter;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use ar_net::{AppEvent, Runtime, Transport};

use crate::client::{ClientError, ClientEvent, DaemonClient};
use crate::group::GroupTable;
use crate::metrics::TelemetryHub;
use crate::packing::{decode_bundle, BundleEntry, Packer, Reassembler, DEFAULT_BUNDLE_BUDGET};
use crate::proto::{Envelope, MemberId, MAX_NAME};

/// Commands from client sessions to the daemon thread.
#[derive(Debug)]
pub(crate) enum Command {
    Register {
        name: String,
        events: Sender<ClientEvent>,
        /// When set, the session also receives a
        /// [`ClientEvent::Ordered`] each time one of its own
        /// multicasts is applied (the `ar-svc` tier's publish-credit
        /// replenishment signal).
        wants_send_acks: bool,
        /// Shared counter of events dropped because the session's
        /// bounded queue was full.
        drops: Arc<AtomicU64>,
        ack: Sender<Result<(), ClientError>>,
    },
    Unregister {
        client: String,
    },
    Join {
        client: String,
        group: String,
    },
    Leave {
        client: String,
        group: String,
    },
    Multicast {
        client: String,
        groups: Vec<String>,
        service: ServiceType,
        /// Per-publisher sequence stamp (0 = unstamped); travels in the
        /// ordered envelope for cross-shard FIFO restoration.
        stamp: u64,
        payload: Bytes,
    },
}

/// Live backpressure signals shared between the daemon loop and the
/// client service tier (`ar-svc`).
///
/// The daemon loop refreshes these every iteration; the service tier
/// reads them when deciding whether to hand out publish credits, so
/// offered load backs off *before* the ring's send queue (and the
/// daemon's memory) can grow without bound.
#[derive(Debug, Default)]
pub struct RingPressure {
    /// Protocol send-queue depth plus the daemon's backpressured
    /// outbox, in bundles.
    send_queue: AtomicUsize,
}

impl RingPressure {
    /// Current send-queue depth (protocol pending + daemon outbox).
    pub fn send_queue_depth(&self) -> usize {
        self.send_queue.load(Ordering::Relaxed)
    }

    /// Replaces the depth (called by the daemon loop).
    pub fn set_send_queue_depth(&self, depth: usize) {
        self.send_queue.store(depth, Ordering::Relaxed);
    }
}

/// Handle to a running daemon.
///
/// Dropping the handle shuts the daemon down and joins its thread.
#[derive(Debug)]
pub struct DaemonHandle {
    pid: ParticipantId,
    cmd_tx: Sender<Command>,
    shutdown_tx: Sender<()>,
    pressure: Arc<RingPressure>,
    join: Option<JoinHandle<io::Result<()>>>,
}

/// Durable-log configuration for a daemon (see [`ar_log`]).
///
/// When attached, every ordered delivery is appended to a segmented
/// on-disk log at Agreed time; on restart the daemon recovers its ring
/// identity, delivery cursor, and group state from disk before joining
/// the ring. With `gate_safe` on, Safe deliveries are additionally
/// withheld from the application until the record is fsynced, making
/// "Safe" mean *replicated and durable*.
#[derive(Debug, Clone)]
pub struct DaemonLogConfig {
    /// Directory holding the log segments (created if missing).
    pub dir: PathBuf,
    /// When appended records are forced to disk.
    pub fsync: FsyncPolicy,
    /// Gate Safe delivery on local durability.
    pub gate_safe: bool,
}

impl DaemonLogConfig {
    /// Log in `dir` with the default fsync policy and Safe gating on.
    pub fn new(dir: impl Into<PathBuf>) -> DaemonLogConfig {
        DaemonLogConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            gate_safe: true,
        }
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> DaemonLogConfig {
        self.fsync = fsync;
        self
    }

    /// Enables or disables gating Safe delivery on local durability.
    #[must_use]
    pub fn with_gate_safe(mut self, gate: bool) -> DaemonLogConfig {
        self.gate_safe = gate;
        self
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Byte budget for packing client messages into one protocol
    /// payload (Spread's small-message packing; §IV-A.3 of the paper).
    /// Client messages larger than the budget are fragmented.
    pub bundle_budget: usize,
    /// On shutdown, keep stepping the protocol for at most this long
    /// while already-submitted client messages drain out (packers,
    /// outbox, and the protocol send queue). Zero returns immediately.
    pub drain_timeout: Duration,
    /// When set, the daemon records runtime metrics into the hub's
    /// registry, attaches its flight recorder to the participant, and
    /// refreshes the hub's stats snapshot every loop iteration. Serve
    /// it with [`crate::serve_metrics`].
    pub telemetry: Option<std::sync::Arc<TelemetryHub>>,
    /// When set, deliveries are persisted to a segmented on-disk log
    /// and recovered (ring identity, cursor, group state) on restart.
    pub log: Option<DaemonLogConfig>,
    /// Ring shard index this daemon serves, when it is one of several
    /// rings hosted by a [`ShardedDaemon`](crate::ShardedDaemon).
    /// Telemetry series and stats snapshots are labelled with it so N
    /// shards sharing one hub export side by side.
    pub shard: Option<usize>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bundle_budget: DEFAULT_BUNDLE_BUDGET,
            drain_timeout: Duration::from_millis(500),
            telemetry: None,
            log: None,
            shard: None,
        }
    }
}

/// Spawns a daemon thread serving the given participant over the given
/// transport, with default tuning.
pub fn spawn_daemon<T: Transport + Send + 'static>(
    part: Participant,
    transport: T,
) -> DaemonHandle {
    spawn_daemon_with(part, transport, DaemonConfig::default())
}

/// Spawns a daemon with explicit tuning.
pub fn spawn_daemon_with<T: Transport + Send + 'static>(
    part: Participant,
    transport: T,
    config: DaemonConfig,
) -> DaemonHandle {
    let pid = part.pid();
    let (cmd_tx, cmd_rx) = unbounded::<Command>();
    let (shutdown_tx, shutdown_rx) = bounded::<()>(1);
    let pressure = Arc::new(RingPressure::default());
    let pressure2 = Arc::clone(&pressure);
    let join = std::thread::spawn(move || {
        DaemonLoop::new(part, transport, config, cmd_rx, shutdown_rx, pressure2)?.run()
    });
    DaemonHandle {
        pid,
        cmd_tx,
        shutdown_tx,
        pressure,
        join: Some(join),
    }
}

impl DaemonHandle {
    /// The daemon's participant identifier.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// The command channel (used by the TCP session layer and the
    /// `ar-svc` service tier to register remote clients through the
    /// same path as in-process ones).
    pub(crate) fn command_sender(&self) -> Sender<Command> {
        self.cmd_tx.clone()
    }

    /// The shared backpressure gauge the daemon loop refreshes every
    /// iteration (send-queue depth for the service tier's credit
    /// throttling).
    pub fn ring_pressure(&self) -> Arc<RingPressure> {
        Arc::clone(&self.pressure)
    }

    /// A cloneable, `Send` connector for registering clients from
    /// other threads (the `ar-svc` service tier runs its multiplexer
    /// on its own thread and cannot borrow the handle).
    pub fn connector(&self) -> DaemonConnector {
        DaemonConnector {
            pid: self.pid,
            cmd_tx: self.cmd_tx.clone(),
        }
    }

    /// Connects a new client with the given private name and the
    /// default bounded event queue
    /// ([`crate::client::DEFAULT_EVENT_CAPACITY`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::InvalidName`],
    /// [`ClientError::DuplicateName`], or [`ClientError::DaemonDown`].
    pub fn connect(&self, name: &str) -> Result<DaemonClient, ClientError> {
        self.connect_with_capacity(name, crate::client::DEFAULT_EVENT_CAPACITY)
    }

    /// Connects with an explicit event-queue capacity. Once the queue
    /// holds `capacity` undrained events, further events are dropped
    /// and counted ([`DaemonClient::dropped_events`]) instead of
    /// growing daemon memory.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect).
    pub fn connect_with_capacity(
        &self,
        name: &str,
        capacity: usize,
    ) -> Result<DaemonClient, ClientError> {
        self.connect_inner(name, capacity, false)
    }

    /// Connects a service-tier session: like
    /// [`connect_with_capacity`](Self::connect_with_capacity), but the
    /// session additionally receives a [`ClientEvent::Ordered`] each
    /// time one of its own multicasts is applied. The `ar-svc` tier
    /// uses this to replenish per-client publish credits at Agreed
    /// time.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect).
    pub fn connect_service(
        &self,
        name: &str,
        capacity: usize,
    ) -> Result<DaemonClient, ClientError> {
        self.connect_inner(name, capacity, true)
    }

    fn connect_inner(
        &self,
        name: &str,
        capacity: usize,
        wants_send_acks: bool,
    ) -> Result<DaemonClient, ClientError> {
        self.connector()
            .connect_inner(name, capacity, wants_send_acks)
    }

    /// Stops the daemon and returns its loop result.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the daemon loop hit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_now()
    }

    fn shutdown_now(&mut self) -> io::Result<()> {
        let _ = self.shutdown_tx.send(());
        match self.join.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("daemon thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_now();
    }
}

/// A cloneable, thread-safe way to register clients at a daemon (see
/// [`DaemonHandle::connector`]). Outliving the daemon is safe: every
/// operation then fails with [`ClientError::DaemonDown`].
#[derive(Debug, Clone)]
pub struct DaemonConnector {
    pid: ParticipantId,
    cmd_tx: Sender<Command>,
}

impl DaemonConnector {
    /// The daemon's participant identifier.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// As [`DaemonHandle::connect`].
    ///
    /// # Errors
    ///
    /// As for [`DaemonHandle::connect`].
    pub fn connect(&self, name: &str) -> Result<DaemonClient, ClientError> {
        self.connect_inner(name, crate::client::DEFAULT_EVENT_CAPACITY, false)
    }

    /// As [`DaemonHandle::connect_with_capacity`].
    ///
    /// # Errors
    ///
    /// As for [`DaemonHandle::connect`].
    pub fn connect_with_capacity(
        &self,
        name: &str,
        capacity: usize,
    ) -> Result<DaemonClient, ClientError> {
        self.connect_inner(name, capacity, false)
    }

    /// As [`DaemonHandle::connect_service`].
    ///
    /// # Errors
    ///
    /// As for [`DaemonHandle::connect`].
    pub fn connect_service(
        &self,
        name: &str,
        capacity: usize,
    ) -> Result<DaemonClient, ClientError> {
        self.connect_inner(name, capacity, true)
    }

    fn connect_inner(
        &self,
        name: &str,
        capacity: usize,
        wants_send_acks: bool,
    ) -> Result<DaemonClient, ClientError> {
        if name.is_empty() || name.len() > MAX_NAME {
            return Err(ClientError::InvalidName);
        }
        let (events_tx, events_rx) = bounded(capacity.max(1));
        let (ack_tx, ack_rx) = bounded(1);
        let drops = Arc::new(AtomicU64::new(0));
        self.cmd_tx
            .send(Command::Register {
                name: name.to_string(),
                events: events_tx,
                wants_send_acks,
                drops: Arc::clone(&drops),
                ack: ack_tx,
            })
            .map_err(|_| ClientError::DaemonDown)?;
        ack_rx
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| ClientError::DaemonDown)??;
        Ok(DaemonClient {
            me: MemberId::new(self.pid, name),
            cmd_tx: self.cmd_tx.clone(),
            events: events_rx,
            dropped: drops,
        })
    }
}

/// A registered client session, as the daemon loop sees it.
struct Session {
    tx: Sender<ClientEvent>,
    /// Receive [`ClientEvent::Ordered`] for own applied multicasts
    /// (the service tier's credit-replenishment signal).
    wants_send_acks: bool,
    /// Events dropped because the bounded queue was full (shared with
    /// the client handle / service tier).
    drops: Arc<AtomicU64>,
}

impl Session {
    /// Non-blocking event delivery: a stalled client loses events (and
    /// they are counted) rather than stalling the protocol loop.
    fn push(&self, ev: ClientEvent, overflow: &Counter) {
        if self.tx.try_send(ev).is_err() {
            self.drops.fetch_add(1, Ordering::Relaxed);
            overflow.add(1);
        }
    }
}

struct DaemonLoop<T: Transport> {
    rt: Runtime<T>,
    pid: ParticipantId,
    cmd_rx: Receiver<Command>,
    shutdown_rx: Receiver<()>,
    sessions: HashMap<String, Session>,
    groups: GroupTable,
    /// Per-service packers bundling small messages together (a bundle
    /// travels as one protocol payload with one service level).
    packers: HashMap<ServiceType, Packer>,
    /// Rebuilds fragmented large messages from the ordered stream.
    reassembler: Reassembler,
    /// Bundles waiting for protocol queue space (backpressure).
    outbox: VecDeque<(Bytes, ServiceType)>,
    bundle_budget: usize,
    drain_timeout: Duration,
    next_msg_id: u64,
    /// Daemons in the last installed regular configuration, to detect
    /// merges (newly added daemons) that require a group-state
    /// re-announcement.
    ring_daemons: Vec<ParticipantId>,
    /// Telemetry hub to refresh each iteration, when instrumented.
    telemetry: Option<std::sync::Arc<TelemetryHub>>,
    /// Deliveries recovered from the durable log at startup, replayed
    /// through the normal dispatch path (before any client connects)
    /// to rebuild group and reassembly state.
    replay: Vec<AppEvent>,
    /// Buffered log records lost because the shutdown flush failed.
    log_tail_dropped: Counter,
    /// Client events dropped across all sessions (bounded queues full).
    event_overflow: Counter,
    /// Shared backpressure gauge, refreshed every loop iteration.
    pressure: Arc<RingPressure>,
    /// Shard index for telemetry labelling (0 when unsharded).
    shard: usize,
}

impl<T: Transport> DaemonLoop<T> {
    fn new(
        part: Participant,
        transport: T,
        config: DaemonConfig,
        cmd_rx: Receiver<Command>,
        shutdown_rx: Receiver<()>,
        pressure: Arc<RingPressure>,
    ) -> io::Result<DaemonLoop<T>> {
        let pid = part.pid();
        let mut rt = Runtime::new(part, transport);
        let labels = config
            .shard
            .map(ar_net::NetMetrics::shard_labels)
            .unwrap_or_default();
        if let Some(hub) = &config.telemetry {
            rt.set_metrics(ar_net::NetMetrics::register_labeled(&hub.registry, &labels));
            rt.set_observer(hub.flight.clone());
        }
        let log_tail_dropped = match &config.telemetry {
            Some(hub) => hub.registry.counter_labeled(
                "ar_daemon_log_tail_dropped_total",
                &labels,
                "Buffered durable-log records dropped because the shutdown flush failed",
            ),
            None => Counter::default(),
        };
        let event_overflow = match &config.telemetry {
            Some(hub) => hub.registry.counter_labeled(
                "ar_daemon_client_event_overflow_total",
                &labels,
                "Client events dropped because a session's bounded event queue was full",
            ),
            None => Counter::default(),
        };
        let mut replay = Vec::new();
        if let Some(log_cfg) = &config.log {
            let cfg = LogConfig::new(&log_cfg.dir).with_fsync(log_cfg.fsync);
            let (log, recovered) = SegmentedLog::open(cfg)?;
            // Replay the full recovered delivery stream so the group
            // table and reassembler reconverge to their pre-crash
            // state. No client sessions exist yet, so nothing is
            // re-delivered to applications; Join/Leave application is
            // idempotent.
            replay = recovered
                .deliveries
                .iter()
                .map(|(_, r)| {
                    AppEvent::Delivered(Delivery {
                        ring_id: r.ring,
                        seq: r.seq,
                        pid: r.pid,
                        service: r.service,
                        payload: r.payload.clone(),
                    })
                })
                .collect();
            rt.attach_durable_log(log, log_cfg.gate_safe);
        }
        Ok(DaemonLoop {
            rt,
            pid,
            cmd_rx,
            shutdown_rx,
            sessions: HashMap::new(),
            groups: GroupTable::new(),
            packers: HashMap::new(),
            reassembler: Reassembler::new(),
            outbox: VecDeque::new(),
            bundle_budget: config.bundle_budget,
            drain_timeout: config.drain_timeout,
            next_msg_id: 0,
            ring_daemons: Vec::new(),
            telemetry: config.telemetry,
            replay,
            log_tail_dropped,
            event_overflow,
            pressure,
            shard: config.shard.unwrap_or(0),
        })
    }

    fn run(mut self) -> io::Result<()> {
        let replay = std::mem::take(&mut self.replay);
        self.dispatch(replay);
        // Local members recovered from the log belong to the previous
        // incarnation and have no session any more: drop them so a
        // later merge does not re-announce phantoms. Remote state
        // self-heals through retain_daemons and join re-announcement
        // on the first installed configuration.
        for group in self.groups.group_names() {
            for m in self.groups.members(&group) {
                if m.daemon == self.pid && !self.sessions.contains_key(&m.client) {
                    self.groups.leave(&group, &m);
                }
            }
        }
        let events = self.rt.start()?;
        self.dispatch(events);
        loop {
            if self.shutdown_rx.try_recv().is_ok() {
                return self.drain();
            }
            // Drain a burst of commands first so messages submitted
            // together pack together.
            while let Ok(cmd) = self.cmd_rx.try_recv() {
                self.handle_command(cmd);
            }
            self.drain_packers();
            self.flush_outbox();
            let events = self.rt.step()?;
            self.dispatch(events);
            self.pressure
                .set_send_queue_depth(self.rt.participant().pending_len() + self.outbox.len());
            if let Some(hub) = &self.telemetry {
                hub.update_shard_stats(self.shard, *self.rt.participant().stats());
            }
        }
    }

    /// Graceful shutdown: flush everything clients already handed us —
    /// packed bundles, the backpressured outbox, and the protocol send
    /// queue — by continuing to step the ring, bounded by the
    /// configured drain timeout. A daemon killed mid-burst would
    /// otherwise silently discard ordered-but-unsent client messages.
    fn drain(&mut self) -> io::Result<()> {
        let deadline = std::time::Instant::now() + self.drain_timeout;
        while let Ok(cmd) = self.cmd_rx.try_recv() {
            self.handle_command(cmd);
        }
        self.drain_packers();
        loop {
            let idle = self.outbox.is_empty() && self.rt.participant().pending_len() == 0;
            if idle || std::time::Instant::now() >= deadline {
                break;
            }
            self.flush_outbox();
            let events = self.rt.step()?;
            self.dispatch(events);
        }
        // Force the buffered durable-log tail to disk before exiting:
        // records the runtime already appended must survive a clean
        // shutdown regardless of fsync policy. A failed flush is
        // counted, not swallowed silently.
        let unsynced = self
            .rt
            .durable_log()
            .map_or(0, |log| log.unsynced_records());
        match self.rt.flush_durable_log() {
            Ok(events) => self.dispatch(events),
            Err(e) => {
                let lost = unsynced.max(1);
                self.log_tail_dropped.add(lost);
                if let Some(hub) = &self.telemetry {
                    use ar_core::Observer;
                    hub.flight.on_event(
                        self.rt.elapsed_nanos(),
                        &ar_core::ProtoEvent::LogTailDropped { records: lost },
                    );
                }
                eprintln!(
                    "ar-daemon {}: durable log tail lost on shutdown: {e}",
                    self.pid
                );
            }
        }
        Ok(())
    }

    fn packer(&mut self, service: ServiceType) -> &mut Packer {
        let budget = self.bundle_budget;
        self.packers
            .entry(service)
            .or_insert_with(|| Packer::new(budget))
    }

    fn submit_envelope(&mut self, env: Envelope, service: ServiceType) {
        self.packer(service).push(env);
    }

    fn drain_packers(&mut self) {
        // Deterministic order over the small service set.
        for service in [
            ServiceType::Reliable,
            ServiceType::Fifo,
            ServiceType::Causal,
            ServiceType::Agreed,
            ServiceType::Safe,
        ] {
            if let Some(p) = self.packers.get_mut(&service) {
                while let Some(bundle) = p.next_bundle() {
                    self.outbox.push_back((bundle, service));
                }
            }
        }
    }

    fn flush_outbox(&mut self) {
        while let Some((bytes, service)) = self.outbox.front() {
            match self.rt.submit(bytes.clone(), *service) {
                Ok(()) => {
                    self.outbox.pop_front();
                }
                Err(_) => break, // protocol backpressure: retry next loop
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) {
        match cmd {
            Command::Register {
                name,
                events,
                wants_send_acks,
                drops,
                ack,
            } => {
                let result = match self.sessions.entry(name) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        Err(ClientError::DuplicateName)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(Session {
                            tx: events,
                            wants_send_acks,
                            drops,
                        });
                        Ok(())
                    }
                };
                let _ = ack.send(result);
            }
            Command::Unregister { client } => {
                self.sessions.remove(&client);
                // Ordered leaves for every group the client was in.
                let me = MemberId::new(self.pid, client);
                for group in self.groups.group_names() {
                    if self.groups.is_member(&group, &me) {
                        self.submit_envelope(
                            Envelope::Leave {
                                member: me.clone(),
                                group,
                            },
                            ServiceType::Agreed,
                        );
                    }
                }
            }
            Command::Join { client, group } => {
                let member = MemberId::new(self.pid, client);
                self.submit_envelope(Envelope::Join { member, group }, ServiceType::Agreed);
            }
            Command::Leave { client, group } => {
                let member = MemberId::new(self.pid, client);
                self.submit_envelope(Envelope::Leave { member, group }, ServiceType::Agreed);
            }
            Command::Multicast {
                client,
                groups,
                service,
                stamp,
                payload,
            } => {
                let sender = MemberId::new(self.pid, client);
                let msg_id = self.next_msg_id;
                self.next_msg_id += 1;
                self.packer(service)
                    .push_data(sender, groups, payload, msg_id, stamp);
            }
        }
    }

    fn dispatch(&mut self, events: Vec<AppEvent>) {
        for ev in events {
            match ev {
                AppEvent::Delivered(d) => {
                    let Ok(entries) = decode_bundle(&d.payload) else {
                        continue; // not ours / corrupt: skip
                    };
                    let ring_seq = d.seq.as_u64();
                    for entry in entries {
                        match entry {
                            BundleEntry::Whole(env) => {
                                self.apply_envelope(env, d.service, ring_seq);
                            }
                            BundleEntry::Fragment(f) => {
                                if let Some((sender, stamp, groups, payload)) =
                                    self.reassembler.feed(f)
                                {
                                    self.apply_envelope(
                                        Envelope::Data {
                                            sender,
                                            stamp,
                                            groups,
                                            payload,
                                        },
                                        d.service,
                                        ring_seq,
                                    );
                                }
                            }
                        }
                    }
                }
                AppEvent::ConfigChanged(c) => {
                    if c.kind == ConfigChangeKind::Regular {
                        self.reassembler.retain_daemons(&c.members);
                        let changed = self.groups.retain_daemons(&c.members);
                        for g in changed {
                            self.notify_membership(&g);
                        }
                        // A merge brought in daemons that never saw our
                        // local clients' joins (group updates are
                        // confined to the configuration they were
                        // ordered in). Re-announce local memberships
                        // through the merged ring so every daemon's
                        // group table reconverges; duplicate joins are
                        // idempotent.
                        let merged = c.members.iter().any(|m| !self.ring_daemons.contains(m));
                        self.ring_daemons = c.members.clone();
                        if merged {
                            self.reannounce_local_groups();
                        }
                        let note = ClientEvent::NetworkChange {
                            daemons: c.members.clone(),
                        };
                        for s in self.sessions.values() {
                            s.push(note.clone(), &self.event_overflow);
                        }
                    }
                }
            }
        }
    }

    fn apply_envelope(&mut self, env: Envelope, service: ServiceType, ring_seq: u64) {
        match env {
            Envelope::Data {
                sender,
                stamp,
                groups,
                payload,
            } => {
                // Recipients' Message events are pushed BEFORE the
                // sender's Ordered ack. The cross-shard hold-back in
                // the service tier depends on this order: once it
                // observes Ordered{stamp}, every local recipient's
                // queue already holds the matching Message, so a
                // hold-back floor computed from observed acks can
                // never release a stamp whose message has not been
                // enqueued yet.
                let recipients = self.groups.local_recipients(self.pid, &groups);
                for r in recipients {
                    if let Some(s) = self.sessions.get(&r.client) {
                        s.push(
                            ClientEvent::Message {
                                sender: sender.clone(),
                                groups: groups.clone(),
                                service,
                                ring_seq,
                                stamp,
                                payload: payload.clone(),
                            },
                            &self.event_overflow,
                        );
                    }
                }
                // The sender's session learns its multicast reached
                // Agreed order, if it opted into send acks (the
                // service tier's publish-credit replenishment; the
                // stamp correlates acks to sends across shards, and a
                // client's own messages are applied in submission
                // order within one shard).
                if sender.daemon == self.pid {
                    if let Some(s) = self.sessions.get(&sender.client) {
                        if s.wants_send_acks {
                            s.push(
                                ClientEvent::Ordered { ring_seq, stamp },
                                &self.event_overflow,
                            );
                        }
                    }
                }
            }
            Envelope::Join { member, group } => {
                if self.groups.join(&group, member) {
                    self.notify_membership(&group);
                }
            }
            Envelope::Leave { member, group } => {
                let was_local = member.daemon == self.pid;
                let leaver = member.clone();
                if self.groups.leave(&group, &member) {
                    self.notify_membership(&group);
                    // The leaver itself also learns the leave took
                    // effect (it is no longer in the table).
                    if was_local {
                        if let Some(s) = self.sessions.get(&leaver.client) {
                            s.push(
                                ClientEvent::Membership {
                                    group: group.clone(),
                                    members: self.groups.members(&group),
                                },
                                &self.event_overflow,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Re-submits an ordered join for every (group, local member)
    /// pair, so daemons that just merged into our configuration learn
    /// of our clients' memberships.
    fn reannounce_local_groups(&mut self) {
        let mut mine = Vec::new();
        for group in self.groups.group_names() {
            for m in self.groups.members(&group) {
                if m.daemon == self.pid {
                    mine.push((group.clone(), m));
                }
            }
        }
        for (group, member) in mine {
            self.submit_envelope(Envelope::Join { member, group }, ServiceType::Agreed);
        }
    }

    /// Sends the group's complete membership to every *local* member.
    fn notify_membership(&mut self, group: &str) {
        let members = self.groups.members(group);
        for m in &members {
            if m.daemon != self.pid {
                continue;
            }
            if let Some(s) = self.sessions.get(&m.client) {
                s.push(
                    ClientEvent::Membership {
                        group: group.to_string(),
                        members: members.clone(),
                    },
                    &self.event_overflow,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{ProtocolConfig, RingId};
    use ar_net::LoopbackNet;
    use std::time::Instant;

    fn ring_of_daemons(n: u16) -> Vec<DaemonHandle> {
        let net = LoopbackNet::new();
        let members: Vec<ParticipantId> = (0..n).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        members
            .iter()
            .map(|&p| {
                let part =
                    Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                        .unwrap();
                spawn_daemon(part, net.endpoint(p))
            })
            .collect()
    }

    fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn join_multicast_deliver_across_daemons() {
        let daemons = ring_of_daemons(2);
        let alice = daemons[0].connect("alice").unwrap();
        let bob = daemons[1].connect("bob").unwrap();
        alice.join("chat").unwrap();
        bob.join("chat").unwrap();

        // Wait until both see a 2-member group.
        let mut alice_members = 0;
        assert!(wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        alice_members = members.len();
                    }
                }
                alice_members == 2
            },
            10
        ));

        bob.multicast(&["chat"], ServiceType::Agreed, Bytes::from_static(b"hi"))
            .unwrap();
        let mut got = None;
        assert!(wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Message {
                        payload, sender, ..
                    } = ev
                    {
                        got = Some((payload, sender));
                    }
                }
                got.is_some()
            },
            10
        ));
        let (payload, sender) = got.unwrap();
        assert_eq!(payload, Bytes::from_static(b"hi"));
        assert_eq!(sender.client, "bob");
    }

    #[test]
    fn open_group_semantics_sender_not_a_member() {
        let daemons = ring_of_daemons(2);
        let member = daemons[0].connect("member").unwrap();
        let outsider = daemons[1].connect("outsider").unwrap();
        member.join("g").unwrap();
        assert!(wait_for(
            || member
                .drain()
                .iter()
                .any(|e| matches!(e, ClientEvent::Membership { .. })),
            10
        ));
        outsider
            .multicast(&["g"], ServiceType::Agreed, Bytes::from_static(b"open"))
            .unwrap();
        assert!(wait_for(
            || member
                .drain()
                .iter()
                .any(|e| matches!(e, ClientEvent::Message { .. })),
            10
        ));
        // The outsider, not being a member, receives nothing.
        assert!(outsider
            .drain()
            .iter()
            .all(|e| !matches!(e, ClientEvent::Message { .. })));
    }

    #[test]
    fn multi_group_multicast_delivers_once() {
        let daemons = ring_of_daemons(2);
        let c = daemons[0].connect("c").unwrap();
        c.join("g1").unwrap();
        c.join("g2").unwrap();
        assert!(wait_for(
            || {
                c.drain()
                    .iter()
                    .filter(|e| matches!(e, ClientEvent::Membership { .. }))
                    .count()
                    >= 1
                    && {
                        std::thread::sleep(Duration::from_millis(100));
                        true
                    }
            },
            10
        ));
        let sender = daemons[1].connect("s").unwrap();
        sender
            .multicast(
                &["g1", "g2"],
                ServiceType::Agreed,
                Bytes::from_static(b"once"),
            )
            .unwrap();
        // Exactly one copy arrives despite two matching groups.
        let mut count = 0;
        wait_for(
            || {
                count += c
                    .drain()
                    .iter()
                    .filter(|e| matches!(e, ClientEvent::Message { .. }))
                    .count();
                count >= 1
            },
            10,
        );
        std::thread::sleep(Duration::from_millis(200));
        count += c
            .drain()
            .iter()
            .filter(|e| matches!(e, ClientEvent::Message { .. }))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn large_message_is_fragmented_and_reassembled() {
        // 100 KiB payload: far beyond the bundle budget and beyond the
        // protocol's maximum payload, so it must travel as fragments
        // and arrive intact.
        let daemons = ring_of_daemons(2);
        let rx = daemons[0].connect("rx").unwrap();
        rx.join("big").unwrap();
        assert!(wait_for(
            || rx
                .drain()
                .iter()
                .any(|e| matches!(e, ClientEvent::Membership { .. })),
            10
        ));
        let tx = daemons[1].connect("tx").unwrap();
        let payload: Vec<u8> = (0..100 * 1024).map(|i| (i % 251) as u8).collect();
        tx.multicast(&["big"], ServiceType::Agreed, Bytes::from(payload.clone()))
            .unwrap();
        let mut got = None;
        assert!(wait_for(
            || {
                for ev in rx.drain() {
                    if let ClientEvent::Message { payload, .. } = ev {
                        got = Some(payload);
                    }
                }
                got.is_some()
            },
            20
        ));
        assert_eq!(got.unwrap(), Bytes::from(payload));
    }

    #[test]
    fn small_messages_pack_into_shared_bundles() {
        // Ten tiny messages submitted in one burst must reach the
        // receiver as ten distinct client messages (packing is
        // transparent), in submission order.
        let daemons = ring_of_daemons(2);
        let rx = daemons[0].connect("rx").unwrap();
        rx.join("g").unwrap();
        assert!(wait_for(
            || rx
                .drain()
                .iter()
                .any(|e| matches!(e, ClientEvent::Membership { .. })),
            10
        ));
        let tx = daemons[1].connect("tx").unwrap();
        for k in 0..10 {
            tx.multicast(
                &["g"],
                ServiceType::Agreed,
                Bytes::from(format!("tiny-{k}")),
            )
            .unwrap();
        }
        let mut texts = Vec::new();
        assert!(wait_for(
            || {
                for ev in rx.drain() {
                    if let ClientEvent::Message { payload, .. } = ev {
                        texts.push(String::from_utf8_lossy(&payload).into_owned());
                    }
                }
                texts.len() >= 10
            },
            20
        ));
        let expected: Vec<String> = (0..10).map(|k| format!("tiny-{k}")).collect();
        assert_eq!(texts, expected);
    }

    #[test]
    fn shutdown_drains_submitted_messages() {
        // A burst of multicasts followed by an immediate shutdown must
        // still reach the surviving daemon: the drain keeps stepping
        // the ring until the send queue empties (bounded by the drain
        // timeout), instead of discarding packed-but-unsent bundles.
        let net = LoopbackNet::new();
        let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let mk = |p: ParticipantId| {
            Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone()).unwrap()
        };
        let d0 = spawn_daemon(mk(members[0]), net.endpoint(members[0]));
        let d1 = spawn_daemon(mk(members[1]), net.endpoint(members[1]));
        let rx = d1.connect("rx").unwrap();
        rx.join("g").unwrap();
        assert!(wait_for(
            || rx
                .drain()
                .iter()
                .any(|e| matches!(e, ClientEvent::Membership { .. })),
            10
        ));
        let tx = d0.connect("tx").unwrap();
        for k in 0..5 {
            tx.multicast(
                &["g"],
                ServiceType::Agreed,
                Bytes::from(format!("drain-{k}")),
            )
            .unwrap();
        }
        drop(tx);
        d0.shutdown().unwrap();
        let mut texts = Vec::new();
        assert!(
            wait_for(
                || {
                    for ev in rx.drain() {
                        if let ClientEvent::Message { payload, .. } = ev {
                            texts.push(String::from_utf8_lossy(&payload).into_owned());
                        }
                    }
                    texts.len() >= 5
                },
                20
            ),
            "got only {texts:?}"
        );
        let expected: Vec<String> = (0..5).map(|k| format!("drain-{k}")).collect();
        assert_eq!(texts, expected);
    }

    #[test]
    fn duplicate_client_name_rejected() {
        let daemons = ring_of_daemons(1);
        let _a = daemons[0].connect("same").unwrap();
        assert_eq!(
            daemons[0].connect("same").unwrap_err(),
            ClientError::DuplicateName
        );
        // A different name is fine.
        let _b = daemons[0].connect("other").unwrap();
    }

    #[test]
    fn invalid_names_rejected() {
        let daemons = ring_of_daemons(1);
        assert_eq!(
            daemons[0].connect("").unwrap_err(),
            ClientError::InvalidName
        );
        let long = "x".repeat(MAX_NAME + 1);
        assert_eq!(
            daemons[0].connect(&long).unwrap_err(),
            ClientError::InvalidName
        );
    }

    #[test]
    fn durable_daemon_recovers_log_and_purges_phantom_members() {
        let dir = std::env::temp_dir().join(format!(
            "ar-daemon-durable-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = |p: ParticipantId| {
            let ring_id = RingId::new(p, 1);
            Participant::new(p, ProtocolConfig::accelerated(), ring_id, vec![p]).unwrap()
        };
        let log_cfg = DaemonLogConfig::new(&dir).with_fsync(ar_log::FsyncPolicy::EveryN(8));
        let cfg = DaemonConfig {
            log: Some(log_cfg.clone()),
            ..DaemonConfig::default()
        };
        // First incarnation: join a group, multicast, shut down.
        {
            let net = LoopbackNet::new();
            let d = spawn_daemon_with(
                mk(ParticipantId::new(0)),
                net.endpoint(ParticipantId::new(0)),
                cfg.clone(),
            );
            let c = d.connect("old").unwrap();
            c.join("g").unwrap();
            assert!(wait_for(
                || c.drain()
                    .iter()
                    .any(|e| matches!(e, ClientEvent::Membership { .. })),
                10
            ));
            c.multicast(&["g"], ServiceType::Safe, Bytes::from_static(b"durable"))
                .unwrap();
            assert!(wait_for(
                || c.drain()
                    .iter()
                    .any(|e| matches!(e, ClientEvent::Message { .. })),
                10
            ));
            drop(c);
            d.shutdown().unwrap();
        }
        // The shutdown flush made the tail durable regardless of policy.
        let recovered = ar_log::read_log_dir(&dir).unwrap();
        assert!(recovered.records > 0, "shutdown flushed the log tail");
        assert!(recovered.cursor.is_some(), "shutdown persisted the cursor");
        // Second incarnation: group state replays from disk, but the
        // previous incarnation's client must not survive as a phantom.
        {
            let net = LoopbackNet::new();
            let d = spawn_daemon_with(
                mk(ParticipantId::new(0)),
                net.endpoint(ParticipantId::new(0)),
                cfg,
            );
            let c = d.connect("fresh").unwrap();
            c.join("g").unwrap();
            let mut members = Vec::new();
            assert!(wait_for(
                || {
                    for ev in c.drain() {
                        if let ClientEvent::Membership { members: m, .. } = ev {
                            members = m;
                        }
                    }
                    !members.is_empty()
                },
                10
            ));
            let names: Vec<&str> = members.iter().map(|m| m.client.as_str()).collect();
            assert_eq!(
                names,
                vec!["fresh"],
                "phantom member resurrected: {names:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disconnect_leaves_groups() {
        let daemons = ring_of_daemons(2);
        let watcher = daemons[0].connect("watcher").unwrap();
        watcher.join("g").unwrap();
        {
            let temp = daemons[1].connect("temp").unwrap();
            temp.join("g").unwrap();
            // Wait for watcher to see both members.
            let mut n = 0;
            assert!(wait_for(
                || {
                    for ev in watcher.drain() {
                        if let ClientEvent::Membership { members, .. } = ev {
                            n = members.len();
                        }
                    }
                    n == 2
                },
                10
            ));
        } // temp drops: ordered leave
        let mut n = usize::MAX;
        assert!(wait_for(
            || {
                for ev in watcher.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 1
            },
            10
        ));
    }
}
