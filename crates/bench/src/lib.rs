//! # ar-bench — the paper's evaluation, regenerated
//!
//! One runnable binary per figure of "Fast Total Ordering for Modern
//! Data Centers" (Babay & Amir, ICDCS 2016), plus the maximum-throughput
//! table, ablation sweeps, and Criterion micro-benchmarks.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `fig1_agreed_1g` | Fig. 1 — Agreed latency vs throughput, 1-gigabit |
//! | `fig2_safe_1g` | Fig. 2 — Safe latency vs throughput, 1-gigabit |
//! | `fig3_agreed_10g` | Fig. 3 — Agreed latency vs throughput, 10-gigabit |
//! | `fig4_large_agreed_10g` | Fig. 4 — 1350 vs 8850-byte payloads, Agreed, 10-gigabit |
//! | `fig5_safe_10g` | Fig. 5 — Safe latency vs throughput, 10-gigabit |
//! | `fig6_large_safe_10g` | Fig. 6 — 1350 vs 8850-byte payloads, Safe, 10-gigabit |
//! | `fig7_safe_low_tput_10g` | Fig. 7 — Safe latency at low throughput (crossover) |
//! | `max_throughput_table` | §IV text — maximum throughput per implementation |
//! | `ablation_accel_window` | design ablation: accelerated-window sweep |
//! | `ablation_priority_method` | design ablation: priority method 1 vs 2 |
//! | `ablation_windows` | design ablation: personal/global window sweep |
//!
//! Each binary prints the series it regenerates as an aligned table and
//! writes a CSV under `results/`.

pub mod figset;
pub mod harness;
pub mod sweep;
pub mod table;

pub use figset::{scenario, Scenario};
pub use sweep::{latency_curve, max_throughput, CurvePoint};
pub use table::{write_csv, Table};
