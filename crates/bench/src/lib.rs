//! # ar-bench — the paper's evaluation, regenerated
//!
//! One runnable binary per figure of "Fast Total Ordering for Modern
//! Data Centers" (Babay & Amir, ICDCS 2016), plus the maximum-throughput
//! table, ablation sweeps, and Criterion micro-benchmarks.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `fig1_agreed_1g` | Fig. 1 — Agreed latency vs throughput, 1-gigabit |
//! | `fig2_safe_1g` | Fig. 2 — Safe latency vs throughput, 1-gigabit |
//! | `fig3_agreed_10g` | Fig. 3 — Agreed latency vs throughput, 10-gigabit |
//! | `fig4_large_agreed_10g` | Fig. 4 — 1350 vs 8850-byte payloads, Agreed, 10-gigabit |
//! | `fig5_safe_10g` | Fig. 5 — Safe latency vs throughput, 10-gigabit |
//! | `fig6_large_safe_10g` | Fig. 6 — 1350 vs 8850-byte payloads, Safe, 10-gigabit |
//! | `fig7_safe_low_tput_10g` | Fig. 7 — Safe latency at low throughput (crossover) |
//! | `max_throughput_table` | §IV text — maximum throughput per implementation |
//! | `ablation_accel_window` | design ablation: accelerated-window sweep |
//! | `ablation_priority_method` | design ablation: priority method 1 vs 2 |
//! | `ablation_windows` | design ablation: personal/global window sweep |
//! | `bench_smoke` | CI smoke: two-point short run of the full pipeline |
//! | `bench_schema_check` | validates `BENCH_*.json` against `docs/bench_schema.json` |
//!
//! Each binary prints the series it regenerates as an aligned table,
//! writes a CSV under `results/`, and emits a machine-readable
//! `BENCH_<name>.json` (see [`benchjson`]) validated in CI against the
//! checked-in schema.

pub mod benchjson;
pub mod figset;
pub mod harness;
pub mod schema;
pub mod sweep;
pub mod table;

pub use benchjson::{render_bench_json, write_bench_json, BenchPoint, BENCH_SCHEMA_VERSION};
pub use figset::{scenario, Scenario};
pub use schema::validate as validate_schema;
pub use sweep::{latency_curve, max_throughput, CurvePoint};
pub use table::{write_csv, Table};
