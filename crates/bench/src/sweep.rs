//! Parameter sweeps: latency-vs-throughput curves and maximum
//! throughput, matching the paper's measurement methodology (§IV-A).

use ar_sim::{run_ring, LoadMode, RingSimConfig, SimReport};

/// One measured point of a latency-vs-throughput curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered aggregate load in Mbps.
    pub offered_mbps: f64,
    /// The full simulation report at that load.
    pub report: SimReport,
}

impl CurvePoint {
    /// Achieved goodput in Mbps.
    pub fn achieved_mbps(&self) -> f64 {
        self.report.achieved_mbps()
    }

    /// Mean delivery latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.report.mean_latency_us()
    }
}

/// Runs the system at each offered load and records average delivery
/// latency — the paper's throughput/latency profile methodology.
pub fn latency_curve(base: &RingSimConfig, rates_mbps: &[u64]) -> Vec<CurvePoint> {
    rates_mbps
        .iter()
        .map(|&mbps| {
            let mut cfg = base.clone();
            cfg.load = LoadMode::OpenLoop {
                aggregate_bps: mbps * 1_000_000,
            };
            CurvePoint {
                offered_mbps: mbps as f64,
                report: run_ring(&cfg),
            }
        })
        .collect()
}

/// Runs the system with saturating senders and reports the maximum
/// sustained goodput.
pub fn max_throughput(base: &RingSimConfig) -> SimReport {
    let mut cfg = base.clone();
    cfg.load = LoadMode::Saturating;
    run_ring(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figset::{scenario, Net};
    use ar_core::{ProtocolVariant, ServiceType};
    use ar_sim::{ImplProfile, SimDuration};

    fn quick_base() -> RingSimConfig {
        let mut s = scenario(
            Net::Gigabit,
            ImplProfile::library(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        s.base.duration = SimDuration::from_millis(30);
        s.base.warmup = SimDuration::from_millis(15);
        s.base
    }

    #[test]
    fn curve_has_one_point_per_rate() {
        let points = latency_curve(&quick_base(), &[100, 200]);
        assert_eq!(points.len(), 2);
        assert!(points[0].achieved_mbps() > 80.0);
        assert!(points[1].achieved_mbps() > points[0].achieved_mbps());
        assert!(points[0].latency_us() > 0.0);
    }

    #[test]
    fn max_throughput_exceeds_modest_open_loop() {
        let base = quick_base();
        let max = max_throughput(&base);
        assert!(max.achieved_mbps() > 500.0, "{max:?}");
    }
}
