//! Shared driver for the figure binaries: run a set of scenarios over
//! a rate sweep, print the series, write the CSV and the
//! `BENCH_<name>.json` companion.

use crate::benchjson::{write_bench_json, BenchPoint};
use crate::figset::Scenario;
use crate::sweep::{latency_curve, max_throughput};
use crate::table::{write_csv, Table};

/// Runs `scenarios` at each offered rate and renders one long-format
/// table: `curve, offered_mbps, achieved_mbps, mean_us, p50_us, p90_us,
/// p99_us, p999_us, rot_us, drops, retransmissions`.
pub fn run_figure(name: &str, title: &str, scenarios: &[Scenario], rates_mbps: &[u64]) -> Table {
    println!("{title}");
    println!(
        "(simulated reproduction; series = {} curves)\n",
        scenarios.len()
    );
    let mut table = Table::new([
        "curve",
        "offered_mbps",
        "achieved_mbps",
        "mean_us",
        "p50_us",
        "p90_us",
        "p99_us",
        "p999_us",
        "rot_us",
        "drops",
        "rtx",
    ]);
    let mut points = Vec::new();
    for s in scenarios {
        for p in latency_curve(&s.base, rates_mbps) {
            table.row([
                s.label.clone(),
                format!("{:.0}", p.offered_mbps),
                format!("{:.1}", p.achieved_mbps()),
                format!("{:.1}", p.latency_us()),
                format!("{:.1}", p.report.latency.p50.as_micros_f64()),
                format!("{:.1}", p.report.latency.p90.as_micros_f64()),
                format!("{:.1}", p.report.latency.p99.as_micros_f64()),
                format!("{:.1}", p.report.latency.p999.as_micros_f64()),
                format!("{:.1}", p.report.rotation_us()),
                format!("{}", p.report.switch_drops + p.report.socket_drops),
                format!("{}", p.report.retransmissions),
            ]);
            points.push(BenchPoint::from_report(&s.label, p.offered_mbps, &p.report));
        }
    }
    finish(name, table, &points)
}

/// Runs every scenario with saturating senders and renders the
/// maximum-throughput table.
pub fn run_max_table(name: &str, title: &str, scenarios: &[Scenario]) -> Table {
    println!("{title}\n");
    let mut table = Table::new(["curve", "max_mbps", "mean_us", "rot_us", "drops", "rtx"]);
    let mut points = Vec::new();
    for s in scenarios {
        let r = max_throughput(&s.base);
        table.row([
            s.label.clone(),
            format!("{:.1}", r.achieved_mbps()),
            format!("{:.1}", r.mean_latency_us()),
            format!("{:.1}", r.rotation_us()),
            format!("{}", r.switch_drops + r.socket_drops),
            format!("{}", r.retransmissions),
        ]);
        points.push(BenchPoint::from_report(&s.label, 0.0, &r));
    }
    finish(name, table, &points)
}

fn finish(name: &str, table: Table, points: &[BenchPoint]) -> Table {
    print!("{}", table.render());
    match write_csv(&table, name) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write CSV: {e}"),
    }
    match write_bench_json(name, points) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH JSON: {e}"),
    }
    table
}
