//! The maximum-throughput summary reported in the text of §IV:
//! saturating senders, every network × implementation × variant
//! combination, 1350-byte payloads everywhere plus 8850-byte payloads
//! on the 10-gigabit network.

use ar_bench::figset::{scenario, Net};
use ar_bench::harness::run_max_table;
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    let mut scenarios = Vec::new();
    for (net, payloads) in [
        (Net::Gigabit, &[1350usize][..]),
        (Net::TenGigabit, &[1350, 8850][..]),
    ] {
        for &payload in payloads {
            for profile in ImplProfile::all() {
                for variant in [ProtocolVariant::Original, ProtocolVariant::Accelerated] {
                    let mut s = scenario(net, profile, variant, ServiceType::Agreed, payload);
                    s.label = format!("{:?}/{}B/{}/{}", net, payload, profile.name, variant);
                    scenarios.push(s);
                }
            }
        }
    }
    run_max_table(
        "max_throughput_table",
        "§IV — maximum throughput (Agreed, saturating senders)",
        &scenarios,
    );
}
