//! `BENCH_durable_log.json`: the cost of crash safety — segmented-log
//! append throughput under each fsync policy.
//!
//! Every curve appends the same stream of delivery records (1 KiB
//! payloads, the protocol's ordered-message shape) to a fresh log
//! directory and reports achieved append bandwidth plus per-append
//! latency percentiles. The interesting read is the gap between
//! `log/fsync-never` (pure user-space + page-cache writes, what Safe
//! delivery costs with durability off) and `log/fsync-always` (one
//! fsync per record, the paranoid upper bound). `log/fsync-every-64`
//! is the shipped default for `ard --log-dir`: group commit amortizes
//! the sync down to near-`never` cost while bounding the loss window
//! to 64 records.
//!
//! Writes `BENCH_durable_log.json` into the working directory (the
//! repo root under `cargo run`), like the figure binaries; scratch
//! log directories live under the system temp dir.

use std::time::Instant;

use ar_bench::{write_bench_json, BenchPoint};
use ar_core::{ParticipantId, RingId, Seq, ServiceType};
use ar_log::{DeliveryRecord, FsyncPolicy, LogConfig, LogRecord, SegmentedLog};
use ar_telemetry::LogLinearHistogram;
use bytes::Bytes;

const RECORDS: u64 = 20_000;
const PAYLOAD: usize = 1_024;

struct Curve {
    label: &'static str,
    policy: FsyncPolicy,
    /// Records per run; fsync-always pays a disk round-trip per
    /// append, so it gets a smaller stream to keep the run short.
    records: u64,
}

fn run_curve(curve: &Curve, scratch: &std::path::Path) -> BenchPoint {
    let dir = scratch.join(format!("durable-log-{}", curve.label.replace('/', "-")));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = LogConfig::new(&dir).with_fsync(curve.policy);
    let (mut log, _) = SegmentedLog::open(cfg).expect("open bench log");

    let ring = RingId::new(ParticipantId::new(0), 1);
    let payload = Bytes::from(vec![0x5au8; PAYLOAD]);
    let mut lat = LogLinearHistogram::new();
    let start = Instant::now();
    for seq in 1..=curve.records {
        let rec = LogRecord::Delivery(DeliveryRecord {
            ring,
            seq: Seq::new(seq),
            pid: ParticipantId::new((seq % 3) as u16),
            service: ServiceType::Safe,
            payload: payload.clone(),
        });
        let t0 = Instant::now();
        log.append(&rec).expect("append");
        lat.record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed = start.elapsed();
    // Settle outside the timed window: the curves compare the append
    // path each policy pays per record, with fsync-never's deferred
    // durability debt left out of its bandwidth (that is the point).
    log.sync().expect("final sync");
    let stats = log.stats();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);

    let bytes = curve.records * PAYLOAD as u64;
    let mbps = (bytes as f64 * 8.0) / elapsed.as_secs_f64() / 1e6;
    let us = |q: f64| lat.value_at_quantile(q) as f64 / 1_000.0;
    println!(
        "{:<22} {:>7} records  {:>9.1} Mbps  mean {:>8.1} us  p99 {:>8.1} us  ({} syncs)",
        curve.label,
        curve.records,
        mbps,
        lat.mean() / 1_000.0,
        us(0.99),
        stats.syncs,
    );
    BenchPoint {
        curve: curve.label.to_string(),
        offered_mbps: 0.0,
        throughput_mbps: mbps,
        mean_us: lat.mean() / 1_000.0,
        p50_us: us(0.50),
        p90_us: us(0.90),
        p99_us: us(0.99),
        p999_us: us(0.999),
        rotation_us: 0.0,
        token_rotations: 0,
        drops: 0,
        rtx: stats.syncs,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("ar-bench-durable-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let curves = [
        Curve {
            label: "log/fsync-never",
            policy: FsyncPolicy::Never,
            records: RECORDS,
        },
        Curve {
            label: "log/fsync-every-64",
            policy: FsyncPolicy::EveryN(64),
            records: RECORDS,
        },
        Curve {
            label: "log/fsync-always",
            policy: FsyncPolicy::Always,
            records: RECORDS / 10,
        },
    ];
    let points: Vec<BenchPoint> = curves.iter().map(|c| run_curve(c, &scratch)).collect();
    let _ = std::fs::remove_dir_all(&scratch);

    let never = points[0].throughput_mbps;
    let always = points[2].throughput_mbps;
    if always > 0.0 {
        println!(
            "durability gap: fsync-never {:.1} Mbps vs fsync-always {:.1} Mbps ({:.1}x)",
            never,
            always,
            never / always
        );
    }
    let path = write_bench_json("durable_log", &points).expect("write BENCH JSON");
    println!("wrote {}", path.display());
}
