//! `BENCH_udp_datapath.json`: the batched, event-driven UDP datapath
//! versus the sleep-poll portable fallback on a 3-node loopback ring.
//!
//! Both curves run the identical workload — every node (one OS thread
//! each, as deployed) submits a fixed number of Agreed messages and
//! steps its runtime until everything is delivered everywhere —
//! differing only in `DatapathMode`. The figure reports achieved
//! goodput, delivery-latency percentiles, and the **median**
//! token-rotation time (the `rotation_us` column carries the p50,
//! matching the acceptance criterion "batched median rotation ≤
//! sleep-poll baseline").
//!
//! Curves:
//! * `udp/portable-sleep` — per-datagram syscalls + 50 µs sleep-poll
//!   (the pre-datapath baseline, and the non-Linux fallback);
//! * `udp/batched` — ppoll(2) waiting + sendmmsg/recvmmsg batching
//!   (Linux only; skipped elsewhere).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ar_bench::{write_bench_json, BenchPoint};
use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use ar_net::{AppEvent, DatapathMode, NetMetrics, PeerMap, Runtime, UdpTransport};
use bytes::Bytes;

const NODES: u16 = 3;
const MSGS_PER_NODE: u64 = 3_000;
const PAYLOAD: usize = 1_024;
const DEADLINE: Duration = Duration::from_secs(120);

struct ModeRun {
    point: BenchPoint,
    messages_per_sec: f64,
    median_rotation_us: f64,
}

/// What one node thread reports back when it stops.
struct NodeReport {
    decode_drops: u64,
    rtx: u64,
}

fn bind_transports(mode: DatapathMode, base_port: u16) -> Option<Vec<UdpTransport>> {
    for attempt in 0..40u16 {
        let base = base_port.checked_add(attempt.checked_mul(16)?)?;
        let map = PeerMap::localhost(NODES, base);
        if usize::from(NODES) > map.len() {
            continue;
        }
        let mut transports = Vec::new();
        let mut ok = true;
        for p in (0..NODES).map(ParticipantId::new) {
            match UdpTransport::bind_with_mode(p, map.clone(), mode) {
                Ok(t) => transports.push(t),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some(transports);
        }
    }
    None
}

fn run_mode(mode: DatapathMode, curve: &str, base_port: u16) -> Option<ModeRun> {
    let transports = bind_transports(mode, base_port)?;
    let members: Vec<ParticipantId> = (0..NODES).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let total = MSGS_PER_NODE * u64::from(NODES);
    let payload = Bytes::from(vec![0x5au8; PAYLOAD]);

    let stop = Arc::new(AtomicBool::new(false));
    let delivered: Vec<Arc<AtomicU64>> = (0..NODES).map(|_| Arc::new(AtomicU64::new(0))).collect();
    // Node 0's metric handles are shared Arcs: the main thread reads
    // the histograms after the run without any channel plumbing.
    let metrics0 = NetMetrics::detached();

    let started = Instant::now();
    let threads: Vec<_> = transports
        .into_iter()
        .enumerate()
        .map(|(i, transport)| {
            let part = Participant::new(
                members[i],
                ProtocolConfig::accelerated(),
                ring_id,
                members.clone(),
            )
            .expect("valid ring");
            let mut rt = Runtime::new(part, transport);
            rt.set_metrics(if i == 0 {
                metrics0.clone()
            } else {
                NetMetrics::detached()
            });
            let stop = Arc::clone(&stop);
            let delivered = Arc::clone(&delivered[i]);
            let payload = payload.clone();
            std::thread::spawn(move || -> NodeReport {
                let mut to_submit = MSGS_PER_NODE;
                let count = |evs: Vec<AppEvent>| {
                    let n = evs
                        .iter()
                        .filter(|e| matches!(e, AppEvent::Delivered(_)))
                        .count() as u64;
                    if n > 0 {
                        delivered.fetch_add(n, Ordering::Relaxed);
                    }
                };
                count(rt.start().expect("start"));
                while !stop.load(Ordering::Relaxed) {
                    // Keep the offered load saturating: top the pending
                    // queue up until flow control pushes back.
                    while to_submit > 0 {
                        match rt.submit(payload.clone(), ServiceType::Agreed) {
                            Ok(()) => to_submit -= 1,
                            Err(_) => break,
                        }
                    }
                    count(rt.step().expect("step"));
                }
                NodeReport {
                    decode_drops: rt.transport().stats().decode_drops,
                    rtx: rt.participant().stats().retransmissions_sent,
                }
            })
        })
        .collect();

    let deadline = started + DEADLINE;
    while delivered.iter().any(|d| d.load(Ordering::Relaxed) < total) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let reports: Vec<NodeReport> = threads
        .into_iter()
        .map(|t| t.join().expect("node thread"))
        .collect();

    let lat = metrics0.delivery_latency_ns.snapshot();
    let rot = metrics0.token_rotation_ns.snapshot();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let delivered0 = delivered[0].load(Ordering::Relaxed);
    let to_us = |ns: u64| ns as f64 / 1_000.0;
    let median_rotation_us = to_us(rot.value_at_quantile(0.5));
    let point = BenchPoint {
        curve: curve.to_string(),
        offered_mbps: 0.0, // saturating run
        throughput_mbps: (delivered0 as f64 * PAYLOAD as f64 * 8.0) / secs / 1e6,
        mean_us: lat.mean() / 1_000.0,
        p50_us: to_us(lat.value_at_quantile(0.5)),
        p90_us: to_us(lat.value_at_quantile(0.9)),
        p99_us: to_us(lat.value_at_quantile(0.99)),
        p999_us: to_us(lat.value_at_quantile(0.999)),
        // The acceptance criterion compares MEDIAN rotation time, so
        // this figure carries the p50 (not the mean) in rotation_us.
        rotation_us: median_rotation_us,
        token_rotations: metrics0.tokens_rx.get(),
        drops: reports.iter().map(|r| r.decode_drops).sum(),
        rtx: reports.iter().map(|r| r.rtx).sum(),
    };
    Some(ModeRun {
        point,
        messages_per_sec: delivered0 as f64 / secs,
        median_rotation_us,
    })
}

fn main() {
    let mut points = Vec::new();
    let mut summary: Vec<(String, f64, f64)> = Vec::new();

    let portable = run_mode(DatapathMode::Portable, "udp/portable-sleep", 43500)
        .expect("no free UDP port range for the portable baseline");
    println!(
        "udp/portable-sleep: {:.0} msgs/s, median rotation {:.1} us",
        portable.messages_per_sec, portable.median_rotation_us
    );
    summary.push((
        "udp/portable-sleep".into(),
        portable.messages_per_sec,
        portable.median_rotation_us,
    ));
    points.push(portable.point);

    if cfg!(target_os = "linux") {
        let batched = run_mode(DatapathMode::Batched, "udp/batched", 44700)
            .expect("no free UDP port range for the batched run");
        println!(
            "udp/batched: {:.0} msgs/s, median rotation {:.1} us",
            batched.messages_per_sec, batched.median_rotation_us
        );
        if batched.median_rotation_us > portable.median_rotation_us {
            eprintln!(
                "WARNING: batched median rotation ({:.1} us) above sleep-poll baseline ({:.1} us)",
                batched.median_rotation_us, portable.median_rotation_us
            );
        }
        summary.push((
            "udp/batched".into(),
            batched.messages_per_sec,
            batched.median_rotation_us,
        ));
        points.push(batched.point);
    } else {
        println!("udp/batched: skipped (Linux-only syscall path)");
    }

    let path = write_bench_json("udp_datapath", &points).expect("write BENCH JSON");
    println!("wrote {}", path.display());
    for (curve, mps, rot) in summary {
        println!("{curve:>20}: {mps:>10.0} msgs/s  median rotation {rot:>8.1} us");
    }
}
