//! Figure 7: Safe delivery latency at low throughputs on a 10-gigabit
//! network. The paper's crossover: at very low load the *original*
//! protocol has lower Safe latency (raising the aru costs the
//! accelerated protocol up to an extra round), but once throughput
//! reaches ~4-5% of capacity the accelerated protocol wins.

use ar_bench::figset::{six_curves, Net};
use ar_bench::harness::run_figure;
use ar_core::ServiceType;

fn main() {
    let scenarios = six_curves(Net::TenGigabit, ServiceType::Safe);
    run_figure(
        "fig7_safe_low_tput_10g",
        "Fig. 7 — Safe delivery latency at low throughputs, 10-gigabit network",
        &scenarios,
        &[100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
    );
}
