//! Related-work comparison (§V of the paper): the Accelerated Ring
//! protocol versus a fixed-sequencer total-order protocol (the
//! JGroups/ISIS family) on the same simulated substrate.
//!
//! The paper measured JGroups' sequencer-based total ordering at
//! ~650 Mbps on their 1-gigabit setup (vs >920 Mbps for accelerated
//! Spread) and ~3 Gbps on 10-gigabit. The qualitative claims this
//! harness regenerates: the sequencer adds a forwarding hop to latency,
//! roughly keeps up on a network-bound 1-gigabit fabric, and
//! bottlenecks on the coordinator's CPU on a processing-bound
//! 10-gigabit fabric, where the ring distributes the ordering work.

use ar_bench::figset::{scenario, Net};
use ar_bench::sweep::latency_curve;
use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::{run_sequencer, ImplProfile, SequencerSimConfig, SimDuration};

fn main() {
    println!("Related work — accelerated ring vs fixed sequencer (daemon profile)\n");
    let mut table = Table::new([
        "net",
        "protocol",
        "offered_mbps",
        "achieved_mbps",
        "mean_us",
        "p99_us",
        "coordinator_drops",
    ]);
    for (net, rates) in [
        (Net::Gigabit, &[100u64, 300, 500, 700, 900][..]),
        (Net::TenGigabit, &[500, 1000, 1500, 2000, 2500, 3000][..]),
    ] {
        // Ring (accelerated, daemon profile).
        let ring = scenario(
            net,
            ImplProfile::daemon(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        for p in latency_curve(&ring.base, rates) {
            table.row([
                format!("{net:?}"),
                "accelerated-ring".to_string(),
                format!("{:.0}", p.offered_mbps),
                format!("{:.1}", p.achieved_mbps()),
                format!("{:.1}", p.latency_us()),
                format!("{:.1}", p.report.latency.p99.as_micros_f64()),
                "0".to_string(),
            ]);
        }
        // Sequencer.
        for &mbps in rates {
            let mut cfg = SequencerSimConfig::eight_hosts(
                net.config(),
                ImplProfile::daemon(),
                mbps * 1_000_000,
            );
            cfg.duration = SimDuration::from_millis(300);
            cfg.warmup = SimDuration::from_millis(120);
            let r = run_sequencer(&cfg);
            table.row([
                format!("{net:?}"),
                "fixed-sequencer".to_string(),
                format!("{mbps}"),
                format!("{:.1}", r.achieved_mbps()),
                format!("{:.1}", r.mean_latency_us()),
                format!("{:.1}", r.latency.p99.as_micros_f64()),
                format!("{}", r.socket_drops),
            ]);
        }
    }
    print!("{}", table.render());
    if let Ok(p) = write_csv(&table, "related_work_sequencer") {
        println!("\nwrote {}", p.display());
    }
}
