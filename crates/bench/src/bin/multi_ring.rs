//! Sharded multi-ring scale-out: aggregate throughput and tail
//! latency vs. ring count at a fixed offered load.
//!
//! One totally ordered ring saturates at a fixed goodput `C`; the
//! sharded daemon (`ard --rings N`) runs N independent rings and
//! partitions the group namespace across them, so aggregate capacity
//! scales with N while each group keeps its per-ring total order.
//! This bench models exactly that: N independent 8-host rings in the
//! virtual-time simulator, each offered `TOTAL / N` where `TOTAL` is
//! ~3.5× the calibrated single-ring maximum. One ring is hopelessly
//! over-committed; four rings absorb the same offered load with
//! headroom. Per-run seeds differ so the rings are phase-decorrelated,
//! matching independent token rotations.
//!
//! Aggregation across a shard set: throughput and counter columns are
//! sums, latency percentiles are the worst shard (a publisher's FIFO
//! hold-back waits for its slowest shard), the mean is
//! delivery-weighted, and rotation time is the per-ring average.
//!
//! Emits `BENCH_multi_ring.json` and exits non-zero unless aggregate
//! throughput scales ≥ 3× going from 1 to 4 rings — the scale-out
//! acceptance bar.
//!
//! `--quick` shortens the simulated window and sweeps only {1, 4}.

use std::process::ExitCode;

use ar_bench::benchjson::{write_bench_json, BenchPoint};
use ar_bench::figset::{tuned_protocol, Net};
use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolVariant, ServiceType, TimeoutConfig};
use ar_sim::{run_ring, ImplProfile, LoadMode, RingSimConfig, SimDuration, SimReport};

/// One ring shard's simulation, before the load mode is chosen.
fn shard_base(quick: bool, seed: u64) -> RingSimConfig {
    RingSimConfig {
        n_hosts: 8,
        protocol: tuned_protocol(ProtocolVariant::Accelerated, Net::Gigabit, 1350),
        timeouts: TimeoutConfig::default(),
        net: Net::Gigabit.config(),
        profile: ImplProfile::daemon(),
        payload_bytes: 1350,
        service: ServiceType::Agreed,
        load: LoadMode::Saturating,
        duration: SimDuration::from_millis(if quick { 120 } else { 300 }),
        warmup: SimDuration::from_millis(if quick { 50 } else { 120 }),
        seed,
        faults: ar_sim::FaultPlan::none(),
        verify_order: false,
    }
}

/// Runs `rings` independent shards at `total_mbps` aggregate offered
/// load and folds their reports into one point.
fn run_shard_set(rings: usize, total_mbps: f64, quick: bool) -> BenchPoint {
    let per_ring_bps = (total_mbps * 1_000_000.0 / rings as f64) as u64;
    let reports: Vec<SimReport> = (0..rings)
        .map(|k| {
            let mut cfg = shard_base(quick, 42 + 1000 * rings as u64 + k as u64);
            cfg.load = LoadMode::OpenLoop {
                aggregate_bps: per_ring_bps,
            };
            run_ring(&cfg)
        })
        .collect();

    let throughput: f64 = reports.iter().map(SimReport::achieved_mbps).sum();
    let weight = |r: &SimReport| r.achieved_mbps().max(f64::MIN_POSITIVE);
    let total_weight: f64 = reports.iter().map(weight).sum();
    let mean_us = reports
        .iter()
        .map(|r| r.mean_latency_us() * weight(r))
        .sum::<f64>()
        / total_weight;
    let worst = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).fold(0.0f64, f64::max);
    BenchPoint {
        curve: format!("rings={rings}"),
        offered_mbps: total_mbps,
        throughput_mbps: throughput,
        mean_us,
        p50_us: worst(&|r| r.latency.p50.as_micros_f64()),
        p90_us: worst(&|r| r.latency.p90.as_micros_f64()),
        p99_us: worst(&|r| r.latency.p99.as_micros_f64()),
        p999_us: worst(&|r| r.latency.p999.as_micros_f64()),
        rotation_us: reports.iter().map(SimReport::rotation_us).sum::<f64>() / rings as f64,
        token_rotations: reports.iter().map(|r| r.token_rotations).sum(),
        drops: reports
            .iter()
            .map(|r| r.switch_drops + r.socket_drops)
            .sum(),
        rtx: reports.iter().map(|r| r.retransmissions).sum(),
    }
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Sharded multi-ring scale-out — aggregate msgs/s and p99 vs ring count");
    println!("(simulated reproduction; fixed offered load, groups partitioned across rings)\n");

    // Calibrate the single-ring ceiling, then over-commit it 3.5×:
    // the knee the sharded daemon exists to move past.
    let mut sat = shard_base(quick, 42);
    sat.load = LoadMode::Saturating;
    let ceiling = run_ring(&sat).achieved_mbps();
    let total_mbps = (ceiling * 3.5).round();
    println!("calibrated single-ring max {ceiling:.1} Mbps; offering {total_mbps:.0} Mbps\n");

    let ring_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut table = Table::new([
        "curve",
        "offered_mbps",
        "achieved_mbps",
        "msgs_per_s",
        "mean_us",
        "p99_us",
        "rot_us",
        "drops",
        "rtx",
    ]);
    let mut points = Vec::new();
    for &rings in ring_counts {
        let p = run_shard_set(rings, total_mbps, quick);
        let msgs_per_s = p.throughput_mbps * 1_000_000.0 / (1350.0 * 8.0);
        table.row([
            p.curve.clone(),
            format!("{:.0}", p.offered_mbps),
            format!("{:.1}", p.throughput_mbps),
            format!("{:.0}", msgs_per_s),
            format!("{:.1}", p.mean_us),
            format!("{:.1}", p.p99_us),
            format!("{:.1}", p.rotation_us),
            format!("{}", p.drops),
            format!("{}", p.rtx),
        ]);
        points.push(p);
    }
    print!("{}", table.render());
    match write_csv(&table, "multi_ring") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write CSV: {e}"),
    }
    match write_bench_json("multi_ring", &points) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write BENCH JSON: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Acceptance bar: ≥ 3× aggregate throughput going 1 → 4 rings.
    let tput = |rings: usize| {
        points
            .iter()
            .find(|p| p.curve == format!("rings={rings}"))
            .map(|p| p.throughput_mbps)
            .unwrap_or(0.0)
    };
    let (one, four) = (tput(1), tput(4));
    let scale = four / one.max(f64::MIN_POSITIVE);
    println!("\nscaling 1 -> 4 rings: {one:.1} -> {four:.1} Mbps ({scale:.2}x)");
    if scale < 3.0 {
        eprintln!("FAIL: expected >= 3x aggregate scaling from 1 to 4 rings");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
