//! Flow-control auto-tuner: the paper's tuning methodology as a
//! program.
//!
//! §IV-A: "we chose the smallest personal window that allowed the
//! system to reach its maximum throughput and the accelerated window
//! that resulted in the highest throughput for that particular personal
//! window". This tool runs that search on the simulator for a chosen
//! network and implementation profile, and prints the winning
//! configuration.
//!
//! ```text
//! usage: tune_windows [1g|10g] [library|daemon|spread]
//! ```

use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolConfig, ServiceType, TimeoutConfig};
use ar_sim::{
    run_ring, FaultPlan, ImplProfile, LoadMode, NetworkConfig, RingSimConfig, SimDuration,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net = match args.get(1).map(String::as_str) {
        Some("10g") => NetworkConfig::ten_gigabit(),
        _ => NetworkConfig::gigabit(),
    };
    let profile = match args.get(2).map(String::as_str) {
        Some("library") => ImplProfile::library(),
        Some("spread") => ImplProfile::spread(),
        _ => ImplProfile::daemon(),
    };
    let net_name = if net.link_bps > 5_000_000_000 {
        "10g"
    } else {
        "1g"
    };
    println!(
        "tuning accelerated-ring windows: {} network, {} profile\n",
        net_name, profile.name
    );

    let run_with = |personal: u32, accel: u32| {
        let protocol = ProtocolConfig::accelerated()
            .with_personal_window(personal)
            .with_global_window(personal * 8)
            .with_accelerated_window(accel)
            .with_max_seq_gap(4000);
        let cfg = RingSimConfig {
            n_hosts: 8,
            protocol,
            timeouts: TimeoutConfig::default(),
            net,
            profile,
            payload_bytes: 1350,
            service: ServiceType::Agreed,
            load: LoadMode::Saturating,
            duration: SimDuration::from_millis(200),
            warmup: SimDuration::from_millis(80),
            seed: 42,
            faults: FaultPlan::none(),
            verify_order: false,
        };
        run_ring(&cfg)
    };

    // Phase 1: find the smallest personal window reaching max
    // throughput (accelerated window = personal/2 while searching).
    let candidates = [2u32, 5, 10, 15, 20, 30, 45, 60, 90, 120];
    let mut table = Table::new(["personal", "accel", "mbps", "mean_us"]);
    let mut best_tput = 0.0f64;
    for &pw in &candidates {
        let r = run_with(pw, pw / 2);
        table.row([
            pw.to_string(),
            (pw / 2).to_string(),
            format!("{:.0}", r.achieved_mbps()),
            format!("{:.0}", r.mean_latency_us()),
        ]);
        best_tput = best_tput.max(r.achieved_bps);
    }
    let mut chosen_personal = *candidates.last().expect("non-empty");
    for &pw in &candidates {
        let r = run_with(pw, pw / 2);
        if r.achieved_bps >= 0.97 * best_tput {
            chosen_personal = pw;
            break;
        }
    }
    println!("phase 1 — personal window sweep (accel = personal/2):");
    print!("{}", table.render());
    println!("\nsmallest personal window within 3% of max: {chosen_personal}\n");

    // Phase 2: sweep the accelerated window for that personal window.
    let mut table2 = Table::new(["personal", "accel", "mbps", "mean_us"]);
    let mut best = (0u32, 0.0f64, 0.0f64);
    for accel in [0u32].into_iter().chain(
        (0..=chosen_personal)
            .step_by((chosen_personal as usize / 8).max(1))
            .skip(1),
    ) {
        let r = run_with(chosen_personal, accel);
        table2.row([
            chosen_personal.to_string(),
            accel.to_string(),
            format!("{:.0}", r.achieved_mbps()),
            format!("{:.0}", r.mean_latency_us()),
        ]);
        if r.achieved_bps > best.1 {
            best = (accel, r.achieved_bps, r.mean_latency_us());
        }
    }
    println!("phase 2 — accelerated window sweep at personal = {chosen_personal}:");
    print!("{}", table2.render());
    println!(
        "\ntuned configuration: personal_window = {chosen_personal}, accelerated_window = {} \
         → {:.0} Mbps at {:.0}us mean latency",
        best.0,
        best.1 / 1e6,
        best.2
    );
    let _ = write_csv(
        &table2,
        &format!("tune_windows_{}_{}", net_name, profile.name),
    );
}
