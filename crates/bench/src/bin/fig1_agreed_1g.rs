//! Figure 1: Agreed delivery latency vs. throughput on a 1-gigabit
//! network — six curves (library/daemon/spread × original/accelerated),
//! 1350-byte payloads, 8 hosts.

use ar_bench::figset::{six_curves, Net};
use ar_bench::harness::run_figure;
use ar_core::ServiceType;

fn main() {
    let scenarios = six_curves(Net::Gigabit, ServiceType::Agreed);
    run_figure(
        "fig1_agreed_1g",
        "Fig. 1 — Agreed delivery latency vs. throughput, 1-gigabit network",
        &scenarios,
        &[100, 200, 300, 400, 500, 600, 700, 800, 900],
    );
}
