//! `BENCH_explore.json`: throughput of the state-space explorer
//! (`ar-explore`) over the sans-io core — states visited per second
//! and the effectiveness of the visited-state and sleep-set prunes.
//!
//! Three curves, all at 3 hosts and capped at a fixed state budget so
//! the run is comparable across machines and finishes in CI time:
//!
//! * `explore/accelerated`, `explore/original` — steady-state
//!   interleavings of the two-submission workload under the full
//!   adversary (loss, duplication, timers).
//! * `explore/membership` — the membership-episode sweep: the same
//!   adversary plus `Fail`/`Partition`/`Merge` moves (single-fault
//!   budget), with the abstract ring-consensus model's invariants
//!   checked at every expanded state. Its extra `model_checks` field
//!   counts those oracle evaluations.
//!
//! The BENCH point format is throughput-oriented, so the
//! network-specific required fields are reported as zero; the
//! explorer's own measurements ride as extra per-point properties
//! (`states_visited`, `model_checks`, `transitions`, `pruned_visited`,
//! `pruned_sleep`, `prune_ratio`, `states_per_sec`, `completed_paths`,
//! `elapsed_ms`), which the schema checker permits. A violation found
//! during the benchmark run is a hard failure: the binary panics so CI
//! goes red.

use ar_explore::explorer::{default_submissions, ExploreConfig, Explorer};
use ar_telemetry::json::JsonWriter;
use std::time::Duration;

const HOSTS: u16 = 3;
const DEPTH: usize = 12;
const MAX_STATES: u64 = 300_000;

fn run_curve(label: &str, cfg: ExploreConfig) -> (String, ar_explore::ExploreReport) {
    let report = Explorer::new(cfg)
        .run()
        .expect("known config names always start");
    assert!(
        report.violations.is_empty(),
        "explorer found safety violations during the benchmark run: {:#?}",
        report.violations
    );
    (format!("explore/{label}"), report)
}

fn steady_state(variant: &str) -> ExploreConfig {
    ExploreConfig {
        hosts: HOSTS,
        depth: DEPTH,
        config: variant.to_owned(),
        submissions: default_submissions(HOSTS, 2),
        max_states: MAX_STATES,
        time_box: Some(Duration::from_secs(120)),
        max_violations: 8,
        ..ExploreConfig::default()
    }
}

fn membership() -> ExploreConfig {
    ExploreConfig {
        membership: true,
        max_faults: 1,
        submissions: vec![],
        ..steady_state("accelerated")
    }
}

fn main() {
    let mut curves: Vec<(String, ar_explore::ExploreReport)> = ["accelerated", "original"]
        .iter()
        .map(|v| run_curve(v, steady_state(v)))
        .collect();
    curves.push(run_curve("membership", membership()));

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("name");
    w.str("explore");
    w.key("schema");
    w.num_u64(1);
    w.key("points");
    w.begin_array();
    for (curve, report) in &curves {
        w.begin_object();
        w.key("curve");
        w.str(curve);
        // Required-but-inapplicable network fields: zero by convention
        // (same as the virtual-time figures that cannot observe
        // latency).
        for field in [
            "offered_mbps",
            "throughput_mbps",
            "mean_us",
            "p50_us",
            "p90_us",
            "p99_us",
            "p999_us",
            "rotation_us",
        ] {
            w.key(field);
            w.num_f64(0.0);
        }
        w.key("token_rotations");
        w.num_u64(0);
        w.key("drops");
        w.num_u64(0);
        w.key("rtx");
        w.num_u64(0);
        // The explorer's actual measurements.
        w.key("states_visited");
        w.num_u64(report.states_visited);
        w.key("model_checks");
        w.num_u64(report.model_checks);
        w.key("transitions");
        w.num_u64(report.transitions);
        w.key("pruned_visited");
        w.num_u64(report.pruned_visited);
        w.key("pruned_sleep");
        w.num_u64(report.pruned_sleep);
        w.key("prune_ratio");
        w.num_f64(report.prune_ratio());
        w.key("states_per_sec");
        w.num_f64(report.states_per_sec());
        w.key("completed_paths");
        w.num_u64(report.completed_paths);
        w.key("elapsed_ms");
        w.num_u64(report.elapsed.as_millis() as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let text = w.finish();
    std::fs::write("BENCH_explore.json", &text).expect("write BENCH_explore.json");
    for (curve, report) in &curves {
        println!(
            "{curve}: {} states in {:?} ({:.0} states/s, prune ratio {:.2}, {} model checks, {} violations)",
            report.states_visited,
            report.elapsed,
            report.states_per_sec(),
            report.prune_ratio(),
            report.model_checks,
            report.violations.len()
        );
    }
    println!("wrote BENCH_explore.json");
}
