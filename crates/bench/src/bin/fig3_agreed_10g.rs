//! Figure 3: Agreed delivery latency vs. throughput on a 10-gigabit
//! network — six curves, 1350-byte payloads, 8 hosts.

use ar_bench::figset::{six_curves, Net};
use ar_bench::harness::run_figure;
use ar_core::ServiceType;

fn main() {
    let scenarios = six_curves(Net::TenGigabit, ServiceType::Agreed);
    run_figure(
        "fig3_agreed_10g",
        "Fig. 3 — Agreed delivery latency vs. throughput, 10-gigabit network",
        &scenarios,
        &[250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500],
    );
}
