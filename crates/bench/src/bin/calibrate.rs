//! Calibration probe: prints maximum throughput and two latency points
//! for every (network × implementation × variant) combination, to check
//! the simulator's cost model against the paper's reported numbers.
//!
//! Paper targets (1350-byte payloads unless noted):
//!   1G  max: >920 Mbps all implementations (accelerated);
//!       original supports ~500 Mbps (Agreed) before latency climbs.
//!   10G max (accelerated): spread 2.3 Gbps, daemon 3.3, library 4.6;
//!       with 8850-byte payloads: 5.3 / 6.0 / 7.3 Gbps.

use ar_bench::figset::{scenario, Net};
use ar_bench::sweep::{latency_curve, max_throughput};
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    for net in [Net::Gigabit, Net::TenGigabit] {
        for payload in [1350usize, 8850] {
            if payload == 8850 && net == Net::Gigabit {
                continue;
            }
            println!("== {net:?} payload={payload} ==");
            for profile in ImplProfile::all() {
                for variant in [ProtocolVariant::Original, ProtocolVariant::Accelerated] {
                    let s = scenario(net, profile, variant, ServiceType::Agreed, payload);
                    let max = max_throughput(&s.base);
                    let rates = match net {
                        Net::Gigabit => vec![100, 400],
                        Net::TenGigabit => vec![500, 1500],
                    };
                    let curve = latency_curve(&s.base, &rates);
                    print!(
                        "{:22} max {:7.1} Mbps (drops sw {} sock {} rtx {} rej {})",
                        s.label,
                        max.achieved_mbps(),
                        max.switch_drops,
                        max.socket_drops,
                        max.retransmissions,
                        max.submit_rejected
                    );
                    for p in &curve {
                        print!(
                            "  @{}M {:6.0}us({:4.0}M)",
                            p.offered_mbps,
                            p.latency_us(),
                            p.achieved_mbps()
                        );
                    }
                    println!();
                }
            }
        }
    }
}
