//! `BENCH_client_tier.json`: open-loop load generation against the
//! client service tier — client count versus p99 Agreed latency at
//! fixed aggregate offered load.
//!
//! One in-process daemon (single-member loopback ring) runs the real
//! `ar-svc` tier on an ephemeral TCP port; worker threads multiplex
//! hundreds of `SvcClient`s each, so a thousand concurrent
//! flow-controlled connections exercise the one-thread server
//! multiplexer exactly as deployed.
//!
//! Workload shape:
//! * **Zipf group popularity** — each client subscribes to one of 64
//!   groups drawn from a Zipf(1.0) distribution, and publishers aim
//!   their bursts at Zipf-drawn groups, so the popular groups carry
//!   most of the fan-out (as Spread deployments do).
//! * **Bursty publishers** — the open-loop schedule fires fixed-size
//!   bursts on a fixed period per client; a stalled client does not
//!   reduce the offered load, it accumulates backpressure.
//! * **Deliberately slow consumers** — the `slow-consumer` curve adds
//!   unacking subscribers to the most popular group and requires the
//!   tier to evict them (`drops` column = evictions) while the healthy
//!   population keeps a finite p99.
//! * **Reconnect churn** — the `reconnect-churn` curve severs one
//!   client connection every `CHURN_EVERY` while the load runs; every
//!   severed session must resume (`rtx` column = sessions resumed,
//!   `drops` must stay 0) and the healthy p99 must survive the
//!   retained-delivery replay traffic.
//!
//! ```text
//! usage: loadgen [--quick]
//! ```
//!
//! `--quick` trims scales and duration for the CI smoke job.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ar_bench::{write_bench_json, BenchPoint};
use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use ar_daemon::{serve_metrics, spawn_daemon_with, DaemonConfig, DaemonHandle, TelemetryHub};
use ar_net::LoopbackNet;
use ar_svc::{
    serve_clients, FlowConfig, PublishError, SvcClient, SvcConfig, SvcEvent, SvcHandle,
    SvcListeners,
};
use ar_telemetry::json::Value;
use bytes::Bytes;

const GROUPS: usize = 64;
const ZIPF_S: f64 = 1.0;
const PAYLOAD: usize = 128;
const WORKERS: usize = 8;
/// Aggregate offered load, messages per second, held fixed across
/// client counts (the sweep varies concurrency, not demand).
const OFFERED_MSGS_PER_SEC: f64 = 500.0;
const BURST: u64 = 4;
/// Aggregate connection-kill period for the reconnect-churn scenario.
const CHURN_EVERY: Duration = Duration::from_millis(100);

struct ScaleResult {
    latencies_us: Vec<f64>,
    delivered: u64,
    published: u64,
    stalls: u64,
    evicted: u64,
    elapsed: Duration,
}

/// Deterministic SplitMix64, the repo's standard seedable stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf(s) distribution over `n` ranks.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One loopback daemon with telemetry served on an ephemeral port, so
/// the run can pull real token-rotation stats from `/snapshot` exactly
/// as an operator would against `ard --metrics-addr`.
fn single_daemon() -> (LoopbackNet, DaemonHandle, ar_daemon::MetricsServer) {
    let net = LoopbackNet::new();
    let members = vec![ParticipantId::new(0)];
    let ring_id = RingId::new(members[0], 1);
    let part = Participant::new(
        members[0],
        ProtocolConfig::accelerated(),
        ring_id,
        members.clone(),
    )
    .expect("participant");
    let hub = TelemetryHub::shared();
    let config = DaemonConfig {
        telemetry: Some(hub.clone()),
        ..DaemonConfig::default()
    };
    let handle = spawn_daemon_with(part, net.endpoint(members[0]), config);
    let metrics = serve_metrics("127.0.0.1:0", hub).expect("metrics endpoint");
    (net, handle, metrics)
}

/// Total tokens handled so far, scraped from the daemon's `/snapshot`
/// JSON endpoint. Sampled before and after a run, the delta is the
/// token rotations the run drove (single-member ring: one handling
/// per rotation).
fn snapshot_rotations(addr: std::net::SocketAddr) -> u64 {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect /snapshot");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET /snapshot HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read /snapshot");
    let (_, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    Value::parse(body)
        .expect("snapshot is valid JSON")
        .get("stats")
        .and_then(|s| s.get("tokens_handled_total"))
        .and_then(Value::as_f64)
        .expect("stats carry tokens_handled_total") as u64
}

fn start_tier(daemon: &DaemonHandle, max_clients: usize, flow: FlowConfig) -> SvcHandle {
    let config = SvcConfig {
        max_clients,
        flow,
        ..SvcConfig::default()
    };
    serve_clients(
        daemon,
        SvcListeners {
            tcp: Some("127.0.0.1:0".parse().unwrap()),
            uds: None,
        },
        config,
    )
    .expect("service tier")
}

struct GenClient {
    client: SvcClient,
    group: String,
    next_burst: Instant,
    period: Duration,
}

/// Runs one open-loop scale: `clients` connections at the fixed
/// aggregate offered load, plus `slow` unacking subscribers of the
/// most popular group. Returns merged latency samples and counters.
#[allow(clippy::too_many_lines)]
fn run_scale(
    addr: std::net::SocketAddr,
    svc: &SvcHandle,
    clients: usize,
    slow: usize,
    churn_every: Option<Duration>,
    measure: Duration,
    seed: u64,
) -> ScaleResult {
    let epoch = Instant::now();
    let published = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let stalls = Arc::new(AtomicU64::new(0));
    let evicted_before = svc.stats().evicted.get();

    // Unacking subscribers of the hottest group: the tier must cut
    // them loose without stalling anyone else. They run on their own
    // thread, pumping (reading the socket) but never opening the
    // delivery window.
    let slow_thread = (slow > 0).then(|| {
        let deadline = epoch + measure + Duration::from_secs(2);
        std::thread::spawn(move || {
            let mut victims = Vec::new();
            for v in 0..slow {
                let Ok(mut c) = SvcClient::connect_tcp(addr, &format!("slow{v}")) else {
                    continue;
                };
                c.set_auto_ack(false);
                let _ = c.join("g0");
                victims.push(c);
            }
            while Instant::now() < deadline && !victims.is_empty() {
                for c in &mut victims {
                    let _ = c.pump();
                    while c.poll_event().is_some() {}
                }
                victims.retain(|c| c.evicted_reason().is_none());
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    });

    let per_client_rate = OFFERED_MSGS_PER_SEC / clients as f64;
    let burst_period = Duration::from_secs_f64(BURST as f64 / per_client_rate);
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let published = Arc::clone(&published);
            let delivered = Arc::clone(&delivered);
            let stalls = Arc::clone(&stalls);
            std::thread::spawn(move || {
                let mut rng = SplitMix64(seed ^ (w as u64).wrapping_mul(0x9e3779b97f4a7c15));
                let zipf = Zipf::new(GROUPS, ZIPF_S);
                let mut mine: Vec<GenClient> = Vec::new();
                for i in (w..clients).step_by(WORKERS) {
                    let name = format!("c{i}");
                    let Ok(mut client) = SvcClient::connect_tcp(addr, &name) else {
                        continue;
                    };
                    let group = format!("g{}", zipf.sample(&mut rng));
                    let _ = client.join(&group);
                    // Stagger burst phases so the aggregate is
                    // open-loop-smooth, each client individually bursty.
                    let phase = burst_period.mul_f64(rng.f64());
                    mine.push(GenClient {
                        client,
                        group,
                        next_burst: epoch + phase,
                        period: burst_period,
                    });
                }
                let mut latencies: Vec<f64> = Vec::new();
                let warmup = epoch + Duration::from_millis(500);
                let deadline = epoch + measure;
                let mut payload = vec![0u8; PAYLOAD];
                // Each worker churns at 1/WORKERS of the aggregate
                // kill rate, phase-staggered so severs spread out.
                let worker_churn = churn_every.map(|p| p * WORKERS as u32);
                let mut next_churn =
                    worker_churn.map(|p| epoch + Duration::from_millis(500) + p.mul_f64(rng.f64()));
                let mut churn_idx = w;
                while Instant::now() < deadline {
                    let now = Instant::now();
                    if let (Some(due), Some(period)) = (next_churn, worker_churn) {
                        if due <= now && !mine.is_empty() {
                            let victim = churn_idx % mine.len();
                            mine[victim].client.sever();
                            churn_idx += 1;
                            next_churn = Some(due + period);
                        }
                    }
                    for gc in &mut mine {
                        // Open-loop: fire every due burst, whether or
                        // not the last one completed.
                        while gc.next_burst <= now {
                            gc.next_burst += gc.period;
                            let target = if rng.next().is_multiple_of(4) {
                                format!("g{}", zipf.sample(&mut rng))
                            } else {
                                gc.group.clone()
                            };
                            for _ in 0..BURST {
                                let ns = epoch.elapsed().as_nanos() as u64;
                                payload[..8].copy_from_slice(&ns.to_be_bytes());
                                match gc.client.try_publish(
                                    &[&target],
                                    ServiceType::Agreed,
                                    Bytes::copy_from_slice(&payload),
                                ) {
                                    Ok(_) => {
                                        published.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(PublishError::NoCredits) => {
                                        stalls.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(PublishError::TooLarge) => unreachable!(),
                                    Err(PublishError::Io(_)) => {}
                                }
                            }
                        }
                        let _ = gc.client.pump();
                        while let Some(ev) = gc.client.poll_event() {
                            if let SvcEvent::Deliver { payload, .. } = ev {
                                delivered.fetch_add(1, Ordering::Relaxed);
                                if payload.len() >= 8 && now >= warmup {
                                    let sent = u64::from_be_bytes(payload[..8].try_into().unwrap());
                                    let lat_ns = epoch.elapsed().as_nanos() as u64 - sent;
                                    latencies.push(lat_ns as f64 / 1_000.0);
                                }
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                // Drain the tail so late deliveries still count.
                let drain_until = Instant::now() + Duration::from_millis(500);
                while Instant::now() < drain_until {
                    for gc in &mut mine {
                        let _ = gc.client.pump();
                        while let Some(ev) = gc.client.poll_event() {
                            if let SvcEvent::Deliver { .. } = ev {
                                delivered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                latencies
            })
        })
        .collect();

    let mut latencies_us = Vec::new();
    for w in workers {
        latencies_us.extend(w.join().expect("worker"));
    }
    if let Some(t) = slow_thread {
        t.join().expect("slow-consumer thread");
    }
    ScaleResult {
        latencies_us,
        delivered: delivered.load(Ordering::Relaxed),
        published: published.load(Ordering::Relaxed),
        stalls: stalls.load(Ordering::Relaxed),
        evicted: svc.stats().evicted.get() - evicted_before,
        elapsed: epoch.elapsed(),
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn to_point(curve: &str, r: &ScaleResult, evictions: u64, rotations: u64) -> BenchPoint {
    let mut lat = r.latencies_us.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let secs = r.elapsed.as_secs_f64();
    BenchPoint {
        curve: curve.to_string(),
        offered_mbps: OFFERED_MSGS_PER_SEC * PAYLOAD as f64 * 8.0 / 1e6,
        throughput_mbps: r.published as f64 * PAYLOAD as f64 * 8.0 / 1e6 / secs,
        mean_us: mean,
        p50_us: percentile(&lat, 0.50),
        p90_us: percentile(&lat, 0.90),
        p99_us: percentile(&lat, 0.99),
        p999_us: percentile(&lat, 0.999),
        rotation_us: if rotations == 0 {
            0.0
        } else {
            r.elapsed.as_secs_f64() * 1e6 / rotations as f64
        },
        token_rotations: rotations,
        drops: evictions,
        rtx: 0,
    }
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let scales: &[usize] = if quick { &[10, 100] } else { &[10, 100, 1000] };
    let measure = if quick {
        Duration::from_secs(4)
    } else {
        Duration::from_secs(8)
    };

    let mut points = Vec::new();
    for (k, &clients) in scales.iter().enumerate() {
        let (_net, daemon, metrics) = single_daemon();
        let svc = start_tier(&daemon, clients + 64, FlowConfig::default());
        let addr = svc.tcp_addr().unwrap();
        eprintln!("loadgen: open-loop, {clients} clients, {OFFERED_MSGS_PER_SEC} msg/s offered");
        let rotations_before = snapshot_rotations(metrics.local_addr());
        let r = run_scale(
            addr,
            &svc,
            clients,
            0,
            None,
            measure,
            0x10ad_0000 + k as u64,
        );
        let rotations = snapshot_rotations(metrics.local_addr()).saturating_sub(rotations_before);
        eprintln!(
            "loadgen:   published {} delivered {} stalls {} samples {} p99 {:.0} us",
            r.published,
            r.delivered,
            r.stalls,
            r.latencies_us.len(),
            {
                let mut l = r.latencies_us.clone();
                l.sort_by(|a, b| a.partial_cmp(b).unwrap());
                percentile(&l, 0.99)
            }
        );
        if r.latencies_us.is_empty() {
            eprintln!("loadgen: no latency samples at {clients} clients");
            return ExitCode::FAILURE;
        }
        points.push(to_point(
            &format!("tier/open-loop/clients-{clients}"),
            &r,
            0,
            rotations,
        ));
        svc.shutdown().expect("svc shutdown");
        daemon.shutdown().expect("daemon shutdown");
    }

    // Slow-consumer scenario: 100 healthy clients plus unacking
    // subscribers of the hottest group. The tier must evict the slow
    // ones (drops column) while healthy latency stays finite.
    {
        let clients = 100;
        let (_net, daemon, metrics) = single_daemon();
        // A tight delivery window and pending bound so unacking
        // subscribers of the hot group trip the eviction policy within
        // the measurement window; acking clients keep their backlog
        // near zero and never approach it.
        let flow = FlowConfig {
            delivery_window: 32,
            max_pending: 64,
            ..FlowConfig::default()
        };
        let svc = start_tier(&daemon, clients + 64, flow);
        let addr = svc.tcp_addr().unwrap();
        eprintln!("loadgen: slow-consumer scenario, {clients} healthy + 4 unacking");
        let rotations_before = snapshot_rotations(metrics.local_addr());
        let r = run_scale(addr, &svc, clients, 4, None, measure, 0x510c_0de5);
        let rotations = snapshot_rotations(metrics.local_addr()).saturating_sub(rotations_before);
        eprintln!(
            "loadgen:   published {} delivered {} evicted {} samples {}",
            r.published,
            r.delivered,
            r.evicted,
            r.latencies_us.len()
        );
        if r.evicted == 0 {
            eprintln!("loadgen: slow consumers were never evicted");
            return ExitCode::FAILURE;
        }
        if r.latencies_us.is_empty() {
            eprintln!("loadgen: healthy clients starved in slow-consumer scenario");
            return ExitCode::FAILURE;
        }
        points.push(to_point(
            &format!("tier/slow-consumer/clients-{clients}"),
            &r,
            r.evicted,
            rotations,
        ));
        svc.shutdown().expect("svc shutdown");
        daemon.shutdown().expect("daemon shutdown");
    }

    // Reconnect-churn scenario: the same 100-client open-loop load,
    // but one connection is severed every CHURN_EVERY. Every kill must
    // resume its parked session (replaying retained deliveries); churn
    // must cause zero evictions and the healthy p99 must stay finite.
    {
        let clients = 100;
        let (_net, daemon, metrics) = single_daemon();
        let svc = start_tier(&daemon, clients + 64, FlowConfig::default());
        let addr = svc.tcp_addr().unwrap();
        eprintln!(
            "loadgen: reconnect-churn scenario, {clients} clients, one sever per {CHURN_EVERY:?}"
        );
        let rotations_before = snapshot_rotations(metrics.local_addr());
        let resumed_before = svc.stats().sessions_resumed.get();
        let r = run_scale(
            addr,
            &svc,
            clients,
            0,
            Some(CHURN_EVERY),
            measure,
            0xc4c4_0000,
        );
        let rotations = snapshot_rotations(metrics.local_addr()).saturating_sub(rotations_before);
        let resumed = svc.stats().sessions_resumed.get() - resumed_before;
        eprintln!(
            "loadgen:   published {} delivered {} resumed {} evicted {} samples {}",
            r.published,
            r.delivered,
            resumed,
            r.evicted,
            r.latencies_us.len()
        );
        if resumed == 0 {
            eprintln!("loadgen: churn never resumed a session");
            return ExitCode::FAILURE;
        }
        if r.evicted > 0 {
            eprintln!("loadgen: reconnect churn evicted {} clients", r.evicted);
            return ExitCode::FAILURE;
        }
        if r.latencies_us.is_empty() {
            eprintln!("loadgen: no latency samples under reconnect churn");
            return ExitCode::FAILURE;
        }
        let mut point = to_point(
            &format!("tier/reconnect-churn/clients-{clients}"),
            &r,
            r.evicted,
            rotations,
        );
        point.rtx = resumed;
        points.push(point);
        svc.shutdown().expect("svc shutdown");
        daemon.shutdown().expect("daemon shutdown");
    }

    match write_bench_json("client_tier", &points) {
        Ok(path) => {
            println!("loadgen: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: cannot write results: {e}");
            ExitCode::FAILURE
        }
    }
}
