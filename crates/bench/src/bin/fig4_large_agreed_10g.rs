//! Figure 4: throughput vs. Agreed delivery latency for 1350-byte and
//! 8850-byte payloads on a 10-gigabit network — accelerated protocol,
//! three implementations. Large UDP datagrams (kernel-level
//! fragmentation) amortize per-message processing and raise maximum
//! throughput substantially.

use ar_bench::figset::{scenario, Net};
use ar_bench::harness::run_figure;
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    let mut scenarios = Vec::new();
    for profile in ImplProfile::all() {
        for payload in [1350usize, 8850] {
            let mut s = scenario(
                Net::TenGigabit,
                profile,
                ProtocolVariant::Accelerated,
                ServiceType::Agreed,
                payload,
            );
            s.label = format!("{}/{}B", profile.name, payload);
            scenarios.push(s);
        }
    }
    run_figure(
        "fig4_large_agreed_10g",
        "Fig. 4 — Agreed latency, 1350 vs 8850-byte payloads, 10-gigabit network",
        &scenarios,
        &[500, 1000, 2000, 3000, 4000, 5000, 6000, 7000],
    );
}
