//! Ablation: sweep the accelerated window from 0 (the original
//! protocol's send pattern) upward, on both networks with the daemon
//! profile, measuring maximum throughput and latency at a fixed
//! moderate load. Shows where the paper's "pass the token early"
//! benefit comes from and that it saturates beyond a point.

use ar_bench::figset::{scenario, Net};
use ar_bench::sweep::{latency_curve, max_throughput};
use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    println!("Ablation — accelerated window sweep (daemon profile)\n");
    let mut table = Table::new([
        "net",
        "accel_window",
        "max_mbps",
        "mean_us_at_load",
        "load_mbps",
    ]);
    for (net, windows, probe_mbps) in [
        (Net::Gigabit, &[0u32, 1, 2, 5, 10, 20, 30][..], 600u64),
        (Net::TenGigabit, &[0, 2, 5, 10, 20, 40, 60][..], 2000),
    ] {
        for &w in windows {
            let mut s = scenario(
                net,
                ImplProfile::daemon(),
                ProtocolVariant::Accelerated,
                ServiceType::Agreed,
                1350,
            );
            s.base.protocol.accelerated_window = w;
            let max = max_throughput(&s.base);
            let probe = &latency_curve(&s.base, &[probe_mbps])[0];
            table.row([
                format!("{net:?}"),
                w.to_string(),
                format!("{:.1}", max.achieved_mbps()),
                format!("{:.1}", probe.latency_us()),
                probe_mbps.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    if let Ok(p) = write_csv(&table, "ablation_accel_window") {
        println!("\nwrote {}", p.display());
    }
}
