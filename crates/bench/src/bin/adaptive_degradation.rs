//! `BENCH_adaptive_degradation.json`: throughput of a four-node
//! virtual-clock ring before, during, and after a loss burst, with the
//! AIMD accelerated-window controller enabled.
//!
//! The run is one deterministic nemesis schedule measured in three
//! phases (the harness resumes exactly where the previous phase
//! stopped): a clean warm-up, a 30%-loss burst on one host's links
//! that drives the effective accelerated window down, and a recovered
//! phase after the controller has grown the window back. The figure's
//! acceptance criterion — recovered throughput within 10% of the
//! pre-fault phase — is enforced here with a panic, so CI fails if the
//! controller stops recovering.
//!
//! Delivery-latency percentiles are not observable in the virtual-time
//! harness and are reported as 0.

use std::time::Duration;

use ar_bench::{write_bench_json, BenchPoint};
use ar_core::{AimdConfig, ProtocolConfig, ServiceType};
use ar_net::{NemesisPlan, NemesisRunner};

const HOSTS: usize = 4;
const PAYLOAD: usize = 256;
/// One submission per host every 2ms of virtual time.
const SUBMIT_PERIOD_MS: u64 = 2;
const RUN_MS: u64 = 2_000;
const BURST_START_MS: u64 = 400;
const BURST_END_MS: u64 = 900;
/// Post-burst settling time excluded from the recovered phase.
const SETTLE_END_MS: u64 = 1_200;

/// Counter snapshot at a phase boundary.
struct Snapshot {
    deliveries: usize,
    tokens: u64,
    dropped: u64,
    rtx: u64,
    at: Duration,
}

fn snapshot(r: &mut NemesisRunner, limit_ms: u64) -> Snapshot {
    let out = r.run(Duration::from_millis(limit_ms));
    Snapshot {
        deliveries: out.deliveries[0],
        tokens: out.tokens_seen,
        dropped: out.dropped,
        rtx: (0..HOSTS)
            .map(|i| r.participant(i).stats().retransmissions_sent)
            .sum(),
        at: out.stopped_at,
    }
}

fn phase_point(curve: &str, from: &Snapshot, to: &Snapshot) -> BenchPoint {
    let secs = (to.at - from.at).as_secs_f64();
    let ordered = (to.deliveries - from.deliveries) as f64;
    let tokens = to.tokens - from.tokens;
    let rotations = tokens / HOSTS as u64;
    let offered = 1000.0 / SUBMIT_PERIOD_MS as f64 * HOSTS as f64;
    BenchPoint {
        curve: curve.to_string(),
        offered_mbps: offered * (PAYLOAD * 8) as f64 / 1e6,
        throughput_mbps: ordered * (PAYLOAD * 8) as f64 / 1e6 / secs,
        mean_us: 0.0,
        p50_us: 0.0,
        p90_us: 0.0,
        p99_us: 0.0,
        p999_us: 0.0,
        rotation_us: if rotations == 0 {
            0.0
        } else {
            secs * 1e6 / rotations as f64
        },
        token_rotations: rotations,
        drops: to.dropped - from.dropped,
        rtx: to.rtx - from.rtx,
    }
}

fn main() {
    let aimd = AimdConfig {
        enabled: true,
        pressure_threshold: 1,
        pressure_rounds: 2,
        recovery_rounds: 4,
    };
    let cfg = ProtocolConfig::accelerated()
        .with_accelerated_window(4)
        .with_accel_aimd(aimd);
    let mut r = NemesisRunner::new(HOSTS as u16, cfg, NemesisPlan::none(), 0.0, 4242);
    r.schedule_host_loss(Duration::from_millis(BURST_START_MS), 1, 0.3);
    r.schedule_host_loss(Duration::from_millis(BURST_END_MS), 1, 0.0);
    let payload = vec![0x5au8; PAYLOAD];
    for k in 0..RUN_MS / SUBMIT_PERIOD_MS {
        let at = Duration::from_millis(SUBMIT_PERIOD_MS * k + 1);
        for host in 0..HOSTS {
            r.submit_at(at, host, &payload, ServiceType::Agreed);
        }
    }
    r.start();

    let t0 = snapshot(&mut r, 1); // spin-up, excluded from all phases
    let pre = snapshot(&mut r, BURST_START_MS);
    let burst = snapshot(&mut r, BURST_END_MS);
    let settle = snapshot(&mut r, SETTLE_END_MS);
    let end = snapshot(&mut r, RUN_MS);

    let points = vec![
        phase_point("adaptive/pre-fault", &t0, &pre),
        phase_point("adaptive/loss-burst", &pre, &burst),
        phase_point("adaptive/recovered", &settle, &end),
    ];

    let shrinks: u64 = (0..HOSTS)
        .map(|i| r.participant(i).stats().accel_window_shrinks)
        .sum();
    let grows: u64 = (0..HOSTS)
        .map(|i| r.participant(i).stats().accel_window_grows)
        .sum();
    for p in &points {
        println!(
            "{:<22} {:>8.2} Mbps  rot {:>7.1} us  drops {:>6}  rtx {:>5}",
            p.curve, p.throughput_mbps, p.rotation_us, p.drops, p.rtx
        );
    }
    println!("aimd: {shrinks} shrinks, {grows} grows");

    assert!(
        shrinks >= 1,
        "the loss burst never engaged the AIMD controller"
    );
    let pre_tput = points[0].throughput_mbps;
    let rec_tput = points[2].throughput_mbps;
    assert!(
        rec_tput >= 0.9 * pre_tput,
        "post-burst throughput did not recover: {rec_tput:.2} Mbps vs pre-fault {pre_tput:.2} Mbps"
    );

    let path = write_bench_json("adaptive_degradation", &points).expect("write BENCH json");
    println!("wrote {}", path.display());
}
