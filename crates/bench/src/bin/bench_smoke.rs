//! Quick CI smoke run: a two-point Agreed curve on the 1-gigabit
//! network with a short measurement window. Exercises the whole
//! figure pipeline (scenario → sweep → table → CSV → BENCH JSON) in a
//! few seconds so CI can validate `BENCH_bench_smoke.json` against
//! `docs/bench_schema.json` without paying for a full figure.

use ar_bench::figset::{scenario, Net};
use ar_bench::harness::run_figure;
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::{ImplProfile, SimDuration};

fn main() {
    let mut s = scenario(
        Net::Gigabit,
        ImplProfile::library(),
        ProtocolVariant::Accelerated,
        ServiceType::Agreed,
        1350,
    );
    s.base.duration = SimDuration::from_millis(30);
    s.base.warmup = SimDuration::from_millis(15);
    run_figure(
        "bench_smoke",
        "CI smoke — Agreed latency vs. throughput, 1-gigabit (short run)",
        &[s],
        &[100, 400],
    );
}
