//! Validates BENCH result files against the checked-in JSON schema.
//!
//! ```text
//! usage: bench_schema_check <schema.json> <BENCH_file.json>...
//! ```
//!
//! Exits 0 when every file validates, 1 otherwise (printing each
//! violation). CI runs this over the `BENCH_*.json` files the smoke
//! binary emits.

use std::process::ExitCode;

use ar_bench::schema::validate;
use ar_telemetry::json::Value;

const USAGE: &str = "usage: bench_schema_check <schema.json> <BENCH_file.json>...";

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let schema = match load(&args[0]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_schema_check: cannot load schema: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for path in &args[1..] {
        match load(path) {
            Ok(doc) => {
                let errors = validate(&schema, &doc);
                if errors.is_empty() {
                    println!("{path}: ok");
                } else {
                    failed = true;
                    for e in &errors {
                        eprintln!("{path}: {e}");
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("bench_schema_check: {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
