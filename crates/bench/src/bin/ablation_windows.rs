//! Ablation: personal-window sweep (library profile, 1-gigabit). The
//! paper controls the library prototype's throughput with the personal
//! window (§IV-A); this sweep regenerates that relationship and shows
//! the latency cost of oversized windows.

use ar_bench::figset::{scenario, Net};
use ar_bench::sweep::max_throughput;
use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    println!("Ablation — personal window sweep (library, 1-gigabit, saturating)\n");
    let mut table = Table::new(["personal_window", "achieved_mbps", "mean_us", "rotations"]);
    for pw in [1u32, 2, 5, 10, 20, 30, 60, 120] {
        let mut s = scenario(
            Net::Gigabit,
            ImplProfile::library(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        s.base.protocol.personal_window = pw;
        s.base.protocol.global_window = (pw * 8).max(s.base.protocol.global_window);
        s.base.protocol.accelerated_window = s.base.protocol.accelerated_window.min(pw);
        let r = max_throughput(&s.base);
        table.row([
            pw.to_string(),
            format!("{:.1}", r.achieved_mbps()),
            format!("{:.1}", r.mean_latency_us()),
            r.token_rotations.to_string(),
        ]);
    }
    print!("{}", table.render());
    if let Ok(p) = write_csv(&table, "ablation_windows") {
        println!("\nwrote {}", p.display());
    }
}
