//! Figure 2: Safe delivery latency vs. throughput on a 1-gigabit
//! network — six curves, 1350-byte payloads, 8 hosts.

use ar_bench::figset::{six_curves, Net};
use ar_bench::harness::run_figure;
use ar_core::ServiceType;

fn main() {
    let scenarios = six_curves(Net::Gigabit, ServiceType::Safe);
    run_figure(
        "fig2_safe_1g",
        "Fig. 2 — Safe delivery latency vs. throughput, 1-gigabit network",
        &scenarios,
        &[100, 200, 300, 400, 500, 600, 700, 800, 900],
    );
}
