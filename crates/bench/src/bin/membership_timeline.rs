//! Throughput over time across a membership change: the classic group
//! communication demo. One host crashes mid-run; the plot (printed as
//! a table, written as CSV) shows steady throughput, the gap while the
//! survivors detect the loss and re-form the ring, and the recovery.

use ar_bench::table::{write_csv, Table};
use ar_core::{ProtocolConfig, ServiceType, TimeoutConfig};
use ar_sim::{
    find_disruption, FaultPlan, ImplProfile, LoadMode, NetworkConfig, RingSim, RingSimConfig,
    SimDuration, SimTime,
};

fn main() {
    let crash_at = SimDuration::from_millis(150);
    let cfg = RingSimConfig {
        n_hosts: 8,
        protocol: ProtocolConfig::accelerated(),
        timeouts: TimeoutConfig::default(),
        net: NetworkConfig::gigabit(),
        profile: ImplProfile::daemon(),
        payload_bytes: 1350,
        service: ServiceType::Agreed,
        load: LoadMode::OpenLoop {
            aggregate_bps: 300_000_000,
        },
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::ZERO,
        seed: 42,
        faults: FaultPlan::none().crash(SimTime::ZERO + crash_at, 7),
        verify_order: true,
    };
    println!(
        "8 hosts at 300 Mbps aggregate; host 7 crashes at {} — deliveries at host 0 per 10 ms:\n",
        crash_at
    );
    let sim = RingSim::new(cfg).with_series(SimDuration::from_millis(10));
    let (report, series) = sim.run_full();
    let series = series.expect("enabled");
    let mut table = Table::new(["t_ms", "mbps_at_host0"]);
    for (t, bps) in series.points_bps(1350 * 8) {
        table.row([
            format!("{:.0}", t.as_nanos() as f64 / 1e6),
            format!("{:.1}", bps / 1e6),
        ]);
    }
    print!("{}", table.render());
    match find_disruption(series.counts(), 0.5) {
        Some(d) => println!(
            "\ndisruption: gap of {} buckets (~{} ms) starting at bucket {}; \
             throughput before {:.0}/bucket, after {:.0}/bucket \
             (7/8 of the load survives the crashed sender)",
            d.gap_buckets,
            d.gap_buckets * 10,
            d.gap_start,
            d.before_mean,
            d.after_mean
        ),
        None => println!("\nno disruption detected (unexpected)"),
    }
    println!(
        "membership changes are brief: total-order delivery resumed; \
         retransmissions during recovery: {}",
        report.retransmissions
    );
    if let Ok(p) = write_csv(&table, "membership_timeline") {
        println!("wrote {}", p.display());
    }
}
