//! Ablation: priority-switching method 1 (aggressive) vs method 2
//! (conservative) for the accelerated protocol (Section III-C). The
//! paper's prototypes use method 1 for peak performance; Spread ships
//! method 2 for stability. The difference only matters when the token
//! can arrive before the data backlog is drained, i.e. at high load on
//! the processing-bound 10-gigabit network.

use ar_bench::figset::{scenario, Net};
use ar_bench::harness::run_figure;
use ar_core::{PriorityMethod, ProtocolVariant, ServiceType};
use ar_sim::ImplProfile;

fn main() {
    let mut scenarios = Vec::new();
    for method in [PriorityMethod::Aggressive, PriorityMethod::Conservative] {
        let mut s = scenario(
            Net::TenGigabit,
            ImplProfile::daemon(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        s.base.protocol.priority_method = method;
        s.label = format!("{method}");
        scenarios.push(s);
    }
    run_figure(
        "ablation_priority_method",
        "Ablation — priority-switching method 1 vs 2 (accelerated, daemon, 10-gigabit)",
        &scenarios,
        &[500, 1000, 1500, 2000, 2500, 3000],
    );
}
