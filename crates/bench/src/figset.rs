//! Scenario construction shared by all figure harnesses.

use ar_core::{ProtocolConfig, ProtocolVariant, ServiceType, TimeoutConfig};
use ar_sim::{ImplProfile, LoadMode, NetworkConfig, RingSimConfig, SimDuration};

/// Which network a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Net {
    /// 1-gigabit (Catalyst 2960 model).
    Gigabit,
    /// 10-gigabit (Arista 7100T model).
    TenGigabit,
}

impl Net {
    /// The corresponding network configuration.
    pub fn config(self) -> NetworkConfig {
        match self {
            Net::Gigabit => NetworkConfig::gigabit(),
            Net::TenGigabit => NetworkConfig::ten_gigabit(),
        }
    }
}

/// A named benchmark scenario: network × implementation × protocol
/// variant × service × payload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label, e.g. "spread/accelerated".
    pub label: String,
    /// The assembled simulation configuration (load mode is set by the
    /// sweep functions).
    pub base: RingSimConfig,
}

/// Tuned protocol configuration for a scenario, following the paper's
/// method: the smallest personal window that reaches maximum
/// throughput, and the accelerated window that maximizes throughput for
/// that personal window (§IV-A). The original protocol uses the same
/// windows with no acceleration.
pub fn tuned_protocol(variant: ProtocolVariant, net: Net, payload: usize) -> ProtocolConfig {
    let (personal, global, accel) = match (net, payload >= 4096) {
        // 1-gigabit: moderate windows saturate the wire.
        (Net::Gigabit, false) => (30, 200, 20),
        (Net::Gigabit, true) => (10, 64, 6),
        // 10-gigabit: the wire is fast relative to processing; larger
        // windows amortize token handling.
        (Net::TenGigabit, false) => (60, 400, 40),
        (Net::TenGigabit, true) => (24, 160, 16),
    };

    ProtocolConfig {
        variant,
        personal_window: personal,
        global_window: global,
        accelerated_window: if variant == ProtocolVariant::Accelerated {
            accel
        } else {
            0
        },
        max_seq_gap: 4000,
        priority_method: match variant {
            // Prototypes use method 1; Spread (and the original
            // baseline) use method 2 (§III-D). The scenario builder
            // overrides this for the Spread profile.
            ProtocolVariant::Accelerated => ar_core::PriorityMethod::Aggressive,
            ProtocolVariant::Original => ar_core::PriorityMethod::Conservative,
        },
        ..ProtocolConfig::accelerated()
    }
}

/// Builds a scenario for one curve of a figure.
pub fn scenario(
    net: Net,
    profile: ImplProfile,
    variant: ProtocolVariant,
    service: ServiceType,
    payload: usize,
) -> Scenario {
    let mut protocol = tuned_protocol(variant, net, payload);
    if profile.name == "spread" && variant == ProtocolVariant::Accelerated {
        // The open-source Spread release implements the conservative
        // method (§III-D).
        protocol.priority_method = ar_core::PriorityMethod::Conservative;
    }
    let base = RingSimConfig {
        n_hosts: 8,
        protocol,
        timeouts: TimeoutConfig::default(),
        net: net.config(),
        profile,
        payload_bytes: payload,
        service,
        load: LoadMode::Saturating,
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(120),
        seed: 42,
        faults: ar_sim::FaultPlan::none(),
        verify_order: false,
    };
    Scenario {
        label: format!("{}/{}", profile.name, variant),
        base,
    }
}

/// The six (implementation × variant) curves the 1350-byte figures
/// plot, in the paper's order.
pub fn six_curves(net: Net, service: ServiceType) -> Vec<Scenario> {
    let mut out = Vec::new();
    for profile in ImplProfile::all() {
        for variant in [ProtocolVariant::Original, ProtocolVariant::Accelerated] {
            out.push(scenario(net, profile, variant, service, 1350));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_windows_validate() {
        for net in [Net::Gigabit, Net::TenGigabit] {
            for payload in [1350usize, 8850] {
                for variant in [ProtocolVariant::Original, ProtocolVariant::Accelerated] {
                    tuned_protocol(variant, net, payload).validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn original_has_no_acceleration() {
        let p = tuned_protocol(ProtocolVariant::Original, Net::Gigabit, 1350);
        assert_eq!(p.accelerated_window, 0);
    }

    #[test]
    fn spread_accelerated_uses_conservative_priority() {
        let s = scenario(
            Net::Gigabit,
            ImplProfile::spread(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        assert_eq!(
            s.base.protocol.priority_method,
            ar_core::PriorityMethod::Conservative
        );
        let lib = scenario(
            Net::Gigabit,
            ImplProfile::library(),
            ProtocolVariant::Accelerated,
            ServiceType::Agreed,
            1350,
        );
        assert_eq!(
            lib.base.protocol.priority_method,
            ar_core::PriorityMethod::Aggressive
        );
    }

    #[test]
    fn six_curves_cover_all_combinations() {
        let curves = six_curves(Net::Gigabit, ServiceType::Agreed);
        assert_eq!(curves.len(), 6);
        let labels: Vec<&str> = curves.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"library/original"));
        assert!(labels.contains(&"spread/accelerated"));
    }
}
