//! A minimal JSON-Schema-subset validator for the BENCH result files.
//!
//! CI validates every `BENCH_*.json` a figure binary emits against the
//! checked-in `docs/bench_schema.json`. The workspace vendors no JSON
//! Schema crate, so this implements exactly the subset that schema
//! uses: `type` (string or array of strings), `properties`, `required`,
//! `items`, `minItems`, and `enum` (of strings). Unknown keywords are
//! ignored, as the spec prescribes.

use ar_telemetry::json::Value;

/// Validates `doc` against `schema`, returning every violation found
/// (empty = valid). Paths in messages are JSON-pointer-ish
/// (`/points/3/curve`).
pub fn validate(schema: &Value, doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, doc, "", &mut errors);
    errors
}

fn check(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    let here = || {
        if path.is_empty() {
            "/".to_string()
        } else {
            path.to_string()
        }
    };

    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Value::Str(s) => vec![s.as_str()],
            Value::Arr(a) => a.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !allowed.is_empty() && !allowed.iter().any(|t| type_matches(t, doc)) {
            errors.push(format!(
                "{}: expected type {}, got {}",
                here(),
                allowed.join("|"),
                doc.type_name()
            ));
            // A type mismatch makes the structural keywords below
            // meaningless; stop descending.
            return;
        }
    }

    if let Some(allowed) = schema.get("enum").and_then(Value::as_array) {
        if !allowed.iter().any(|v| v == doc) {
            errors.push(format!("{}: value not in enum", here()));
        }
    }

    if let Some(required) = schema.get("required").and_then(Value::as_array) {
        if let Some(obj) = doc.as_object() {
            for name in required.iter().filter_map(Value::as_str) {
                if !obj.contains_key(name) {
                    errors.push(format!("{}: missing required property {name:?}", here()));
                }
            }
        }
    }

    if let Some(props) = schema.get("properties").and_then(Value::as_object) {
        if let Some(obj) = doc.as_object() {
            for (name, sub) in props {
                if let Some(val) = obj.get(name) {
                    check(sub, val, &format!("{path}/{name}"), errors);
                }
            }
        }
    }

    if let Some(arr) = doc.as_array() {
        if let Some(min) = schema.get("minItems").and_then(Value::as_f64) {
            if (arr.len() as f64) < min {
                errors.push(format!(
                    "{}: array has {} items, fewer than minItems {}",
                    here(),
                    arr.len(),
                    min
                ));
            }
        }
        if let Some(items) = schema.get("items") {
            for (i, item) in arr.iter().enumerate() {
                check(items, item, &format!("{path}/{i}"), errors);
            }
        }
    }
}

fn type_matches(name: &str, doc: &Value) -> bool {
    match name {
        "null" => matches!(doc, Value::Null),
        "boolean" => matches!(doc, Value::Bool(_)),
        "number" => matches!(doc, Value::Num(_)),
        "integer" => matches!(doc, Value::Num(n) if *n == n.trunc()),
        "string" => matches!(doc, Value::Str(_)),
        "array" => matches!(doc, Value::Arr(_)),
        "object" => matches!(doc, Value::Obj(_)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        Value::parse(s).unwrap()
    }

    fn bench_schema() -> Value {
        parse(include_str!("../../../docs/bench_schema.json"))
    }

    #[test]
    fn emitted_bench_json_validates_against_checked_in_schema() {
        use crate::benchjson::{render_bench_json, BenchPoint};
        use ar_sim::SimReport;
        let report = SimReport {
            achieved_bps: 500e6,
            token_rotations: 10,
            measurement_nanos: 1_000_000,
            ..SimReport::default()
        };
        let points = vec![BenchPoint::from_report(
            "library/accelerated",
            500.0,
            &report,
        )];
        let doc = parse(&render_bench_json("fig_check", &points));
        let errors = validate(&bench_schema(), &doc);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn schema_rejects_missing_required_field() {
        let doc = parse(r#"{"name":"x","schema":1,"points":[{"curve":"c"}]}"#);
        let errors = validate(&bench_schema(), &doc);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing required property")),
            "{errors:?}"
        );
    }

    #[test]
    fn schema_rejects_wrong_types() {
        let doc = parse(r#"{"name":7,"schema":1,"points":[]}"#);
        let errors = validate(&bench_schema(), &doc);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("/name") && e.contains("string")),
            "{errors:?}"
        );
    }

    #[test]
    fn type_keyword_accepts_alternatives() {
        let schema = parse(r#"{"type":["number","null"]}"#);
        assert!(validate(&schema, &parse("3")).is_empty());
        assert!(validate(&schema, &parse("null")).is_empty());
        assert!(!validate(&schema, &parse("\"s\"")).is_empty());
    }

    #[test]
    fn integer_type_rejects_fractions() {
        let schema = parse(r#"{"type":"integer"}"#);
        assert!(validate(&schema, &parse("4")).is_empty());
        assert!(!validate(&schema, &parse("4.5")).is_empty());
    }

    #[test]
    fn min_items_enforced() {
        let schema = parse(r#"{"type":"array","minItems":1}"#);
        assert!(!validate(&schema, &parse("[]")).is_empty());
        assert!(validate(&schema, &parse("[1]")).is_empty());
    }
}
