//! `BENCH_<name>.json` emission: a machine-readable companion to the
//! CSV every figure binary writes.
//!
//! The JSON document has a stable shape (validated in CI against
//! `docs/bench_schema.json` by the `bench_schema_check` binary):
//!
//! ```json
//! {
//!   "name": "fig1_agreed_1g",
//!   "schema": 1,
//!   "points": [
//!     { "curve": "library/accelerated", "offered_mbps": 600, ... }
//!   ]
//! }
//! ```
//!
//! Each point carries the throughput/latency profile plus the
//! telemetry-derived columns (p90/p99.9, mean token-rotation time) so
//! downstream plotting does not need to re-run simulations.

use std::path::PathBuf;

use ar_sim::SimReport;
use ar_telemetry::json::JsonWriter;

/// Version of the BENCH JSON document shape; bump when fields change
/// incompatibly.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One measured point of a figure, flattened for serialization.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Curve label (implementation/variant, or whatever the figure
    /// sweeps).
    pub curve: String,
    /// Offered aggregate load, Mbps (0 for saturating runs).
    pub offered_mbps: f64,
    /// Achieved goodput, Mbps.
    pub throughput_mbps: f64,
    /// Mean delivery latency, µs.
    pub mean_us: f64,
    /// Median delivery latency, µs.
    pub p50_us: f64,
    /// 90th-percentile delivery latency, µs.
    pub p90_us: f64,
    /// 99th-percentile delivery latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile delivery latency, µs.
    pub p999_us: f64,
    /// Mean token rotation time, µs (0 if the run completed no
    /// rotations).
    pub rotation_us: f64,
    /// Token rotations completed in the measurement window.
    pub token_rotations: u64,
    /// Frames/datagrams dropped (switch + socket).
    pub drops: u64,
    /// Retransmissions multicast.
    pub rtx: u64,
}

impl BenchPoint {
    /// Flattens one [`SimReport`] into a point on `curve`.
    pub fn from_report(curve: &str, offered_mbps: f64, report: &SimReport) -> BenchPoint {
        BenchPoint {
            curve: curve.to_string(),
            offered_mbps,
            throughput_mbps: report.achieved_mbps(),
            mean_us: report.mean_latency_us(),
            p50_us: report.latency.p50.as_micros_f64(),
            p90_us: report.latency.p90.as_micros_f64(),
            p99_us: report.latency.p99.as_micros_f64(),
            p999_us: report.latency.p999.as_micros_f64(),
            rotation_us: report.rotation_us(),
            token_rotations: report.token_rotations,
            drops: report.switch_drops + report.socket_drops,
            rtx: report.retransmissions,
        }
    }
}

/// Renders the BENCH JSON document text for `name`.
pub fn render_bench_json(name: &str, points: &[BenchPoint]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("name");
    w.str(name);
    w.key("schema");
    w.num_u64(BENCH_SCHEMA_VERSION);
    w.key("points");
    w.begin_array();
    for p in points {
        w.begin_object();
        w.key("curve");
        w.str(&p.curve);
        w.key("offered_mbps");
        w.num_f64(p.offered_mbps);
        w.key("throughput_mbps");
        w.num_f64(p.throughput_mbps);
        w.key("mean_us");
        w.num_f64(p.mean_us);
        w.key("p50_us");
        w.num_f64(p.p50_us);
        w.key("p90_us");
        w.num_f64(p.p90_us);
        w.key("p99_us");
        w.num_f64(p.p99_us);
        w.key("p999_us");
        w.num_f64(p.p999_us);
        w.key("rotation_us");
        w.num_f64(p.rotation_us);
        w.key("token_rotations");
        w.num_u64(p.token_rotations);
        w.key("drops");
        w.num_u64(p.drops);
        w.key("rtx");
        w.num_u64(p.rtx);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Writes `BENCH_<name>.json` into the current directory (where CI
/// collects them) and returns the path written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_bench_json(name: &str, points: &[BenchPoint]) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, render_bench_json(name, points))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_telemetry::json::Value;

    fn sample_point() -> BenchPoint {
        let report = SimReport {
            achieved_bps: 600e6,
            token_rotations: 1000,
            measurement_nanos: 100_000_000,
            switch_drops: 3,
            socket_drops: 2,
            retransmissions: 7,
            ..SimReport::default()
        };
        BenchPoint::from_report("library/accelerated", 600.0, &report)
    }

    #[test]
    fn from_report_flattens_the_derived_units() {
        let p = sample_point();
        assert!((p.throughput_mbps - 600.0).abs() < 1e-9);
        // 100 ms / 1000 rotations = 100 µs per rotation.
        assert!((p.rotation_us - 100.0).abs() < 1e-9);
        assert_eq!(p.drops, 5);
        assert_eq!(p.rtx, 7);
    }

    #[test]
    fn rendered_document_parses_with_expected_fields() {
        let text = render_bench_json("fig_test", &[sample_point()]);
        let v = Value::parse(&text).expect("BENCH JSON parses");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig_test"));
        assert_eq!(
            v.get("schema").and_then(Value::as_f64),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        let points = v.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        for field in [
            "offered_mbps",
            "throughput_mbps",
            "mean_us",
            "p50_us",
            "p90_us",
            "p99_us",
            "p999_us",
            "rotation_us",
            "token_rotations",
            "drops",
            "rtx",
        ] {
            assert!(p.get(field).and_then(Value::as_f64).is_some(), "{field}");
        }
        assert_eq!(
            p.get("curve").and_then(Value::as_str),
            Some("library/accelerated")
        );
    }

    #[test]
    fn empty_points_render_an_empty_array() {
        let text = render_bench_json("empty", &[]);
        let v = Value::parse(&text).unwrap();
        assert_eq!(
            v.get("points")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
    }
}
