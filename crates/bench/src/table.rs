//! Plain-text table rendering and CSV output for the figure harnesses.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; its length must match the headers.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes the table as CSV under `results/<name>.csv` (creating the
/// directory), and returns the path written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing.
pub fn write_csv(table: &Table, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "mbps"]);
        t.row(["accelerated", "920"]);
        t.row(["orig", "500"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("accelerated"));
        // Right-aligned numbers line up at the end.
        assert!(lines[2].ends_with("920"));
        assert!(lines[3].ends_with("500"));
    }

    #[test]
    fn csv_escapes_delimiters() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "plain"]);
        t.row(["quote\"inside", "z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"inside\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
