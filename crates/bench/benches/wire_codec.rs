//! Criterion micro-benchmarks for the wire codec: the per-message
//! encode/decode costs that bound a single-threaded daemon's message
//! rate.

use ar_core::wire::{decode, encode, Message};
use ar_core::{DataMessage, ParticipantId, RingId, Round, Seq, ServiceType, Token};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn data_msg(payload_len: usize) -> Message {
    Message::Data(DataMessage {
        ring_id: RingId::new(ParticipantId::new(0), 1),
        seq: Seq::new(123_456),
        pid: ParticipantId::new(5),
        round: Round::new(99_999),
        service: ServiceType::Agreed,
        after_token: true,
        payload: Bytes::from(vec![0xAB; payload_len]),
    })
}

fn token_msg(rtr_len: usize) -> Message {
    Message::Token(Token {
        ring_id: RingId::new(ParticipantId::new(0), 1),
        round: Round::new(424_242),
        seq: Seq::new(1_000_000),
        aru: Seq::new(999_990),
        aru_setter: Some(ParticipantId::new(3)),
        fcc: 160,
        rtr: (0..rtr_len as u64).map(|i| Seq::new(999_000 + i)).collect(),
    })
}

fn bench_data(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/data");
    for len in [64usize, 1350, 8850] {
        let msg = data_msg(len);
        let encoded = encode(&msg);
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", len), &msg, |b, m| {
            b.iter(|| encode(std::hint::black_box(m)))
        });
        g.bench_with_input(BenchmarkId::new("decode", len), &encoded, |b, e| {
            b.iter(|| decode(std::hint::black_box(e)).unwrap())
        });
    }
    g.finish();
}

fn bench_token(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/token");
    for rtr in [0usize, 16, 256] {
        let msg = token_msg(rtr);
        let encoded = encode(&msg);
        g.bench_with_input(BenchmarkId::new("encode", rtr), &msg, |b, m| {
            b.iter(|| encode(std::hint::black_box(m)))
        });
        g.bench_with_input(BenchmarkId::new("decode", rtr), &encoded, |b, e| {
            b.iter(|| decode(std::hint::black_box(e)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_data, bench_token);
criterion_main!(benches);
