//! Criterion micro-benchmarks for the receive buffer: insertion,
//! gap scanning, delivery, and discard — the per-data-message costs on
//! the receive path.

use ar_core::{DataMessage, ParticipantId, RecvBuffer, RingId, Round, Seq, ServiceType};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn msg(seq: u64) -> DataMessage {
    DataMessage {
        ring_id: RingId::new(ParticipantId::new(0), 1),
        seq: Seq::new(seq),
        pid: ParticipantId::new(1),
        round: Round::new(1),
        service: ServiceType::Agreed,
        after_token: false,
        payload: Bytes::from_static(&[0u8; 64]),
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("recvbuf/insert");
    for n in [256u64, 4096] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("in_order", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = RecvBuffer::new(Seq::ZERO);
                for s in 1..=n {
                    buf.insert(msg(s));
                }
                buf
            })
        });
        g.bench_with_input(BenchmarkId::new("reverse_order", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = RecvBuffer::new(Seq::ZERO);
                for s in (1..=n).rev() {
                    buf.insert(msg(s));
                }
                buf
            })
        });
    }
    g.finish();
}

fn bench_missing_scan(c: &mut Criterion) {
    // Every other message missing in a 4096 window: the worst realistic
    // rtr-building scan.
    let mut buf = RecvBuffer::new(Seq::ZERO);
    for s in (2..=4096u64).step_by(2) {
        buf.insert(msg(s));
    }
    c.bench_function("recvbuf/missing_up_to_half_gaps", |b| {
        b.iter(|| buf.missing_up_to(std::hint::black_box(Seq::new(4096))))
    });
}

fn bench_deliver_and_discard(c: &mut Criterion) {
    c.bench_function("recvbuf/deliver_then_discard_1k", |b| {
        b.iter_batched(
            || {
                let mut buf = RecvBuffer::new(Seq::ZERO);
                for s in 1..=1024u64 {
                    buf.insert(msg(s));
                }
                buf
            },
            |mut buf| {
                let d = buf.deliver_ready(Seq::new(1024));
                buf.discard_up_to(Seq::new(1024));
                (d.len(), buf)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_missing_scan,
    bench_deliver_and_discard
);
criterion_main!(benches);
