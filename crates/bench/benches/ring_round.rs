//! Criterion benchmark of a full simulated run on the 8-host ring —
//! protocol + simulator end to end, original vs accelerated.

use ar_bench::figset::{scenario, Net};
use ar_core::{ProtocolVariant, ServiceType};
use ar_sim::{run_ring, ImplProfile, LoadMode, SimDuration};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_short_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_round/sim_20ms_window");
    g.sample_size(10);
    for variant in [ProtocolVariant::Original, ProtocolVariant::Accelerated] {
        let mut s = scenario(
            Net::Gigabit,
            ImplProfile::daemon(),
            variant,
            ServiceType::Agreed,
            1350,
        );
        s.base.load = LoadMode::OpenLoop {
            aggregate_bps: 400_000_000,
        };
        s.base.warmup = SimDuration::from_millis(5);
        s.base.duration = SimDuration::from_millis(20);
        g.bench_with_input(
            BenchmarkId::new("1g_400mbps", format!("{variant}")),
            &s.base,
            |b, cfg| b.iter(|| run_ring(std::hint::black_box(cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_short_sim);
criterion_main!(benches);
