//! Criterion micro-benchmarks for the telemetry histogram — the
//! structure on every instrumented hot path (token handling in ar-net,
//! latency recording in ar-sim), so `record` must stay allocation-free
//! and well under the cost of the work it measures.
//!
//! The ISSUE acceptance bar (≤ 100 ns per `record` in release mode) is
//! asserted directly here with a simple wall-clock check before the
//! Criterion runs, so `cargo bench --bench telemetry_hist` fails loudly
//! on a regression rather than just printing a slower number.

use ar_telemetry::{AtomicHistogram, LogLinearHistogram};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget per `record` call, release mode.
const RECORD_BUDGET_NS: f64 = 100.0;

fn assert_record_budget() {
    // Debug builds miss the budget by an order of magnitude and that is
    // fine; the bar applies to optimized code only.
    if cfg!(debug_assertions) {
        return;
    }
    let mut rng = StdRng::seed_from_u64(7);
    let values: Vec<u64> = (0..1_000_000)
        .map(|_| rng.gen_range(1..100_000_000))
        .collect();
    let mut h = LogLinearHistogram::new();
    let start = std::time::Instant::now();
    for &v in &values {
        h.record(v);
    }
    let per_record = start.elapsed().as_secs_f64() * 1e9 / values.len() as f64;
    assert_eq!(h.count(), values.len() as u64);
    assert!(
        per_record <= RECORD_BUDGET_NS,
        "LogLinearHistogram::record took {per_record:.1} ns, budget {RECORD_BUDGET_NS} ns"
    );
    println!("record budget check: {per_record:.1} ns per record (budget {RECORD_BUDGET_NS} ns)");
}

fn bench_record(c: &mut Criterion) {
    assert_record_budget();
    let mut rng = StdRng::seed_from_u64(7);
    let values: Vec<u64> = (0..4096).map(|_| rng.gen_range(1..100_000_000)).collect();

    let mut g = c.benchmark_group("telemetry_hist");
    g.bench_function("record", |b| {
        let mut h = LogLinearHistogram::new();
        let mut i = 0usize;
        b.iter(|| {
            h.record(values[i & 4095]);
            i += 1;
        });
    });
    g.bench_function("record_atomic", |b| {
        let h = AtomicHistogram::new();
        let mut i = 0usize;
        b.iter(|| {
            h.record(values[i & 4095]);
            i += 1;
        });
    });
    g.bench_function("value_at_quantile", |b| {
        let mut h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        b.iter(|| h.value_at_quantile(0.999));
    });
    g.bench_function("snapshot", |b| {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        b.iter_batched(|| (), |_| h.snapshot(), BatchSize::SmallInput);
    });
    g.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
