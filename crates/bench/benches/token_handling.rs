//! Criterion micro-benchmarks for token handling — the critical path of
//! the protocol. Compares the original configuration (all sends before
//! the token) to the accelerated one, across batch sizes.

use ar_core::wire::Message;
use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType, Token};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fresh_holder(cfg: ProtocolConfig, pending: usize) -> (Participant, Token) {
    let members: Vec<ParticipantId> = (0..8).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let mut p = Participant::new(members[1], cfg, ring_id, members).unwrap();
    for _ in 0..pending {
        p.submit(Bytes::from(vec![0u8; 1350]), ServiceType::Agreed)
            .unwrap();
    }
    let mut tok = Token::initial(ring_id, ar_core::Seq::ZERO);
    tok.round = ar_core::Round::new(1);
    (p, tok)
}

fn bench_token_handling(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_handling");
    for (name, cfg) in [
        ("original", ProtocolConfig::original()),
        ("accelerated", ProtocolConfig::accelerated()),
    ] {
        for batch in [1usize, 10, 30] {
            g.throughput(Throughput::Elements(batch as u64));
            g.bench_with_input(
                BenchmarkId::new(name, batch),
                &(cfg, batch),
                |b, &(cfg, batch)| {
                    b.iter_batched(
                        || fresh_holder(cfg, batch),
                        |(mut p, tok)| p.handle_message(Message::Token(tok)),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_idle_token(c: &mut Criterion) {
    // An idle hop: nothing to send, nothing to retransmit — the
    // steady-state cost that bounds idle rotation speed.
    c.bench_function("token_handling/idle_hop", |b| {
        b.iter_batched(
            || fresh_holder(ProtocolConfig::accelerated(), 0),
            |(mut p, tok)| p.handle_message(Message::Token(tok)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_token_handling, bench_idle_token);
criterion_main!(benches);
