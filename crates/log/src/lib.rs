//! # ar-log — durable segmented log for crash-safe Safe delivery
//!
//! The protocol's Safe service promises that a delivered message has
//! reached every ring member — but with nothing on disk, a restart
//! erases the strongest guarantee the stack offers. This crate is the
//! durability layer under `ar-net`'s runtime and `ar-daemon`: a
//! persistent segmented append-only log in the style of a Kafka
//! partition or an etcd WAL, sized for the ordered message stream of
//! one ring participant.
//!
//! * **Segments** — fixed-size files `seg-<first-lsn>.log`; the name
//!   doubles as the index (records in a segment start at its LSN).
//! * **Records** — CRC-32-framed ([`record`]): ordered deliveries,
//!   delivery cursors, and ring-identity snapshots.
//! * **Fsync policy** — [`FsyncPolicy`]: `Always`, `EveryN`,
//!   `IntervalMs` (caller-clocked, virtual-clock friendly), `Never`.
//! * **Recovery** — [`SegmentedLog::open`] scans the directory,
//!   truncates the torn tail at the first bad CRC (later segments are
//!   removed — nothing past a corruption resurrects), and hands back
//!   ring identity, delivery cursor, and the undelivered suffix.
//!
//! The crate is deliberately clock-free and dependency-free: time is
//! injected (`maybe_sync(now_nanos)`), matching the sans-io discipline
//! of `ar-core`, and everything down to the CRC table is implemented
//! here.
//!
//! ```
//! use ar_log::{FsyncPolicy, LogConfig, LogRecord, SegmentedLog};
//! use ar_core::{ParticipantId, RingId, Seq};
//!
//! let dir = std::env::temp_dir().join(format!("ar-log-doc-{}", std::process::id()));
//! let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
//! let (mut log, recovered) = SegmentedLog::open(cfg.clone()).unwrap();
//! assert_eq!(recovered.records, 0);
//! log.append(&LogRecord::Cursor {
//!     ring: RingId::new(ParticipantId::new(0), 1),
//!     seq: Seq::new(7),
//! }).unwrap();
//! drop(log); // crash
//! let (_log, recovered) = SegmentedLog::open(cfg).unwrap();
//! assert_eq!(recovered.cursor.unwrap().1, Seq::new(7));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod log;
pub mod record;

pub use crate::log::{
    read_log_dir, FsyncPolicy, LogConfig, LogStats, Lsn, Recovered, SegmentedLog,
};
pub use crate::record::{
    decode_record, encode_record, DeliveryRecord, LogRecord, RecordError, MAX_RECORD_PAYLOAD,
    RECORD_HEADER_LEN,
};

impl FsyncPolicy {
    /// Parses a policy from its CLI spelling: `always`, `never`,
    /// `every:<n>`, or `interval:<ms>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                if let Some(n) = s.strip_prefix("every:") {
                    n.parse().ok().map(FsyncPolicy::EveryN)
                } else if let Some(ms) = s.strip_prefix("interval:") {
                    ms.parse().ok().map(FsyncPolicy::IntervalMs)
                } else {
                    None
                }
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Never => write!(f, "never"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::IntervalMs(ms) => write!(f, "interval:{ms}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parse_round_trips() {
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(64),
            FsyncPolicy::IntervalMs(25),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("every:x"), None);
    }
}
