//! Log record framing: the on-disk unit of the segmented log.
//!
//! Every record is laid out as
//!
//! ```text
//! +-------+------+-------+----------+---------+- - - - - -+
//! | magic | kind | flags | len (u32)| crc(u32)|  payload  |
//! |  1 B  | 1 B  |  1 B  |   4 B    |   4 B   |  len B    |
//! +-------+------+-------+----------+---------+- - - - - -+
//! ```
//!
//! big-endian, `magic = 0xA7`. The CRC-32 covers kind, flags, the
//! length field, and the payload — everything except the magic byte and
//! the CRC itself — so a torn write, a bit flip, or a stale block
//! anywhere in the record is detected. Decoding stops at the **first**
//! bad record: a log tail past a CRC failure is unreachable by
//! construction (recovery truncates it), so a corrupt record can never
//! "resurrect" later data.

use bytes::{Buf, BufMut, Bytes};

use ar_core::{ParticipantId, RingId, Seq, ServiceType};

use crate::crc::Crc32;

/// First byte of every record.
pub const MAGIC: u8 = 0xA7;

/// Fixed bytes before the payload: magic + kind + flags + len + crc.
pub const RECORD_HEADER_LEN: usize = 1 + 1 + 1 + 4 + 4;

/// Largest admissible record payload. Matches the protocol's maximum
/// data payload with headroom for the record's own framing; anything
/// larger in a length field is corruption, not data.
pub const MAX_RECORD_PAYLOAD: usize = 128 * 1024;

/// Encoded size of a [`RingId`]: representative (u16) + ring_seq (u64).
const RING_ID_LEN: usize = 2 + 8;

/// Record kind tags (part of the on-disk format; append-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Delivery = 1,
    Cursor = 2,
    Ring = 3,
}

/// An ordered message as persisted at Agreed time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Configuration the message was ordered in.
    pub ring: RingId,
    /// Total-order position.
    pub seq: Seq,
    /// Initiating participant.
    pub pid: ParticipantId,
    /// Delivery service the message was sent with.
    pub service: ServiceType,
    /// Application payload.
    pub payload: Bytes,
}

/// One record of the durable log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// An ordered message, appended when the protocol orders it.
    Delivery(DeliveryRecord),
    /// Delivery cursor: everything up to `seq` in `ring` has been
    /// surfaced to the application. Redelivery after a crash starts
    /// just past the newest cursor.
    Cursor {
        /// Configuration the cursor refers to.
        ring: RingId,
        /// Surfaced-up-to watermark.
        seq: Seq,
    },
    /// Ring identity: the configuration this node last installed, so a
    /// restart can advertise the right ring sequence number when it
    /// re-joins.
    Ring {
        /// The installed configuration.
        ring: RingId,
        /// Its ordered member list.
        members: Vec<ParticipantId>,
    },
}

/// Why a record failed to decode. All variants mean the same thing to
/// recovery: the log ends here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than a record header remained.
    TruncatedHeader,
    /// The payload length field ran past the end of the buffer.
    TruncatedPayload {
        /// Bytes the length field promised.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The stored CRC did not match the computed one.
    BadCrc {
        /// Checksum stored in the record.
        stored: u32,
        /// Checksum computed over the record's bytes.
        computed: u32,
    },
    /// The length field exceeded [`MAX_RECORD_PAYLOAD`].
    LengthOutOfRange(usize),
    /// The kind byte named no known record kind (CRC matched, so this
    /// is a format version we do not understand).
    UnknownKind(u8),
    /// The payload was shorter or longer than its kind's layout.
    MalformedPayload(&'static str),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::TruncatedHeader => write!(f, "truncated record header"),
            RecordError::TruncatedPayload { needed, have } => {
                write!(f, "truncated payload: need {needed} bytes, have {have}")
            }
            RecordError::BadMagic(b) => write!(f, "bad record magic {b:#04x}"),
            RecordError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            RecordError::LengthOutOfRange(len) => write!(f, "record length {len} out of range"),
            RecordError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::MalformedPayload(what) => write!(f, "malformed record payload: {what}"),
        }
    }
}

impl std::error::Error for RecordError {}

fn put_ring(out: &mut Vec<u8>, ring: RingId) {
    out.put_u16(ring.representative().as_u16());
    out.put_u64(ring.ring_seq());
}

fn get_ring(buf: &mut &[u8]) -> Result<RingId, RecordError> {
    if buf.remaining() < RING_ID_LEN {
        return Err(RecordError::MalformedPayload("ring id"));
    }
    let rep = ParticipantId::new(buf.get_u16());
    let ring_seq = buf.get_u64();
    Ok(RingId::new(rep, ring_seq))
}

/// Appends the encoded form of `rec` to `out` and returns the number of
/// bytes written.
pub fn encode_record(rec: &LogRecord, out: &mut Vec<u8>) -> usize {
    let mut body = Vec::new();
    let kind = match rec {
        LogRecord::Delivery(d) => {
            put_ring(&mut body, d.ring);
            body.put_u64(d.seq.as_u64());
            body.put_u16(d.pid.as_u16());
            body.put_u8(d.service.as_u8());
            body.put_u32(u32::try_from(d.payload.len()).expect("payload fits u32"));
            body.extend_from_slice(&d.payload);
            Kind::Delivery
        }
        LogRecord::Cursor { ring, seq } => {
            put_ring(&mut body, *ring);
            body.put_u64(seq.as_u64());
            Kind::Cursor
        }
        LogRecord::Ring { ring, members } => {
            put_ring(&mut body, *ring);
            body.put_u16(u16::try_from(members.len()).expect("member count fits u16"));
            for m in members {
                body.put_u16(m.as_u16());
            }
            Kind::Ring
        }
    };
    debug_assert!(body.len() <= MAX_RECORD_PAYLOAD, "record body oversized");
    let len = u32::try_from(body.len()).expect("body fits u32");
    let flags = 0u8;
    let mut crc = Crc32::new();
    crc.update(&[kind as u8, flags]);
    crc.update(&len.to_be_bytes());
    crc.update(&body);
    let start = out.len();
    out.put_u8(MAGIC);
    out.put_u8(kind as u8);
    out.put_u8(flags);
    out.put_u32(len);
    out.put_u32(crc.finish());
    out.extend_from_slice(&body);
    out.len() - start
}

/// Decodes the record starting at the front of `buf`.
///
/// Returns the record and its total encoded length. An empty buffer is
/// the clean end of the log (`Ok(None)`); any other failure is a torn
/// or corrupt tail.
///
/// # Errors
///
/// Returns a [`RecordError`] describing the first framing violation.
pub fn decode_record(buf: &[u8]) -> Result<Option<(LogRecord, usize)>, RecordError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < RECORD_HEADER_LEN {
        return Err(RecordError::TruncatedHeader);
    }
    let mut head = buf;
    let magic = head.get_u8();
    if magic != MAGIC {
        return Err(RecordError::BadMagic(magic));
    }
    let kind = head.get_u8();
    let flags = head.get_u8();
    let len = head.get_u32() as usize;
    let stored = head.get_u32();
    if len > MAX_RECORD_PAYLOAD {
        return Err(RecordError::LengthOutOfRange(len));
    }
    if head.remaining() < len {
        return Err(RecordError::TruncatedPayload {
            needed: len,
            have: head.remaining(),
        });
    }
    let body = &head[..len];
    let mut crc = Crc32::new();
    crc.update(&[kind, flags]);
    crc.update(&(len as u32).to_be_bytes());
    crc.update(body);
    let computed = crc.finish();
    if computed != stored {
        return Err(RecordError::BadCrc { stored, computed });
    }
    let mut body_buf = body;
    let rec = match kind {
        k if k == Kind::Delivery as u8 => {
            let ring = get_ring(&mut body_buf)?;
            if body_buf.remaining() < 8 + 2 + 1 + 4 {
                return Err(RecordError::MalformedPayload("delivery header"));
            }
            let seq = Seq::new(body_buf.get_u64());
            let pid = ParticipantId::new(body_buf.get_u16());
            let service = ServiceType::from_u8(body_buf.get_u8())
                .ok_or(RecordError::MalformedPayload("service type"))?;
            let plen = body_buf.get_u32() as usize;
            if body_buf.remaining() != plen {
                return Err(RecordError::MalformedPayload("payload length"));
            }
            LogRecord::Delivery(DeliveryRecord {
                ring,
                seq,
                pid,
                service,
                payload: Bytes::copy_from_slice(body_buf),
            })
        }
        k if k == Kind::Cursor as u8 => {
            let ring = get_ring(&mut body_buf)?;
            if body_buf.remaining() != 8 {
                return Err(RecordError::MalformedPayload("cursor"));
            }
            LogRecord::Cursor {
                ring,
                seq: Seq::new(body_buf.get_u64()),
            }
        }
        k if k == Kind::Ring as u8 => {
            let ring = get_ring(&mut body_buf)?;
            if body_buf.remaining() < 2 {
                return Err(RecordError::MalformedPayload("member count"));
            }
            let n = body_buf.get_u16() as usize;
            if body_buf.remaining() != n * 2 {
                return Err(RecordError::MalformedPayload("member list"));
            }
            let members = (0..n)
                .map(|_| ParticipantId::new(body_buf.get_u16()))
                .collect();
            LogRecord::Ring { ring, members }
        }
        other => return Err(RecordError::UnknownKind(other)),
    };
    Ok(Some((rec, RECORD_HEADER_LEN + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delivery() -> LogRecord {
        LogRecord::Delivery(DeliveryRecord {
            ring: RingId::new(ParticipantId::new(3), 7),
            seq: Seq::new(42),
            pid: ParticipantId::new(1),
            service: ServiceType::Safe,
            payload: Bytes::from_static(b"state machine command"),
        })
    }

    #[test]
    fn round_trips_every_kind() {
        let records = [
            sample_delivery(),
            LogRecord::Cursor {
                ring: RingId::new(ParticipantId::new(0), 9),
                seq: Seq::new(1000),
            },
            LogRecord::Ring {
                ring: RingId::new(ParticipantId::new(0), 9),
                members: (0..5).map(ParticipantId::new).collect(),
            },
        ];
        for rec in &records {
            let mut buf = Vec::new();
            let n = encode_record(rec, &mut buf);
            assert_eq!(n, buf.len());
            let (decoded, used) = decode_record(&buf).unwrap().unwrap();
            assert_eq!(&decoded, rec);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn empty_buffer_is_clean_end() {
        assert_eq!(decode_record(&[]).unwrap(), None);
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut buf = Vec::new();
        encode_record(&sample_delivery(), &mut buf);
        for cut in 1..buf.len() {
            assert!(
                decode_record(&buf[..cut]).is_err(),
                "truncation at {cut} undetected"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        encode_record(&sample_delivery(), &mut buf);
        for bit in 0..buf.len() * 8 {
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_record(&buf).is_err(), "bit flip {bit} undetected");
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn oversized_length_field_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_record(&sample_delivery(), &mut buf);
        // Forge a huge length; the CRC never gets a chance to matter.
        buf[3..7].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            decode_record(&buf),
            Err(RecordError::LengthOutOfRange(_))
        ));
    }
}
