//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
//! checksum Kafka and etcd frame their log records with. Table-driven,
//! one byte per step; throughput is irrelevant next to the `write(2)`
//! the record is about to pay for.

/// Lookup table for the reflected IEEE polynomial, built at compile
/// time so the crate stays allocation- and dependency-free.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Running CRC-32 state, so a record's header and payload can be
/// checksummed without concatenating them first.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[usize::from((crc as u8) ^ b)];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.finish(), crc32(b"hello world"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = crc32(b"payload");
        let mut flipped = b"payload".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} undetected");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
