//! The segmented log proper: fixed-size segment files, an append path
//! with a configurable fsync policy, and torn-tail recovery.
//!
//! Segment files are named `seg-<first-lsn>.log` (zero-padded hex) so a
//! directory listing sorts them into log order and the file name itself
//! is the index entry: the records in `seg-%016x` start at that LSN.
//! Recovery scans segments in order, validating every record's CRC, and
//! truncates at the **first** failure — the remainder of that segment
//! and every later segment are discarded, so no record past a corruption
//! can ever resurrect.
//!
//! Like the protocol core, the log never reads a clock: the caller
//! passes `now_nanos` into [`SegmentedLog::maybe_sync`], which makes the
//! `IntervalMs` policy testable under a virtual clock.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ar_core::{ParticipantId, RingId, Seq};

use crate::record::{decode_record, encode_record, DeliveryRecord, LogRecord};

/// When appended records are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append. Slowest, zero-loss on power failure.
    Always,
    /// fsync once every `n` appends.
    EveryN(u32),
    /// fsync when [`SegmentedLog::maybe_sync`] observes this many
    /// milliseconds since the last sync (caller-clocked).
    IntervalMs(u64),
    /// Never fsync (the OS flushes whenever it likes). Survives process
    /// crashes whose writes reached the kernel, not power failures.
    Never,
}

/// Segmented-log tuning.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// Durability policy for appended records.
    pub fsync: FsyncPolicy,
}

impl LogConfig {
    /// Defaults: 4 MiB segments, fsync every 64 appends.
    pub fn new(dir: impl Into<PathBuf>) -> LogConfig {
        LogConfig {
            dir: dir.into(),
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(64),
        }
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> LogConfig {
        self.fsync = fsync;
        self
    }

    /// Sets the segment roll size.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> LogConfig {
        self.segment_bytes = bytes.max(1);
        self
    }
}

/// Log sequence number: the 1-based ordinal of a record in the log.
/// `Lsn(0)` means "nothing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// Counters accumulated by one log handle (recovery numbers included).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// fsync(2) calls issued.
    pub syncs: u64,
    /// Segment files created.
    pub segments_created: u64,
    /// Bytes handed to the OS.
    pub bytes_written: u64,
    /// Valid records found on disk at open.
    pub recovered_records: u64,
    /// Bytes discarded from the torn tail at open (first bad record to
    /// end of its segment).
    pub torn_bytes_truncated: u64,
    /// Whole segments discarded at open because they followed a torn
    /// record.
    pub segments_removed: u64,
}

/// Everything recovery learned from the directory at open.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The newest ring-identity record, if any.
    pub ring: Option<(RingId, Vec<ParticipantId>)>,
    /// The newest delivery cursor, if any.
    pub cursor: Option<(RingId, Seq)>,
    /// Every valid delivery record, in log order, paired with its
    /// position (index into the record stream).
    pub deliveries: Vec<(u64, DeliveryRecord)>,
    /// Record-stream position of the newest cursor.
    cursor_pos: Option<u64>,
    /// Total valid records recovered.
    pub records: u64,
    /// Bytes truncated from the torn tail.
    pub torn_bytes: u64,
    /// Segments removed past the torn tail.
    pub segments_removed: u64,
}

impl Recovered {
    /// The suffix of deliveries the application had **not** surfaced
    /// before the crash: everything past the newest cursor, plus
    /// same-ring records at earlier positions whose sequence number
    /// exceeds the cursor (Safe deliveries that were appended while
    /// awaiting stability).
    pub fn undelivered(&self) -> Vec<&DeliveryRecord> {
        let Some((cring, cseq)) = self.cursor else {
            return self.deliveries.iter().map(|(_, d)| d).collect();
        };
        let cpos = self.cursor_pos.unwrap_or(0);
        self.deliveries
            .iter()
            .filter(|(pos, d)| *pos > cpos || (d.ring == cring && d.seq > cseq))
            .map(|(_, d)| d)
            .collect()
    }
}

fn segment_path(dir: &Path, start: Lsn) -> PathBuf {
    dir.join(format!("seg-{:016x}.log", start.0))
}

fn parse_segment_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(Lsn)
}

/// Result of scanning one segment file's bytes.
struct SegmentScan {
    /// Byte offset of the end of the last valid record.
    valid_len: u64,
    /// Records decoded.
    records: Vec<LogRecord>,
    /// Whether the scan hit a framing error (torn tail).
    torn: bool,
}

fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut offset = 0usize;
    let mut records = Vec::new();
    let mut torn = false;
    loop {
        match decode_record(&bytes[offset..]) {
            Ok(Some((rec, used))) => {
                records.push(rec);
                offset += used;
            }
            Ok(None) => break,
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    SegmentScan {
        valid_len: offset as u64,
        records,
        torn,
    }
}

/// A persistent, segmented, CRC-framed append-only log.
#[derive(Debug)]
pub struct SegmentedLog {
    cfg: LogConfig,
    /// The active (last) segment file, positioned at its end.
    file: File,
    /// Bytes of valid records already in the active segment.
    seg_len: u64,
    /// First LSN of the active segment (names the file).
    seg_start: Lsn,
    /// Records encoded but not yet written to the OS. Lost if the
    /// process dies before a flush — exactly a kill -9's blast radius
    /// for user-space buffers.
    buf: Vec<u8>,
    /// Total records appended (next LSN - 1).
    appended: u64,
    /// Records known durable (flushed + fsynced).
    durable: u64,
    /// Appends since the last sync (for `EveryN`).
    unsynced: u32,
    /// Caller-clock timestamp of the last sync (for `IntervalMs`).
    last_sync_nanos: Option<u64>,
    stats: LogStats,
}

impl SegmentedLog {
    /// Opens (or creates) the log in `cfg.dir`, recovering whatever
    /// valid prefix is on disk. The torn tail — everything from the
    /// first CRC failure on — is truncated and later segments removed,
    /// so the append position is the end of the valid prefix.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading, truncating, or creating
    /// files.
    pub fn open(cfg: LogConfig) -> io::Result<(SegmentedLog, Recovered)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut segments: Vec<(Lsn, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(start) = name.to_str().and_then(parse_segment_name) {
                segments.push((start, entry.path()));
            }
        }
        segments.sort();

        let mut recovered = Recovered::default();
        let mut pos = 0u64; // record-stream position
        let mut active: Option<(Lsn, PathBuf, u64)> = None;
        let mut truncate_from: Option<usize> = None;
        for (i, (start, path)) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scan = scan_segment(&bytes);
            for rec in scan.records {
                pos += 1;
                recovered.records += 1;
                match rec {
                    LogRecord::Delivery(d) => recovered.deliveries.push((pos, d)),
                    LogRecord::Cursor { ring, seq } => {
                        recovered.cursor = Some((ring, seq));
                        recovered.cursor_pos = Some(pos);
                    }
                    LogRecord::Ring { ring, members } => {
                        recovered.ring = Some((ring, members));
                    }
                }
            }
            if scan.torn {
                recovered.torn_bytes += bytes.len() as u64 - scan.valid_len;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_len)?;
                f.sync_all()?;
                active = Some((*start, path.clone(), scan.valid_len));
                truncate_from = Some(i + 1);
                break;
            }
            active = Some((*start, path.clone(), scan.valid_len));
        }
        if let Some(from) = truncate_from {
            for (_, path) in &segments[from..] {
                recovered.torn_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(path)?;
                recovered.segments_removed += 1;
            }
        }

        let appended = recovered.records;
        let (seg_start, path, seg_len, created) = match active {
            Some((start, path, len)) => (start, path, len, false),
            None => {
                let start = Lsn(appended + 1);
                (start, segment_path(&cfg.dir, start), 0, true)
            }
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // recovery already trimmed the torn tail
            .open(&path)?;
        file.seek(SeekFrom::Start(seg_len))?;
        let stats = LogStats {
            recovered_records: recovered.records,
            torn_bytes_truncated: recovered.torn_bytes,
            segments_removed: recovered.segments_removed,
            segments_created: u64::from(created),
            ..LogStats::default()
        };
        Ok((
            SegmentedLog {
                cfg,
                file,
                seg_len,
                seg_start,
                buf: Vec::new(),
                appended,
                durable: appended,
                unsynced: 0,
                last_sync_nanos: None,
                stats,
            },
            recovered,
        ))
    }

    /// Appends one record, applying the fsync policy, and returns its
    /// LSN. The record may still be buffered in user space afterwards
    /// (policy permitting); it is only guaranteed on disk once
    /// [`durable_lsn`](Self::durable_lsn) reaches the returned LSN.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or syncing.
    pub fn append(&mut self, rec: &LogRecord) -> io::Result<Lsn> {
        let before = self.buf.len();
        let len = encode_record(rec, &mut self.buf) as u64;
        // Roll before the record would overflow the segment (never
        // splitting a record across files). The freshly encoded bytes
        // move to the new segment with the flush below.
        if self.seg_len + self.buf.len() as u64 > self.cfg.segment_bytes && self.seg_len > 0 {
            let pending = self.buf.split_off(before);
            let head = std::mem::take(&mut self.buf);
            self.write_out(&head)?;
            self.roll_segment()?;
            self.buf = pending;
        }
        let _ = len;
        self.appended += 1;
        self.stats.appends += 1;
        self.unsynced += 1;
        let lsn = Lsn(self.appended);
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::IntervalMs(_) | FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// For the `IntervalMs` policy: syncs if at least the configured
    /// interval has passed since the last sync (caller-provided
    /// monotonic nanoseconds). Returns whether a sync happened.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from syncing.
    pub fn maybe_sync(&mut self, now_nanos: u64) -> io::Result<bool> {
        let FsyncPolicy::IntervalMs(ms) = self.cfg.fsync else {
            return Ok(false);
        };
        match self.last_sync_nanos {
            None => {
                self.last_sync_nanos = Some(now_nanos);
                Ok(false)
            }
            Some(last) => {
                if now_nanos.saturating_sub(last) >= ms.saturating_mul(1_000_000)
                    && self.durable < self.appended
                {
                    self.last_sync_nanos = Some(now_nanos);
                    self.sync()?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Flushes the user-space buffer to the OS **and** fsyncs, making
    /// every appended record durable.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        let head = std::mem::take(&mut self.buf);
        self.write_out(&head)?;
        self.file.sync_data()?;
        self.stats.syncs += 1;
        self.durable = self.appended;
        self.unsynced = 0;
        Ok(())
    }

    /// Flushes the user-space buffer to the OS without fsync. Buffered
    /// records then survive a process kill (the kernel has them) but
    /// not a power failure.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing.
    pub fn flush(&mut self) -> io::Result<()> {
        let head = std::mem::take(&mut self.buf);
        self.write_out(&head)
    }

    fn write_out(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        self.file.write_all(bytes)?;
        self.seg_len += bytes.len() as u64;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    fn roll_segment(&mut self) -> io::Result<()> {
        // The old segment's contents must be safely down before the log
        // continues in a new file, or recovery could see a gap.
        self.file.sync_data()?;
        self.stats.syncs += 1;
        self.seg_start = Lsn(self.appended + 1);
        self.seg_len = 0;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(segment_path(&self.cfg.dir, self.seg_start))?;
        self.stats.segments_created += 1;
        Ok(())
    }

    /// LSN of the last appended record (`Lsn(0)` if none).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.appended)
    }

    /// Highest LSN known durable: flushed and fsynced.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable)
    }

    /// Records appended but not yet guaranteed on disk.
    pub fn unsynced_records(&self) -> u64 {
        self.appended - self.durable
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.cfg.fsync
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }
}

/// Read-only scan of a log directory: the valid record prefix, with no
/// repair (nothing is truncated or removed). This is what the chaos
/// oracle uses to inspect a crashed node's disk.
///
/// # Errors
///
/// Returns any I/O error from reading the directory or its segments.
pub fn read_log_dir(dir: &Path) -> io::Result<Recovered> {
    let mut segments: Vec<(Lsn, PathBuf)> = Vec::new();
    if !dir.exists() {
        return Ok(Recovered::default());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start, entry.path()));
        }
    }
    segments.sort();
    let mut recovered = Recovered::default();
    let mut pos = 0u64;
    for (i, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let scan = scan_segment(&bytes);
        for rec in scan.records {
            pos += 1;
            recovered.records += 1;
            match rec {
                LogRecord::Delivery(d) => recovered.deliveries.push((pos, d)),
                LogRecord::Cursor { ring, seq } => {
                    recovered.cursor = Some((ring, seq));
                    recovered.cursor_pos = Some(pos);
                }
                LogRecord::Ring { ring, members } => {
                    recovered.ring = Some((ring, members));
                }
            }
        }
        if scan.torn {
            recovered.torn_bytes += bytes.len() as u64 - scan.valid_len;
            for (_, later) in &segments[i + 1..] {
                recovered.torn_bytes += std::fs::metadata(later).map(|m| m.len()).unwrap_or(0);
                recovered.segments_removed += 1;
            }
            break;
        }
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::ServiceType;
    use bytes::Bytes;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ar-log-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn delivery(seq: u64, payload: &str) -> LogRecord {
        LogRecord::Delivery(DeliveryRecord {
            ring: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(seq),
            pid: ParticipantId::new(0),
            service: ServiceType::Safe,
            payload: Bytes::copy_from_slice(payload.as_bytes()),
        })
    }

    #[test]
    fn append_sync_reopen_recovers_everything() {
        let dir = tmp("roundtrip");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let (mut log, rec0) = SegmentedLog::open(cfg.clone()).unwrap();
        assert_eq!(rec0.records, 0);
        for i in 1..=10u64 {
            let lsn = log.append(&delivery(i, &format!("m{i}"))).unwrap();
            assert_eq!(lsn, Lsn(i));
            assert_eq!(log.durable_lsn(), Lsn(i), "Always syncs per append");
        }
        drop(log);
        let (log, rec) = SegmentedLog::open(cfg).unwrap();
        assert_eq!(rec.records, 10);
        assert_eq!(rec.deliveries.len(), 10);
        assert_eq!(log.last_lsn(), Lsn(10));
        assert_eq!(rec.undelivered().len(), 10, "no cursor yet");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_bounds_redelivery() {
        let dir = tmp("cursor");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let ring = RingId::new(ParticipantId::new(0), 1);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        for i in 1..=5u64 {
            log.append(&delivery(i, "x")).unwrap();
        }
        log.append(&LogRecord::Cursor {
            ring,
            seq: Seq::new(3),
        })
        .unwrap();
        drop(log);
        let (_, rec) = SegmentedLog::open(cfg).unwrap();
        let undelivered: Vec<u64> = rec.undelivered().iter().map(|d| d.seq.as_u64()).collect();
        assert_eq!(undelivered, vec![4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_buffer_is_lost_flushed_survives() {
        let dir = tmp("buffer");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        log.append(&delivery(1, "durable")).unwrap();
        log.flush().unwrap();
        log.append(&delivery(2, "buffered")).unwrap();
        assert_eq!(
            log.unsynced_records(),
            2,
            "Never policy leaves both unsynced"
        );
        drop(log); // kill -9: the user-space buffer evaporates
        let (_, rec) = SegmentedLog::open(cfg).unwrap();
        assert_eq!(rec.records, 1, "only the flushed record survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_syncs_in_batches() {
        let dir = tmp("everyn");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::EveryN(4));
        let (mut log, _) = SegmentedLog::open(cfg).unwrap();
        for i in 1..=3u64 {
            log.append(&delivery(i, "x")).unwrap();
        }
        assert_eq!(log.durable_lsn(), Lsn(0));
        log.append(&delivery(4, "x")).unwrap();
        assert_eq!(log.durable_lsn(), Lsn(4), "4th append syncs the batch");
        std::fs::remove_dir_all(log.dir()).unwrap();
    }

    #[test]
    fn interval_policy_is_caller_clocked() {
        let dir = tmp("interval");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::IntervalMs(10));
        let (mut log, _) = SegmentedLog::open(cfg).unwrap();
        log.append(&delivery(1, "x")).unwrap();
        assert!(
            !log.maybe_sync(0).unwrap(),
            "first call only arms the clock"
        );
        assert!(
            !log.maybe_sync(9_999_999).unwrap(),
            "interval not yet elapsed"
        );
        assert!(log.maybe_sync(10_000_000).unwrap(), "interval elapsed");
        assert_eq!(log.durable_lsn(), Lsn(1));
        assert!(!log.maybe_sync(20_000_000).unwrap(), "nothing new to sync");
        std::fs::remove_dir_all(log.dir()).unwrap();
    }

    #[test]
    fn segments_roll_and_recover_across_files() {
        let dir = tmp("roll");
        let cfg = LogConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_segment_bytes(256);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        for i in 1..=50u64 {
            log.append(&delivery(i, "roll-roll-roll")).unwrap();
        }
        assert!(log.stats().segments_created >= 2, "{:?}", log.stats());
        drop(log);
        let (_, rec) = SegmentedLog::open(cfg).unwrap();
        assert_eq!(rec.records, 50);
        let seqs: Vec<u64> = rec.deliveries.iter().map(|(_, d)| d.seq.as_u64()).collect();
        assert_eq!(seqs, (1..=50).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_and_drops_later_segments() {
        let dir = tmp("torn");
        let cfg = LogConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_segment_bytes(256);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        for i in 1..=50u64 {
            log.append(&delivery(i, "roll-roll-roll")).unwrap();
        }
        drop(log);
        // Corrupt one byte in the middle of the FIRST segment: the
        // valid prefix ends there, and every later segment must go.
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        assert!(
            segs.len() >= 3,
            "need several segments, have {}",
            segs.len()
        );
        let mut bytes = std::fs::read(&segs[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&segs[0], &bytes).unwrap();

        let (log, rec) = SegmentedLog::open(cfg.clone()).unwrap();
        assert!(rec.records < 50, "torn tail recovered fewer records");
        assert!(rec.torn_bytes > 0);
        assert_eq!(rec.segments_removed as usize, segs.len() - 1);
        // Sequence numbers form a prefix: nothing past the corruption
        // resurrected.
        let seqs: Vec<u64> = rec.deliveries.iter().map(|(_, d)| d.seq.as_u64()).collect();
        assert_eq!(seqs, (1..=rec.records).collect::<Vec<_>>());
        drop(log);
        // The repair is itself durable: a second open sees a clean log.
        let (_, rec2) = SegmentedLog::open(cfg).unwrap();
        assert_eq!(rec2.records, rec.records);
        assert_eq!(rec2.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_continue_after_torn_tail_recovery() {
        let dir = tmp("continue");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        for i in 1..=5u64 {
            log.append(&delivery(i, "x")).unwrap();
        }
        drop(log);
        // Tear the tail: chop the last 3 bytes.
        let seg = segment_path(&dir, Lsn(1));
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (mut log, rec) = SegmentedLog::open(cfg.clone()).unwrap();
        assert_eq!(rec.records, 4, "last record torn away");
        log.append(&delivery(5, "rewritten")).unwrap();
        drop(log);
        let (_, rec2) = SegmentedLog::open(cfg).unwrap();
        assert_eq!(rec2.records, 5);
        assert_eq!(
            rec2.deliveries.last().unwrap().1.payload,
            Bytes::from_static(b"rewritten")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_log_dir_is_side_effect_free() {
        let dir = tmp("readonly");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let (mut log, _) = SegmentedLog::open(cfg).unwrap();
        for i in 1..=5u64 {
            log.append(&delivery(i, "x")).unwrap();
        }
        drop(log);
        let seg = segment_path(&dir, Lsn(1));
        let before = std::fs::metadata(&seg).unwrap().len();
        // Tear the tail; the read-only scan must report it but not fix it.
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(before - 2).unwrap();
        drop(f);
        let rec = read_log_dir(&dir).unwrap();
        assert_eq!(rec.records, 4);
        assert!(rec.torn_bytes > 0);
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), before - 2);
        assert_eq!(
            read_log_dir(&tmp("missing-nonexistent")).unwrap().records,
            0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ring_record_recovers_latest_identity() {
        let dir = tmp("ring");
        let cfg = LogConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        let r1 = RingId::new(ParticipantId::new(0), 1);
        let r2 = RingId::new(ParticipantId::new(0), 4);
        log.append(&LogRecord::Ring {
            ring: r1,
            members: vec![ParticipantId::new(0)],
        })
        .unwrap();
        log.append(&LogRecord::Ring {
            ring: r2,
            members: (0..3).map(ParticipantId::new).collect(),
        })
        .unwrap();
        drop(log);
        let (_, rec) = SegmentedLog::open(cfg).unwrap();
        let (ring, members) = rec.ring.unwrap();
        assert_eq!(ring, r2);
        assert_eq!(members.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
