//! Measurement: latency statistics and the per-run report.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Online latency recorder. Samples are kept (in nanoseconds) so exact
/// percentiles can be computed at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sum: u128,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sum += u128::from(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Computes the summary statistics (sorts the samples).
    pub fn summarize(&mut self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let pick = |q: f64| -> SimDuration {
            let idx = ((n as f64 - 1.0) * q) as usize;
            SimDuration::from_nanos(self.samples[idx.min(n - 1)])
        };
        LatencySummary {
            count: n as u64,
            mean: SimDuration::from_nanos((self.sum / n as u128) as u64),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: SimDuration::from_nanos(*self.samples.last().expect("non-empty")),
        }
    }
}

/// Summary statistics over recorded latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

/// The result of one simulated benchmark run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Offered aggregate application load, payload bits per second
    /// (`u64::MAX` rate runs report the configured value as 0).
    pub offered_bps: u64,
    /// Achieved aggregate goodput: unique payload bits delivered per
    /// participant per second of measurement time (averaged over
    /// participants).
    pub achieved_bps: f64,
    /// Delivery latency (submission to delivery, across all
    /// participants and messages in the measurement window).
    pub latency: LatencySummary,
    /// Messages delivered per participant (average).
    pub delivered_per_participant: f64,
    /// Token rotations completed during measurement.
    pub token_rotations: u64,
    /// Frames dropped at switch output ports.
    pub switch_drops: u64,
    /// Datagrams dropped at full host sockets.
    pub socket_drops: u64,
    /// Retransmissions multicast (all participants).
    pub retransmissions: u64,
    /// Application submissions rejected by backpressure.
    pub submit_rejected: u64,
    /// Total simulated events processed (sanity/performance metric).
    pub events_processed: u64,
}

impl SimReport {
    /// Achieved goodput in megabits per second.
    pub fn achieved_mbps(&self) -> f64 {
        self.achieved_bps / 1e6
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean.as_micros_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        let s = r.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics_are_exact_on_small_sets() {
        let mut r = LatencyRecorder::new();
        for us in [1u64, 2, 3, 4, 5] {
            r.record(SimDuration::from_micros(us));
        }
        let s = r.summarize();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, SimDuration::from_micros(3));
        assert_eq!(s.p50, SimDuration::from_micros(3));
        assert_eq!(s.max, SimDuration::from_micros(5));
    }

    #[test]
    fn percentiles_on_larger_sets() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_nanos(i));
        }
        let s = r.summarize();
        assert_eq!(s.p50.as_nanos(), 50);
        assert_eq!(s.p90.as_nanos(), 90);
        assert_eq!(s.p99.as_nanos(), 99);
        assert_eq!(s.max.as_nanos(), 100);
    }

    #[test]
    fn report_convenience_units() {
        let report = SimReport {
            achieved_bps: 920e6,
            latency: LatencySummary {
                mean: SimDuration::from_micros(720),
                ..LatencySummary::default()
            },
            ..SimReport::default()
        };
        assert!((report.achieved_mbps() - 920.0).abs() < 1e-9);
        assert!((report.mean_latency_us() - 720.0).abs() < 1e-9);
    }
}
