//! Measurement: latency statistics and the per-run report.

use ar_telemetry::LogLinearHistogram;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Online latency recorder backed by a bounded log-linear histogram
/// (`ar-telemetry`), so memory stays constant no matter how long a run
/// is. Sub-microsecond samples are exact; larger ones quantize to at
/// most ~0.2% relative error. For measurements that need bit-exact
/// percentiles (e.g. cross-checking the histogram itself), enable
/// [`with_exact_samples`](LatencyRecorder::with_exact_samples), which
/// additionally retains every sample in a `Vec` as the seed
/// implementation did.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    hist: LogLinearHistogram,
    /// `Some` when exact mode is on.
    samples: Option<Vec<u64>>,
}

impl LatencyRecorder {
    /// Creates an empty histogram-backed recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Creates a recorder that also retains every raw sample for exact
    /// percentiles, at the cost of unbounded memory.
    pub fn with_exact_samples() -> LatencyRecorder {
        LatencyRecorder {
            hist: LogLinearHistogram::new(),
            samples: Some(Vec::new()),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.hist.record(d.as_nanos());
        if let Some(samples) = &mut self.samples {
            samples.push(d.as_nanos());
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Merges another recorder's samples into this one (histogram mode
    /// merges exactly; exact-sample retention requires both sides to
    /// have it enabled).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.hist.merge(&other.hist);
        if let (Some(mine), Some(theirs)) = (&mut self.samples, &other.samples) {
            mine.extend_from_slice(theirs);
        }
    }

    /// Read access to the underlying histogram.
    pub fn histogram(&self) -> &LogLinearHistogram {
        &self.hist
    }

    /// Computes the summary statistics. Non-destructive; callable at
    /// any point during a run.
    pub fn summarize(&self) -> LatencySummary {
        if self.hist.is_empty() {
            return LatencySummary::default();
        }
        let n = self.hist.count();
        let pick: Box<dyn Fn(f64) -> SimDuration> = match &self.samples {
            Some(samples) => {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                Box::new(move |q: f64| {
                    let idx = ((sorted.len() as f64 - 1.0) * q) as usize;
                    SimDuration::from_nanos(sorted[idx.min(sorted.len() - 1)])
                })
            }
            None => Box::new(|q: f64| SimDuration::from_nanos(self.hist.value_at_quantile(q))),
        };
        LatencySummary {
            count: n,
            mean: SimDuration::from_nanos((self.hist.sum() / u128::from(n)) as u64),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            p999: pick(0.999),
            max: SimDuration::from_nanos(self.hist.max()),
        }
    }
}

/// Summary statistics over recorded latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

/// The result of one simulated benchmark run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Offered aggregate application load, payload bits per second
    /// (`u64::MAX` rate runs report the configured value as 0).
    pub offered_bps: u64,
    /// Achieved aggregate goodput: unique payload bits delivered per
    /// participant per second of measurement time (averaged over
    /// participants).
    pub achieved_bps: f64,
    /// Delivery latency (submission to delivery, across all
    /// participants and messages in the measurement window).
    pub latency: LatencySummary,
    /// Messages delivered per participant (average).
    pub delivered_per_participant: f64,
    /// Token rotations completed during measurement.
    pub token_rotations: u64,
    /// Frames dropped at switch output ports.
    pub switch_drops: u64,
    /// Datagrams dropped at full host sockets.
    pub socket_drops: u64,
    /// Retransmissions multicast (all participants).
    pub retransmissions: u64,
    /// Application submissions rejected by backpressure.
    pub submit_rejected: u64,
    /// Total simulated events processed (sanity/performance metric).
    pub events_processed: u64,
    /// Length of the measurement window in simulated nanoseconds
    /// (`token_rotations / measurement time` gives the rotation rate).
    pub measurement_nanos: u64,
}

impl SimReport {
    /// Achieved goodput in megabits per second.
    pub fn achieved_mbps(&self) -> f64 {
        self.achieved_bps / 1e6
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean.as_micros_f64()
    }

    /// Mean token rotation time in microseconds (0 if no rotations
    /// completed).
    pub fn rotation_us(&self) -> f64 {
        if self.token_rotations == 0 {
            0.0
        } else {
            self.measurement_nanos as f64 / self.token_rotations as f64 / 1_000.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        let s = r.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics_are_exact_on_small_sets() {
        let mut r = LatencyRecorder::new();
        for us in [1u64, 2, 3, 4, 5] {
            r.record(SimDuration::from_micros(us));
        }
        let s = r.summarize();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, SimDuration::from_micros(3));
        assert_eq!(s.p50, SimDuration::from_micros(3));
        assert_eq!(s.max, SimDuration::from_micros(5));
    }

    #[test]
    fn percentiles_on_larger_sets() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_nanos(i));
        }
        let s = r.summarize();
        assert_eq!(s.p50.as_nanos(), 50);
        assert_eq!(s.p90.as_nanos(), 90);
        assert_eq!(s.p99.as_nanos(), 99);
        assert_eq!(s.p999.as_nanos(), 100);
        assert_eq!(s.max.as_nanos(), 100);
    }

    #[test]
    fn summarize_is_non_destructive() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_nanos(10));
        let first = r.summarize();
        r.record(SimDuration::from_nanos(20));
        let second = r.summarize();
        assert_eq!(first.count, 1);
        assert_eq!(second.count, 2);
        assert_eq!(second.max.as_nanos(), 20);
    }

    #[test]
    fn exact_mode_matches_histogram_on_sub_microsecond_samples() {
        let mut exact = LatencyRecorder::with_exact_samples();
        let mut hist = LatencyRecorder::new();
        for i in (1..=500u64).rev() {
            exact.record(SimDuration::from_nanos(i));
            hist.record(SimDuration::from_nanos(i));
        }
        let a = exact.summarize();
        let b = hist.summarize();
        // Values below 1024 ns sit in exact histogram buckets, so the
        // two modes agree bit-for-bit.
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn merge_combines_recorders() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        for i in 1..=50u64 {
            a.record(SimDuration::from_nanos(i));
        }
        for i in 51..=100u64 {
            b.record(SimDuration::from_nanos(i));
        }
        a.merge(&b);
        let s = a.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50.as_nanos(), 50);
        assert_eq!(s.max.as_nanos(), 100);
    }

    #[test]
    fn report_convenience_units() {
        let report = SimReport {
            achieved_bps: 920e6,
            latency: LatencySummary {
                mean: SimDuration::from_micros(720),
                ..LatencySummary::default()
            },
            ..SimReport::default()
        };
        assert!((report.achieved_mbps() - 920.0).abs() < 1e-9);
        assert!((report.mean_latency_us() - 720.0).abs() < 1e-9);
    }
}
