//! Workload generation: the benchmark clients of the paper's
//! evaluation.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// How application messages are injected at each host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadMode {
    /// Open-loop fixed rate: each host's sending client injects
    /// messages at `aggregate_bps / n_hosts` payload bits per second,
    /// matching the paper's benchmark clients. A small deterministic
    /// jitter decorrelates the hosts' phases.
    OpenLoop {
        /// Aggregate offered load across all hosts, in payload bits per
        /// second.
        aggregate_bps: u64,
    },
    /// Saturation: every host keeps its pending queue topped up so the
    /// protocol runs at its maximum throughput (used for the paper's
    /// maximum-throughput numbers).
    Saturating,
}

impl LoadMode {
    /// Per-host injection interval for one message of `payload_bytes`,
    /// or `None` when saturating.
    pub fn interval(&self, n_hosts: usize, payload_bytes: usize) -> Option<SimDuration> {
        match *self {
            LoadMode::OpenLoop { aggregate_bps } => {
                assert!(aggregate_bps > 0, "offered load must be positive");
                let per_host = aggregate_bps / n_hosts as u64;
                let bits = payload_bytes as u128 * 8;
                let ns = (bits * 1_000_000_000) / per_host.max(1) as u128;
                Some(SimDuration::from_nanos(ns as u64))
            }
            LoadMode::Saturating => None,
        }
    }

    /// The offered load to report (zero when saturating).
    pub fn offered_bps(&self) -> u64 {
        match *self {
            LoadMode::OpenLoop { aggregate_bps } => aggregate_bps,
            LoadMode::Saturating => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_interval_matches_rate() {
        // 800 Mbps aggregate over 8 hosts = 100 Mbps per host;
        // 1350-byte payload = 10800 bits → 108 microseconds.
        let m = LoadMode::OpenLoop {
            aggregate_bps: 800_000_000,
        };
        let ivl = m.interval(8, 1350).unwrap();
        assert_eq!(ivl.as_nanos(), 108_000);
    }

    #[test]
    fn saturating_has_no_interval() {
        assert_eq!(LoadMode::Saturating.interval(8, 1350), None);
        assert_eq!(LoadMode::Saturating.offered_bps(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LoadMode::OpenLoop { aggregate_bps: 0 }.interval(8, 1350);
    }
}
