//! Time-series instrumentation: per-interval delivery counts, for
//! plotting throughput over time (e.g. across a membership change).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Accumulates deliveries into fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl ThroughputSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> ThroughputSeries {
        assert!(bucket > SimDuration::ZERO, "bucket must be positive");
        ThroughputSeries {
            bucket,
            counts: Vec::new(),
        }
    }

    /// Records one delivery at `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// The per-bucket delivery counts (index 0 = simulation start).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The series as (bucket start time, deliveries/second) points,
    /// with `payload_bits` per delivery converted to bits/second.
    pub fn points_bps(&self, payload_bits: u64) -> Vec<(SimTime, f64)> {
        let secs = self.bucket.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    SimTime::from_nanos(i as u64 * self.bucket.as_nanos()),
                    c as f64 * payload_bits as f64 / secs,
                )
            })
            .collect()
    }
}

/// Summary of a disruption visible in a throughput series: the gap
/// (consecutive empty-ish buckets) and the recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disruption {
    /// First bucket index whose count fell below the threshold.
    pub gap_start: usize,
    /// Number of consecutive below-threshold buckets.
    pub gap_buckets: usize,
    /// Mean bucket count before the gap.
    pub before_mean: f64,
    /// Mean bucket count after the gap.
    pub after_mean: f64,
}

/// Finds the first throughput gap: a run of buckets below
/// `threshold_fraction` of the pre-gap mean. Returns `None` if the
/// series never dips.
pub fn find_disruption(counts: &[u64], threshold_fraction: f64) -> Option<Disruption> {
    if counts.len() < 4 {
        return None;
    }
    // Establish the baseline from the prefix before any dip.
    let mut gap_start = None;
    let mut prefix_sum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if i >= 2 {
            let mean = prefix_sum as f64 / i as f64;
            if mean > 0.0 && (c as f64) < mean * threshold_fraction {
                gap_start = Some((i, mean));
                break;
            }
        }
        prefix_sum += c;
    }
    let (start, before_mean) = gap_start?;
    let mut end = start;
    while end < counts.len() && (counts[end] as f64) < before_mean * threshold_fraction {
        end += 1;
    }
    let after: &[u64] = &counts[end..];
    let after_mean = if after.is_empty() {
        0.0
    } else {
        after.iter().sum::<u64>() as f64 / after.len() as f64
    };
    Some(Disruption {
        gap_start: start,
        gap_buckets: end - start,
        before_mean,
        after_mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut s = ThroughputSeries::new(SimDuration::from_millis(10));
        s.record(SimTime::from_nanos(1_000_000)); // bucket 0
        s.record(SimTime::from_nanos(9_999_999)); // bucket 0
        s.record(SimTime::from_nanos(10_000_000)); // bucket 1
        s.record(SimTime::from_nanos(35_000_000)); // bucket 3
        assert_eq!(s.counts(), &[2, 1, 0, 1]);
    }

    #[test]
    fn points_convert_to_bps() {
        let mut s = ThroughputSeries::new(SimDuration::from_millis(100));
        for _ in 0..10 {
            s.record(SimTime::from_nanos(50_000_000));
        }
        let pts = s.points_bps(10_800); // 1350-byte payloads
        assert_eq!(pts.len(), 1);
        // 10 msgs / 0.1 s * 10800 bits = 1.08 Mbps.
        assert!((pts[0].1 - 1_080_000.0).abs() < 1.0);
    }

    #[test]
    fn disruption_detection() {
        // Steady 100/bucket, a 3-bucket outage, then recovery at 80.
        let counts = [100u64, 100, 100, 100, 2, 0, 1, 80, 80, 80];
        let d = find_disruption(&counts, 0.5).expect("finds the gap");
        assert_eq!(d.gap_start, 4);
        assert_eq!(d.gap_buckets, 3);
        assert!((d.before_mean - 100.0).abs() < 1.0);
        assert!((d.after_mean - 80.0).abs() < 1.0);
    }

    #[test]
    fn no_disruption_in_steady_series() {
        let counts = [50u64; 20];
        assert_eq!(find_disruption(&counts, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "bucket must be positive")]
    fn zero_bucket_rejected() {
        let _ = ThroughputSeries::new(SimDuration::ZERO);
    }
}
