//! Simulated time: nanosecond-resolution instants and durations.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// ```
/// use ar_sim::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`since` called with a later instant"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time to serialize `bytes` onto a link of `bits_per_sec`,
    /// rounded up to the next nanosecond.
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimDuration {
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros_f64(), 1000.0);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!(t.since(SimTime::from_nanos(100)).as_nanos(), 50);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_nanos(7);
        assert_eq!(t2.as_nanos(), 7);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_when_reversed() {
        let _ = SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn serialization_time_1g() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let d = SimDuration::serialization(1500, 1_000_000_000);
        assert_eq!(d.as_nanos(), 12_000);
    }

    #[test]
    fn serialization_time_10g() {
        let d = SimDuration::serialization(1500, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_200);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps = 8/3 s = 2.66..s → rounds up.
        let d = SimDuration::serialization(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn duration_ordering_and_scaling() {
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_micros(2) * 3, SimDuration::from_micros(6));
    }
}
