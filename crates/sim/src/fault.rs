//! Fault injection: crashes, partitions, and merges on a schedule.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A scheduled fault event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Host `host` crashes (stops processing and sending forever).
    Crash {
        /// The host index to crash.
        host: usize,
    },
    /// The network splits into components; hosts can only reach hosts
    /// in their own component.
    Partition {
        /// Component id per host (hosts with equal ids can communicate).
        component_of: Vec<u8>,
    },
    /// All partitions heal; every (non-crashed) host can reach every
    /// other.
    Heal,
}

/// A time-ordered schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a crash of `host` at `at`.
    #[must_use]
    pub fn crash(mut self, at: SimTime, host: usize) -> Self {
        self.events.push((at, FaultEvent::Crash { host }));
        self.sort();
        self
    }

    /// Adds a partition at `at`; `component_of[i]` names host `i`'s
    /// side.
    #[must_use]
    pub fn partition(mut self, at: SimTime, component_of: Vec<u8>) -> Self {
        self.events.push((at, FaultEvent::Partition { component_of }));
        self.sort();
        self
    }

    /// Heals all partitions at `at`.
    #[must_use]
    pub fn heal(mut self, at: SimTime) -> Self {
        self.events.push((at, FaultEvent::Heal));
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|(t, _)| *t);
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Live connectivity state derived from a [`FaultPlan`]'s applied
/// events.
#[derive(Debug, Clone)]
pub struct Connectivity {
    crashed: Vec<bool>,
    component_of: Vec<u8>,
}

impl Connectivity {
    /// Full connectivity over `n` hosts.
    pub fn full(n: usize) -> Connectivity {
        Connectivity {
            crashed: vec![false; n],
            component_of: vec![0; n],
        }
    }

    /// Applies one fault event.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::Crash { host } => self.crashed[*host] = true,
            FaultEvent::Partition { component_of } => {
                assert_eq!(
                    component_of.len(),
                    self.component_of.len(),
                    "partition vector must cover every host"
                );
                self.component_of.clone_from(component_of);
            }
            FaultEvent::Heal => self.component_of.iter_mut().for_each(|c| *c = 0),
        }
    }

    /// True if host `i` has crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// True if a frame from `from` can reach `to`.
    pub fn can_reach(&self, from: usize, to: usize) -> bool {
        !self.crashed[from]
            && !self.crashed[to]
            && self.component_of[from] == self.component_of[to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_time_sorted() {
        let plan = FaultPlan::none()
            .heal(SimTime::from_nanos(30))
            .crash(SimTime::from_nanos(10), 2)
            .partition(SimTime::from_nanos(20), vec![0, 0, 1, 1]);
        let times: Vec<u64> = plan.events().iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn connectivity_tracks_crashes_and_partitions() {
        let mut c = Connectivity::full(4);
        assert!(c.can_reach(0, 3));
        c.apply(&FaultEvent::Crash { host: 3 });
        assert!(!c.can_reach(0, 3));
        assert!(c.is_crashed(3));
        c.apply(&FaultEvent::Partition {
            component_of: vec![0, 0, 1, 1],
        });
        assert!(c.can_reach(0, 1));
        assert!(!c.can_reach(1, 2));
        c.apply(&FaultEvent::Heal);
        assert!(c.can_reach(1, 2));
        assert!(!c.can_reach(0, 3), "crash is permanent");
    }

    #[test]
    #[should_panic(expected = "cover every host")]
    fn partition_vector_must_match() {
        let mut c = Connectivity::full(2);
        c.apply(&FaultEvent::Partition {
            component_of: vec![0],
        });
    }
}
