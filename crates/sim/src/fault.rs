//! Fault injection: crashes, partitions, and merges on a schedule.
//!
//! The event vocabulary ([`FaultEvent`]) and the reachability state
//! ([`Connectivity`]) are shared with the real-network chaos harness —
//! they live in [`ar_core::fault`] and are re-exported here. Only the
//! schedule type is simulator-specific: [`FaultPlan`] keys events by
//! [`SimTime`], and converts to/from the harness-neutral
//! [`FaultSchedule`] so the same plan can drive a live nemesis run.

use serde::{Deserialize, Serialize};

pub use ar_core::fault::{Connectivity, FaultEvent, FaultSchedule};

use crate::time::SimTime;

/// A time-ordered schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a crash of `host` at `at`.
    #[must_use]
    pub fn crash(mut self, at: SimTime, host: usize) -> Self {
        self.events.push((at, FaultEvent::Crash { host }));
        self.sort();
        self
    }

    /// Adds a restart of previously crashed `host` at `at`.
    #[must_use]
    pub fn restart(mut self, at: SimTime, host: usize) -> Self {
        self.events.push((at, FaultEvent::Restart { host }));
        self.sort();
        self
    }

    /// Adds a partition at `at`; `component_of[i]` names host `i`'s
    /// side.
    #[must_use]
    pub fn partition(mut self, at: SimTime, component_of: Vec<u8>) -> Self {
        self.events
            .push((at, FaultEvent::Partition { component_of }));
        self.sort();
        self
    }

    /// Heals all partitions at `at`.
    #[must_use]
    pub fn heal(mut self, at: SimTime) -> Self {
        self.events.push((at, FaultEvent::Heal));
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|(t, _)| *t);
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts to the harness-neutral schedule shared with the live
    /// nemesis runner.
    pub fn to_schedule(&self) -> FaultSchedule {
        let mut schedule = FaultSchedule::none();
        for (t, ev) in &self.events {
            let at = std::time::Duration::from_nanos(t.as_nanos());
            schedule = match ev.clone() {
                FaultEvent::Crash { host } => schedule.crash(at, host),
                FaultEvent::Restart { host } => schedule.restart(at, host),
                FaultEvent::Partition { component_of } => schedule.partition(at, component_of),
                FaultEvent::Heal => schedule.heal(at),
            };
        }
        schedule
    }

    /// Builds a plan from a harness-neutral schedule.
    pub fn from_schedule(schedule: &FaultSchedule) -> FaultPlan {
        let events = schedule
            .events()
            .iter()
            .map(|(t, ev)| (SimTime::from_nanos(t.as_nanos() as u64), ev.clone()))
            .collect();
        let mut plan = FaultPlan { events };
        plan.sort();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_time_sorted() {
        let plan = FaultPlan::none()
            .heal(SimTime::from_nanos(30))
            .crash(SimTime::from_nanos(10), 2)
            .partition(SimTime::from_nanos(20), vec![0, 0, 1, 1]);
        let times: Vec<u64> = plan.events().iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn schedule_round_trips() {
        let plan = FaultPlan::none()
            .crash(SimTime::from_nanos(10), 2)
            .restart(SimTime::from_nanos(50), 2)
            .partition(SimTime::from_nanos(20), vec![0, 0, 1, 1])
            .heal(SimTime::from_nanos(30));
        let schedule = plan.to_schedule();
        assert_eq!(schedule.events().len(), 4);
        assert_eq!(FaultPlan::from_schedule(&schedule), plan);
    }

    #[test]
    fn connectivity_tracks_crashes_and_partitions() {
        let mut c = Connectivity::full(4);
        assert!(c.can_reach(0, 3));
        c.apply(&FaultEvent::Crash { host: 3 });
        assert!(!c.can_reach(0, 3));
        assert!(c.is_crashed(3));
        c.apply(&FaultEvent::Partition {
            component_of: vec![0, 0, 1, 1],
        });
        assert!(c.can_reach(0, 1));
        assert!(!c.can_reach(1, 2));
        c.apply(&FaultEvent::Heal);
        assert!(c.can_reach(1, 2));
        assert!(!c.can_reach(0, 3), "crash persists until restart");
        c.apply(&FaultEvent::Restart { host: 3 });
        assert!(c.can_reach(0, 3));
    }
}
