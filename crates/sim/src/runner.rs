//! The ring simulation: hosts running the protocol over a simulated
//! switched LAN, with load generation, fault injection, and
//! measurement.
//!
//! The simulated world reproduces the paper's testbed: `n` hosts, each
//! with a single-threaded CPU (cost model from [`ImplProfile`]), a NIC
//! that serializes frames onto a full-duplex link, and one
//! store-and-forward switch with bounded output-port buffers
//! ([`NetworkConfig`]). Data messages are IP-multicast (the switch
//! replicates one inbound frame to every other port); the token is
//! unicast to the ring successor. Each host receives token and data
//! messages on separate sockets with separate kernel buffers, and the
//! CPU drains the two sockets according to the protocol's
//! priority-switching state (Section III-C/III-D of the paper).

use std::collections::VecDeque;

use ar_core::{
    Action, Message, Participant, ParticipantId, ProtocolConfig, RingId, ServiceType,
    TimeoutConfig, TimerKind,
};
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::EventQueue;
use crate::fault::{Connectivity, FaultEvent, FaultPlan};
use crate::load::LoadMode;
use crate::metrics::{LatencyRecorder, SimReport};
use crate::netcfg::NetworkConfig;
use crate::profile::ImplProfile;
use crate::time::{SimDuration, SimTime};
use crate::timeseries::ThroughputSeries;

/// Minimum payload: 8 bytes of submit timestamp + 8 bytes of unique id.
pub const MIN_PAYLOAD: usize = 16;

/// Small fixed CPU cost to field a timer interrupt.
const TIMER_CPU: SimDuration = SimDuration::from_nanos(200);

/// How many pending messages a saturating generator keeps queued, as a
/// multiple of the personal window.
const SATURATE_DEPTH: u32 = 3;

/// Configuration of one simulated benchmark run.
#[derive(Debug, Clone)]
pub struct RingSimConfig {
    /// Number of hosts (the paper uses 8).
    pub n_hosts: usize,
    /// Protocol configuration (accelerated or original, windows…).
    pub protocol: ProtocolConfig,
    /// Timer durations.
    pub timeouts: TimeoutConfig,
    /// Link/switch/socket parameters.
    pub net: NetworkConfig,
    /// Implementation cost model (library / daemon / spread).
    pub profile: ImplProfile,
    /// Application payload bytes per message (the paper uses 1350 and
    /// 8850).
    pub payload_bytes: usize,
    /// Delivery service for all generated messages.
    pub service: ServiceType,
    /// Load generation mode.
    pub load: LoadMode,
    /// Measurement window (after warmup).
    pub duration: SimDuration,
    /// Warmup time excluded from measurement.
    pub warmup: SimDuration,
    /// RNG seed (jitter and random loss).
    pub seed: u64,
    /// Scheduled crashes/partitions (empty for the performance
    /// figures).
    pub faults: FaultPlan,
    /// Record every delivery's (seq, uid) per host and verify
    /// total-order agreement at the end of the run (test runs only —
    /// costs memory proportional to deliveries).
    pub verify_order: bool,
}

impl RingSimConfig {
    /// The paper's 8-host setup with sensible defaults: accelerated
    /// protocol, 1-gigabit network, daemon profile, 1350-byte Agreed
    /// messages at 500 Mbps.
    pub fn paper_default() -> RingSimConfig {
        RingSimConfig {
            n_hosts: 8,
            protocol: ProtocolConfig::accelerated(),
            timeouts: TimeoutConfig::default(),
            net: NetworkConfig::gigabit(),
            profile: ImplProfile::daemon(),
            payload_bytes: 1350,
            service: ServiceType::Agreed,
            load: LoadMode::OpenLoop {
                aggregate_bps: 500_000_000,
            },
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(150),
            seed: 42,
            faults: FaultPlan::none(),
            verify_order: false,
        }
    }

    fn validate(&self) {
        assert!(self.n_hosts > 0, "need at least one host");
        assert!(self.n_hosts < u16::MAX as usize, "too many hosts");
        assert!(
            self.payload_bytes >= MIN_PAYLOAD,
            "payload must be at least {MIN_PAYLOAD} bytes"
        );
        self.protocol.validate().expect("invalid protocol config");
    }
}

/// Where a frame is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    /// IP-multicast: every host except the sender.
    All,
    /// Unicast to one host.
    One(usize),
}

/// A frame in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    from: usize,
    dest: Dest,
    wire_bytes: usize,
    msg: Message,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Frame fully received at the switch.
    SwitchArrive(Frame),
    /// Frame fully received at a host NIC.
    HostArrive { host: usize, frame: Frame },
    /// The host CPU should pick up queued work.
    CpuCheck { host: usize },
    /// A protocol timer fired.
    Timer {
        host: usize,
        kind: TimerKind,
        gen: u64,
    },
    /// The open-loop generator injects one message.
    Submit { host: usize },
    /// Apply the `i`-th fault-plan event.
    Fault(usize),
}

/// One output port of the switch.
#[derive(Debug, Clone, Default)]
struct Port {
    busy_until: SimTime,
    draining: VecDeque<(SimTime, usize)>,
    queued_bytes: usize,
}

/// Per-host simulation state.
struct Host {
    part: Participant,
    token_q: VecDeque<Frame>,
    token_q_bytes: usize,
    data_q: VecDeque<Frame>,
    data_q_bytes: usize,
    cpu_next_free: SimTime,
    cpu_check_pending: bool,
    nic_tx_free: SimTime,
    timer_gen: [u64; 5],
    next_uid: u64,
    delivered_in_window: u64,
    /// (ring, seq, uid) per delivery, recorded when `verify_order` is
    /// on. Sequence numbers restart with each installed configuration,
    /// so agreement is checked per ring.
    order_log: Vec<(RingId, u64, u64)>,
}

fn kind_idx(kind: TimerKind) -> usize {
    match kind {
        TimerKind::TokenLoss => 0,
        TimerKind::TokenRetransmit => 1,
        TimerKind::Join => 2,
        TimerKind::ConsensusTimeout => 3,
        TimerKind::CommitTimeout => 4,
    }
}

/// Runs one simulated benchmark and reports the measurements.
///
/// The run is fully deterministic for a given configuration (including
/// the seed).
pub fn run_ring(cfg: &RingSimConfig) -> SimReport {
    RingSim::new(cfg.clone()).run()
}

/// The assembled simulation. Most callers use [`run_ring`]; the struct
/// is public for tests that want to poke at intermediate state.
pub struct RingSim {
    cfg: RingSimConfig,
    q: EventQueue<Ev>,
    hosts: Vec<Host>,
    ports: Vec<Port>,
    conn: Connectivity,
    rng: StdRng,
    latencies: LatencyRecorder,
    measure_start: SimTime,
    measure_end: SimTime,
    switch_drops: u64,
    socket_drops: u64,
    submit_rejected: u64,
    tokens_at_host0_at_start: u64,
    series: Option<ThroughputSeries>,
}

impl std::fmt::Debug for RingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSim")
            .field("n_hosts", &self.cfg.n_hosts)
            .field("now", &self.q.now())
            .finish_non_exhaustive()
    }
}

impl RingSim {
    /// Builds the simulated world (participants operational on an
    /// established ring, generators scheduled, faults scheduled).
    pub fn new(cfg: RingSimConfig) -> RingSim {
        cfg.validate();
        let n = cfg.n_hosts;
        let members: Vec<ParticipantId> = (0..n as u16).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut q = EventQueue::new();

        let hosts: Vec<Host> = members
            .iter()
            .map(|&pid| {
                let mut part = Participant::new(pid, cfg.protocol, ring_id, members.clone())
                    .expect("valid static ring");
                part.set_timeouts(cfg.timeouts).expect("valid timeouts");
                Host {
                    part,
                    token_q: VecDeque::new(),
                    token_q_bytes: 0,
                    data_q: VecDeque::new(),
                    data_q_bytes: 0,
                    cpu_next_free: SimTime::ZERO,
                    cpu_check_pending: false,
                    nic_tx_free: SimTime::ZERO,
                    timer_gen: [0; 5],
                    next_uid: 0,
                    delivered_in_window: 0,
                    order_log: Vec::new(),
                }
            })
            .collect();

        // Schedule load generation.
        if let Some(interval) = cfg.load.interval(n, cfg.payload_bytes) {
            for h in 0..n {
                // Random initial phase to decorrelate the hosts.
                let phase = rng.gen_range(0..interval.as_nanos().max(1));
                q.schedule(
                    SimTime::ZERO + SimDuration::from_nanos(phase),
                    Ev::Submit { host: h },
                );
            }
        }
        // Schedule faults.
        for (i, (at, _)) in cfg.faults.events().iter().enumerate() {
            q.schedule(*at, Ev::Fault(i));
        }

        let measure_start = SimTime::ZERO + cfg.warmup;
        let measure_end = measure_start + cfg.duration;
        let conn = Connectivity::full(n);
        RingSim {
            cfg,
            q,
            hosts,
            ports: (0..n).map(|_| Port::default()).collect(),
            conn,
            rng,
            latencies: LatencyRecorder::new(),
            measure_start,
            measure_end,
            switch_drops: 0,
            socket_drops: 0,
            submit_rejected: 0,
            tokens_at_host0_at_start: 0,
            series: None,
        }
    }

    /// Enables per-interval delivery counting (host 0's deliveries),
    /// for throughput-over-time plots.
    #[must_use]
    pub fn with_series(mut self, bucket: SimDuration) -> Self {
        self.series = Some(ThroughputSeries::new(bucket));
        self
    }

    /// Runs to the end of the measurement window and summarizes,
    /// also returning the throughput series if one was enabled.
    pub fn run_full(mut self) -> (SimReport, Option<ThroughputSeries>) {
        // Start every participant; the representative's actions carry
        // the first token.
        for h in 0..self.hosts.len() {
            if matches!(self.cfg.load, LoadMode::Saturating) {
                self.top_up(h, SimTime::ZERO);
            }
            let actions = self.hosts[h].part.start();
            let cursor = self.walk_actions(h, SimTime::ZERO, actions);
            self.hosts[h].cpu_next_free = cursor;
        }

        let mut stats_snapshot: Option<Vec<ar_core::ParticipantStats>> = None;
        while let Some((t, ev)) = self.q.pop() {
            if stats_snapshot.is_none() && t >= self.measure_start {
                stats_snapshot = Some(self.hosts.iter().map(|h| *h.part.stats()).collect());
                self.tokens_at_host0_at_start = self.hosts[0].part.stats().tokens_handled;
            }
            if t >= self.measure_end {
                break;
            }
            self.handle_event(t, ev);
        }

        let start_stats =
            stats_snapshot.unwrap_or_else(|| self.hosts.iter().map(|h| *h.part.stats()).collect());
        let n = self.hosts.len() as f64;
        let delivered_total: u64 = self.hosts.iter().map(|h| h.delivered_in_window).sum();
        let delivered_per_participant = delivered_total as f64 / n;
        let secs = self.cfg.duration.as_secs_f64();
        let achieved_bps = delivered_per_participant * (self.cfg.payload_bytes as f64 * 8.0) / secs;
        let retransmissions: u64 = self
            .hosts
            .iter()
            .zip(&start_stats)
            .map(|(h, s)| h.part.stats().retransmissions_sent - s.retransmissions_sent)
            .sum();
        let token_rounds = self.hosts[0].part.stats().tokens_handled
            - self
                .tokens_at_host0_at_start
                .min(self.hosts[0].part.stats().tokens_handled);

        if self.cfg.verify_order {
            self.verify_order_logs();
        }

        let report = SimReport {
            offered_bps: self.cfg.load.offered_bps(),
            achieved_bps,
            latency: self.latencies.summarize(),
            delivered_per_participant,
            token_rotations: token_rounds,
            switch_drops: self.switch_drops,
            socket_drops: self.socket_drops,
            retransmissions,
            submit_rejected: self.submit_rejected,
            events_processed: self.q.events_processed(),
            measurement_nanos: self.cfg.duration.as_nanos(),
        };
        (report, self.series.take())
    }

    /// Runs to the end of the measurement window and summarizes.
    pub fn run(self) -> SimReport {
        self.run_full().0
    }

    /// Panics if any two hosts disagree on the order or content of
    /// their common deliveries (total-order agreement). Hosts may have
    /// delivered different prefixes/suffixes (crashes, end-of-run
    /// cutoff); agreement is checked on the intersection by sequence
    /// number.
    fn verify_order_logs(&self) {
        use std::collections::HashMap;
        let mut uid_at: HashMap<(RingId, u64), u64> = HashMap::new();
        for (h, host) in self.hosts.iter().enumerate() {
            let mut last_seq: HashMap<RingId, u64> = HashMap::new();
            for &(ring, seq, uid) in &host.order_log {
                let last = last_seq.entry(ring).or_insert(0);
                assert!(
                    seq > *last,
                    "host {h}: delivery order not increasing in {ring:?} ({seq} after {last})"
                );
                *last = seq;
                match uid_at.entry((ring, seq)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(
                            *e.get(),
                            uid,
                            "host {h}: different message at {ring:?} seq {seq}"
                        );
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(uid);
                    }
                }
            }
        }
    }

    fn handle_event(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::SwitchArrive(frame) => self.switch_arrive(t, frame),
            Ev::HostArrive { host, frame } => self.host_arrive(t, host, frame),
            Ev::CpuCheck { host } => self.cpu_check(t, host),
            Ev::Timer { host, kind, gen } => self.timer_fired(t, host, kind, gen),
            Ev::Submit { host } => self.submit(t, host),
            Ev::Fault(i) => {
                let (_, fault) = self.cfg.faults.events()[i].clone();
                if let FaultEvent::Crash { host } = fault {
                    self.hosts[host].token_q.clear();
                    self.hosts[host].data_q.clear();
                }
                self.conn.apply(&fault);
            }
        }
    }

    // ----- network --------------------------------------------------------

    fn transmit(
        &mut self,
        from: usize,
        dest: Dest,
        wire_bytes: usize,
        msg: Message,
        ready: SimTime,
    ) {
        if self.conn.is_crashed(from) {
            return;
        }
        let host = &mut self.hosts[from];
        let ser = self.cfg.net.serialization(wire_bytes);
        let start = host.nic_tx_free.max(ready);
        host.nic_tx_free = start + ser;
        let arrive = host.nic_tx_free + self.cfg.net.propagation;
        self.q.schedule(
            arrive,
            Ev::SwitchArrive(Frame {
                from,
                dest,
                wire_bytes,
                msg,
            }),
        );
    }

    fn switch_arrive(&mut self, t: SimTime, frame: Frame) {
        let dests: Vec<usize> = match frame.dest {
            Dest::All => (0..self.hosts.len()).filter(|&d| d != frame.from).collect(),
            Dest::One(d) => vec![d],
        };
        for d in dests {
            if !self.conn.can_reach(frame.from, d) {
                continue;
            }
            if self.cfg.net.random_loss > 0.0 && self.rng.gen::<f64>() < self.cfg.net.random_loss {
                continue;
            }
            let ser = self.cfg.net.serialization(frame.wire_bytes);
            let port = &mut self.ports[d];
            while let Some(&(drain, bytes)) = port.draining.front() {
                if drain <= t {
                    port.draining.pop_front();
                    port.queued_bytes -= bytes;
                } else {
                    break;
                }
            }
            if port.queued_bytes + frame.wire_bytes > self.cfg.net.switch_port_buffer {
                self.switch_drops += 1;
                continue;
            }
            let start = (t + self.cfg.net.switch_latency).max(port.busy_until);
            let done = start + ser;
            port.busy_until = done;
            port.draining.push_back((done, frame.wire_bytes));
            port.queued_bytes += frame.wire_bytes;
            let arrive = done + self.cfg.net.propagation;
            self.q.schedule(
                arrive,
                Ev::HostArrive {
                    host: d,
                    frame: frame.clone(),
                },
            );
        }
    }

    fn host_arrive(&mut self, t: SimTime, host: usize, frame: Frame) {
        if self.conn.is_crashed(host) {
            return;
        }
        let (cap, q_bytes) = match frame.msg {
            Message::Token(_) | Message::Commit(_) => (
                self.cfg.net.token_socket_buffer,
                self.hosts[host].token_q_bytes,
            ),
            Message::Data(_) | Message::Join(_) => (
                self.cfg.net.data_socket_buffer,
                self.hosts[host].data_q_bytes,
            ),
        };
        if q_bytes + frame.wire_bytes > cap {
            self.socket_drops += 1;
            return;
        }
        let h = &mut self.hosts[host];
        let bytes = frame.wire_bytes;
        match frame.msg {
            Message::Token(_) | Message::Commit(_) => {
                h.token_q.push_back(frame);
                h.token_q_bytes += bytes;
            }
            Message::Data(_) | Message::Join(_) => {
                h.data_q.push_back(frame);
                h.data_q_bytes += bytes;
            }
        }
        self.wake_cpu(t, host);
    }

    fn wake_cpu(&mut self, t: SimTime, host: usize) {
        let h = &mut self.hosts[host];
        if !h.cpu_check_pending {
            h.cpu_check_pending = true;
            let at = h.cpu_next_free.max(t);
            self.q.schedule(at, Ev::CpuCheck { host });
        }
    }

    // ----- CPU -------------------------------------------------------------

    fn cpu_check(&mut self, t: SimTime, host: usize) {
        self.hosts[host].cpu_check_pending = false;
        if self.conn.is_crashed(host) {
            return;
        }
        let Some(frame) = self.pick_work(host) else {
            return;
        };
        let proc_cost = match &frame.msg {
            Message::Data(d) => self.cfg.profile.proc_data(d.payload.len()),
            Message::Token(_) | Message::Commit(_) | Message::Join(_) => {
                self.cfg.profile.proc_token
            }
        };
        let mut cursor = t + proc_cost;
        let actions = self.hosts[host].part.handle_message(frame.msg);
        cursor = self.walk_actions(host, cursor, actions);
        // Saturating generators top the queue back up right after a
        // token pass (when sends just happened).
        if matches!(self.cfg.load, LoadMode::Saturating) {
            cursor = self.top_up(host, cursor);
        }
        self.hosts[host].cpu_next_free = cursor;
        if !self.hosts[host].token_q.is_empty() || !self.hosts[host].data_q.is_empty() {
            self.wake_cpu(cursor, host);
        }
    }

    /// Chooses the next frame per the protocol's priority preference.
    fn pick_work(&mut self, host: usize) -> Option<Frame> {
        let prefer_token = matches!(
            self.hosts[host].part.priority_mode(),
            ar_core::PriorityMode::TokenHigh
        );
        let h = &mut self.hosts[host];
        let (first, first_bytes, second, second_bytes) = if prefer_token {
            (
                &mut h.token_q,
                &mut h.token_q_bytes,
                &mut h.data_q,
                &mut h.data_q_bytes,
            )
        } else {
            (
                &mut h.data_q,
                &mut h.data_q_bytes,
                &mut h.token_q,
                &mut h.token_q_bytes,
            )
        };
        if let Some(f) = first.pop_front() {
            *first_bytes -= f.wire_bytes;
            return Some(f);
        }
        if let Some(f) = second.pop_front() {
            *second_bytes -= f.wire_bytes;
            return Some(f);
        }
        None
    }

    /// Executes protocol actions in order, advancing the CPU cursor and
    /// handing frames to the NIC at the instant they are issued.
    fn walk_actions(&mut self, host: usize, mut cursor: SimTime, actions: Vec<Action>) -> SimTime {
        for action in actions {
            match action {
                Action::Multicast(m) => {
                    cursor += self.cfg.profile.send_data(m.payload.len());
                    let wire = self.cfg.profile.data_wire_bytes(m.payload.len());
                    self.transmit(host, Dest::All, wire, Message::Data(m), cursor);
                }
                Action::SendToken { to, token } => {
                    cursor += self.cfg.profile.send_token;
                    let wire = self.cfg.profile.token_wire_bytes(token.rtr.len());
                    let dest = to.as_u16() as usize;
                    self.transmit(host, Dest::One(dest), wire, Message::Token(token), cursor);
                }
                Action::Deliver(d) => {
                    cursor += self.cfg.profile.deliver(d.payload.len());
                    if self.cfg.verify_order && d.payload.len() >= MIN_PAYLOAD {
                        let uid = u64::from_be_bytes(d.payload[8..16].try_into().expect("8 bytes"));
                        self.hosts[host]
                            .order_log
                            .push((d.ring_id, d.seq.as_u64(), uid));
                    }
                    self.record_delivery(host, cursor, &d.payload);
                }
                Action::DeliverConfigChange(_) => {
                    cursor += self.cfg.profile.deliver_fixed;
                }
                Action::MulticastJoin(j) => {
                    cursor += self.cfg.profile.send_token;
                    let wire = 32 + 2 * (j.proc_set.len() + j.fail_set.len());
                    self.transmit(host, Dest::All, wire, Message::Join(j), cursor);
                }
                Action::SendCommit { to, token } => {
                    cursor += self.cfg.profile.send_token;
                    let wire = 24 + 36 * token.memb.len();
                    let dest = to.as_u16() as usize;
                    self.transmit(host, Dest::One(dest), wire, Message::Commit(token), cursor);
                }
                Action::SetTimer(kind) => {
                    let h = &mut self.hosts[host];
                    let idx = kind_idx(kind);
                    h.timer_gen[idx] += 1;
                    let gen = h.timer_gen[idx];
                    let dur = self.timer_duration(kind);
                    self.q.schedule(cursor + dur, Ev::Timer { host, kind, gen });
                }
                Action::CancelTimer(kind) => {
                    self.hosts[host].timer_gen[kind_idx(kind)] += 1;
                }
            }
        }
        cursor
    }

    fn timer_duration(&self, kind: TimerKind) -> SimDuration {
        let t = &self.cfg.timeouts;
        SimDuration::from_nanos(match kind {
            TimerKind::TokenLoss => t.token_loss,
            TimerKind::TokenRetransmit => t.token_retransmit,
            TimerKind::Join => t.join,
            TimerKind::ConsensusTimeout => t.consensus,
            TimerKind::CommitTimeout => t.commit,
        })
    }

    fn timer_fired(&mut self, t: SimTime, host: usize, kind: TimerKind, gen: u64) {
        if self.conn.is_crashed(host) {
            return;
        }
        if self.hosts[host].timer_gen[kind_idx(kind)] != gen {
            return; // re-armed or cancelled since
        }
        let start = self.hosts[host].cpu_next_free.max(t) + TIMER_CPU;
        let actions = self.hosts[host].part.handle_timer(kind);
        let cursor = self.walk_actions(host, start, actions);
        self.hosts[host].cpu_next_free = cursor;
    }

    // ----- application ------------------------------------------------------

    fn submit(&mut self, t: SimTime, host: usize) {
        if self.conn.is_crashed(host) {
            return;
        }
        let payload = self.make_payload(host, t);
        match self.hosts[host].part.submit(payload, self.cfg.service) {
            Ok(()) => {
                let h = &mut self.hosts[host];
                h.cpu_next_free = h.cpu_next_free.max(t) + self.cfg.profile.submit_cost;
            }
            Err(_) => self.submit_rejected += 1,
        }
        if let Some(interval) = self
            .cfg
            .load
            .interval(self.hosts.len(), self.cfg.payload_bytes)
        {
            // ±1% deterministic jitter keeps hosts from phase-locking.
            let jitter_range = (interval.as_nanos() / 100).max(1);
            let jitter = self.rng.gen_range(0..=2 * jitter_range);
            let next = t + SimDuration::from_nanos(interval.as_nanos() - jitter_range + jitter);
            self.q.schedule(next, Ev::Submit { host });
        }
    }

    /// Keeps the pending queue topped up in saturating mode; returns
    /// the advanced CPU cursor.
    fn top_up(&mut self, host: usize, mut cursor: SimTime) -> SimTime {
        let target = (self.cfg.protocol.personal_window * SATURATE_DEPTH) as usize;
        while self.hosts[host].part.pending_len() < target {
            let payload = self.make_payload(host, cursor);
            cursor += self.cfg.profile.submit_cost;
            if self.hosts[host]
                .part
                .submit(payload, self.cfg.service)
                .is_err()
            {
                break;
            }
        }
        cursor
    }

    fn make_payload(&mut self, host: usize, t: SimTime) -> Bytes {
        let h = &mut self.hosts[host];
        let uid = ((host as u64) << 48) | h.next_uid;
        h.next_uid += 1;
        let mut buf = BytesMut::with_capacity(self.cfg.payload_bytes);
        buf.put_u64(t.as_nanos());
        buf.put_u64(uid);
        buf.resize(self.cfg.payload_bytes, 0);
        buf.freeze()
    }

    fn record_delivery(&mut self, host: usize, at: SimTime, payload: &Bytes) {
        if host == 0 {
            if let Some(series) = &mut self.series {
                series.record(at);
            }
        }
        if at < self.measure_start || at >= self.measure_end {
            return;
        }
        self.hosts[host].delivered_in_window += 1;
        if payload.len() >= MIN_PAYLOAD {
            let submit_ns = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
            let submit = SimTime::from_nanos(submit_ns);
            if submit >= self.measure_start && at >= submit {
                self.latencies.record(at.since(submit));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RingSimConfig {
        let mut cfg = RingSimConfig::paper_default();
        cfg.duration = SimDuration::from_millis(40);
        cfg.warmup = SimDuration::from_millis(20);
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 200_000_000,
        };
        cfg
    }

    #[test]
    fn ring_carries_traffic_and_measures_latency() {
        let report = run_ring(&quick_cfg());
        assert!(report.latency.count > 100, "{report:?}");
        assert!(report.achieved_bps > 150e6, "{report:?}");
        assert!(report.latency.mean > SimDuration::ZERO);
        assert_eq!(report.switch_drops, 0);
        assert_eq!(report.submit_rejected, 0);
        assert!(report.token_rotations > 0);
    }

    #[test]
    fn achieved_tracks_offered_below_saturation() {
        let mut cfg = quick_cfg();
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 300_000_000,
        };
        let report = run_ring(&cfg);
        let ratio = report.achieved_bps / 300e6;
        assert!((0.9..1.1).contains(&ratio), "achieved {} of offered", ratio);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_ring(&quick_cfg());
        let b = run_ring(&quick_cfg());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.delivered_per_participant, b.delivered_per_participant);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seed_changes_details_not_shape() {
        let mut cfg = quick_cfg();
        cfg.seed = 7;
        let a = run_ring(&cfg);
        cfg.seed = 8;
        let b = run_ring(&cfg);
        assert_ne!(a.latency, b.latency, "seeds differ");
        let ratio = a.achieved_bps / b.achieved_bps;
        assert!((0.9..1.1).contains(&ratio));
    }

    #[test]
    fn saturating_mode_reaches_high_throughput_on_1g() {
        let mut cfg = quick_cfg();
        cfg.load = LoadMode::Saturating;
        let report = run_ring(&cfg);
        // The accelerated protocol should push a 1-gigabit network well
        // past 700 Mbps of goodput.
        assert!(
            report.achieved_bps > 700e6,
            "only {} Mbps",
            report.achieved_mbps()
        );
    }

    #[test]
    fn accelerated_beats_original_at_high_load_1g() {
        let mut cfg = quick_cfg();
        cfg.load = LoadMode::Saturating;
        cfg.protocol = ProtocolConfig::accelerated();
        let acc = run_ring(&cfg);
        cfg.protocol = ProtocolConfig::original();
        let orig = run_ring(&cfg);
        assert!(
            acc.achieved_bps > orig.achieved_bps,
            "accelerated {} vs original {} Mbps",
            acc.achieved_mbps(),
            orig.achieved_mbps()
        );
    }

    #[test]
    fn safe_latency_exceeds_agreed_latency() {
        let mut cfg = quick_cfg();
        cfg.service = ServiceType::Agreed;
        let agreed = run_ring(&cfg);
        cfg.service = ServiceType::Safe;
        let safe = run_ring(&cfg);
        assert!(
            safe.latency.mean > agreed.latency.mean,
            "safe {}us vs agreed {}us",
            safe.mean_latency_us(),
            agreed.mean_latency_us()
        );
    }

    #[test]
    fn random_loss_triggers_retransmissions_but_delivery_continues() {
        let mut cfg = quick_cfg();
        cfg.net = cfg.net.with_random_loss(0.001);
        let report = run_ring(&cfg);
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(report.achieved_bps > 100e6, "{report:?}");
    }

    #[test]
    fn tiny_switch_buffers_cause_drops_but_protocol_recovers() {
        // Shrink the switch port buffer to a few frames: the
        // accelerated protocol's overlapped sending overruns it, frames
        // drop, and the rtr machinery recovers them — delivery still
        // completes at a reduced rate.
        let mut cfg = quick_cfg();
        cfg.net = cfg.net.with_switch_port_buffer(6 * 1500);
        cfg.load = LoadMode::Saturating;
        cfg.duration = SimDuration::from_millis(80);
        let report = run_ring(&cfg);
        assert!(report.switch_drops > 0, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(
            report.achieved_bps > 100e6,
            "still making progress: {:.0} Mbps",
            report.achieved_mbps()
        );
    }

    #[test]
    fn tiny_data_socket_drops_are_counted() {
        let mut cfg = quick_cfg();
        // Processing-bound regime: bursts arrive faster than the CPU
        // drains them, so a small kernel buffer overflows.
        cfg.net = crate::netcfg::NetworkConfig::ten_gigabit();
        cfg.net.data_socket_buffer = 4 * 1500; // a few frames
        cfg.load = LoadMode::Saturating;
        cfg.duration = SimDuration::from_millis(80);
        let report = run_ring(&cfg);
        assert!(report.socket_drops > 0, "{report:?}");
        assert!(report.achieved_bps > 50e6, "{report:?}");
    }

    #[test]
    fn single_host_ring_self_delivers() {
        let mut cfg = quick_cfg();
        cfg.n_hosts = 1;
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 50_000_000,
        };
        let report = run_ring(&cfg);
        assert!(report.latency.count > 0, "{report:?}");
        assert!(report.achieved_bps > 30e6, "{report:?}");
    }

    #[test]
    fn larger_rings_still_function() {
        let mut cfg = quick_cfg();
        cfg.n_hosts = 16;
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 200_000_000,
        };
        let report = run_ring(&cfg);
        let ratio = report.achieved_bps / 200e6;
        assert!((0.9..1.1).contains(&ratio), "{report:?}");
    }

    #[test]
    fn order_agreement_verified_under_loss() {
        let mut cfg = quick_cfg();
        cfg.net = cfg.net.with_random_loss(0.002);
        cfg.verify_order = true;
        cfg.duration = SimDuration::from_millis(60);
        // run() panics if any host disagrees on the total order.
        let report = run_ring(&cfg);
        assert!(report.retransmissions > 0, "loss exercised: {report:?}");
    }

    #[test]
    fn order_agreement_verified_across_crash() {
        let mut cfg = quick_cfg();
        cfg.n_hosts = 4;
        cfg.verify_order = true;
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 100_000_000,
        };
        cfg.duration = SimDuration::from_millis(250);
        cfg.warmup = SimDuration::from_millis(10);
        cfg.faults = FaultPlan::none().crash(SimTime::ZERO + SimDuration::from_millis(50), 3);
        let _ = run_ring(&cfg);
    }

    #[test]
    fn crash_triggers_membership_and_ring_continues() {
        let mut cfg = quick_cfg();
        cfg.n_hosts = 4;
        cfg.load = LoadMode::OpenLoop {
            aggregate_bps: 100_000_000,
        };
        cfg.duration = SimDuration::from_millis(300);
        cfg.warmup = SimDuration::from_millis(10);
        cfg.faults = FaultPlan::none().crash(SimTime::ZERO + SimDuration::from_millis(60), 3);
        let sim = RingSim::new(cfg.clone());
        let report = sim.run();
        // Deliveries continue after the membership change; the ring of
        // three keeps carrying the load (which is now 3/4 of offered).
        assert!(
            report.achieved_bps > 50e6,
            "only {} Mbps after crash",
            report.achieved_mbps()
        );
    }
}
