//! Implementation profiles: CPU and header cost models for the paper's
//! three implementations.
//!
//! The paper evaluates the protocols in a *library-based prototype*, a
//! *daemon-based prototype*, and the full *Spread toolkit*. The protocol
//! logic is identical; what differs is per-message overhead:
//!
//! * **Spread** adds large headers (descriptive group and sender names:
//!   the paper's 1350-byte payloads + ~150 bytes of headers fill a
//!   1500-byte MTU) and expensive delivery (group-name analysis, routing
//!   to the right clients over IPC).
//! * The **daemon** prototype keeps the client/daemon architecture (IPC
//!   hop on submission and delivery) but none of Spread's feature
//!   overhead.
//! * The **library** prototype runs the protocol in-process with minimal
//!   header and delivery cost.
//!
//! On a 1-gigabit network processing is fast relative to the wire, so
//! the three profiles perform nearly identically; on 10-gigabit the
//! processing differences dominate and the tiers separate — exactly the
//! paper's Figures 1–6. The constants below were calibrated against the
//! paper's reported maximum throughputs (see `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Cost model for one implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImplProfile {
    /// Human-readable name ("library", "daemon", "spread").
    pub name: &'static str,
    /// Protocol + implementation header bytes added to each data
    /// message's payload on the wire.
    pub data_header_bytes: usize,
    /// Wire size of a token with an empty rtr list; each rtr entry adds
    /// [`Self::RTR_ENTRY_BYTES`].
    pub token_base_bytes: usize,
    /// Fixed CPU cost to receive + protocol-process one data message.
    pub proc_data_fixed: SimDuration,
    /// Per-payload-byte CPU cost of receiving a data message (checksum,
    /// copies).
    pub proc_data_per_kb: SimDuration,
    /// CPU cost to receive + process a token.
    pub proc_token: SimDuration,
    /// CPU cost to hand one data message to the NIC (syscall, copy).
    pub send_data_fixed: SimDuration,
    /// Per-payload-byte CPU cost of sending.
    pub send_data_per_kb: SimDuration,
    /// CPU cost to send the token.
    pub send_token: SimDuration,
    /// Fixed CPU cost to deliver one message to the application /
    /// client (for Spread: group-name analysis + IPC write).
    pub deliver_fixed: SimDuration,
    /// Per-payload-byte delivery cost (IPC copy).
    pub deliver_per_kb: SimDuration,
    /// CPU cost charged when a client submits a message to the daemon
    /// (IPC read); zero for the library profile.
    pub submit_cost: SimDuration,
}

impl ImplProfile {
    /// Wire bytes added per retransmission-request entry on a token.
    pub const RTR_ENTRY_BYTES: usize = 8;

    /// The library-based prototype: protocol in-process, minimal
    /// overhead.
    pub fn library() -> ImplProfile {
        ImplProfile {
            name: "library",
            data_header_bytes: 40,
            token_base_bytes: 70,
            proc_data_fixed: SimDuration::from_nanos(900),
            proc_data_per_kb: SimDuration::from_nanos(600),
            proc_token: SimDuration::from_nanos(2_200),
            send_data_fixed: SimDuration::from_nanos(700),
            send_data_per_kb: SimDuration::from_nanos(320),
            send_token: SimDuration::from_nanos(900),
            deliver_fixed: SimDuration::from_nanos(200),
            deliver_per_kb: SimDuration::from_nanos(350),
            submit_cost: SimDuration::from_nanos(100),
        }
    }

    /// The daemon-based prototype: client/daemon architecture with IPC,
    /// but no Spread feature overhead.
    pub fn daemon() -> ImplProfile {
        ImplProfile {
            name: "daemon",
            data_header_bytes: 60,
            token_base_bytes: 70,
            proc_data_fixed: SimDuration::from_nanos(1_200),
            proc_data_per_kb: SimDuration::from_nanos(700),
            proc_token: SimDuration::from_nanos(2_500),
            send_data_fixed: SimDuration::from_nanos(800),
            send_data_per_kb: SimDuration::from_nanos(340),
            send_token: SimDuration::from_nanos(1_000),
            deliver_fixed: SimDuration::from_nanos(520),
            deliver_per_kb: SimDuration::from_nanos(490),
            submit_cost: SimDuration::from_nanos(600),
        }
    }

    /// The production Spread toolkit: large headers, expensive delivery
    /// (group-name analysis, many-client routing), costlier processing.
    pub fn spread() -> ImplProfile {
        ImplProfile {
            name: "spread",
            data_header_bytes: 150,
            token_base_bytes: 110,
            proc_data_fixed: SimDuration::from_nanos(2_200),
            proc_data_per_kb: SimDuration::from_nanos(750),
            proc_token: SimDuration::from_nanos(3_500),
            send_data_fixed: SimDuration::from_nanos(1_100),
            send_data_per_kb: SimDuration::from_nanos(380),
            send_token: SimDuration::from_nanos(1_200),
            deliver_fixed: SimDuration::from_nanos(960),
            deliver_per_kb: SimDuration::from_nanos(460),
            submit_cost: SimDuration::from_nanos(900),
        }
    }

    /// All three profiles, in the order the paper's figures list them.
    pub fn all() -> [ImplProfile; 3] {
        [Self::library(), Self::daemon(), Self::spread()]
    }

    /// Wire size of a data message with `payload_len` payload bytes.
    pub fn data_wire_bytes(&self, payload_len: usize) -> usize {
        self.data_header_bytes + payload_len
    }

    /// Wire size of a token carrying `rtr_len` retransmission requests.
    pub fn token_wire_bytes(&self, rtr_len: usize) -> usize {
        self.token_base_bytes + rtr_len * Self::RTR_ENTRY_BYTES
    }

    /// CPU cost to receive + process a data message of `payload_len`
    /// bytes.
    pub fn proc_data(&self, payload_len: usize) -> SimDuration {
        self.proc_data_fixed + per_kb(self.proc_data_per_kb, payload_len)
    }

    /// CPU cost to send a data message of `payload_len` bytes.
    pub fn send_data(&self, payload_len: usize) -> SimDuration {
        self.send_data_fixed + per_kb(self.send_data_per_kb, payload_len)
    }

    /// CPU cost to deliver a message of `payload_len` bytes to the
    /// application.
    pub fn deliver(&self, payload_len: usize) -> SimDuration {
        self.deliver_fixed + per_kb(self.deliver_per_kb, payload_len)
    }
}

fn per_kb(rate: SimDuration, bytes: usize) -> SimDuration {
    SimDuration::from_nanos(rate.as_nanos() * bytes as u64 / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_overhead() {
        let [lib, dmn, spr] = ImplProfile::all();
        assert!(lib.proc_data(1350) < dmn.proc_data(1350));
        assert!(dmn.proc_data(1350) < spr.proc_data(1350));
        assert!(lib.deliver(1350) < dmn.deliver(1350));
        assert!(dmn.deliver(1350) < spr.deliver(1350));
        assert!(lib.data_header_bytes < spr.data_header_bytes);
    }

    #[test]
    fn spread_fills_standard_mtu() {
        // 1350-byte payload + Spread headers = 1500-byte MTU (paper §IV-A).
        assert_eq!(ImplProfile::spread().data_wire_bytes(1350), 1500);
    }

    #[test]
    fn per_byte_costs_scale() {
        let p = ImplProfile::library();
        assert!(p.proc_data(8850) > p.proc_data(1350));
        let delta = p.proc_data(2048).as_nanos() - p.proc_data_fixed.as_nanos();
        assert_eq!(delta, p.proc_data_per_kb.as_nanos() * 2);
    }

    #[test]
    fn token_wire_size_grows_with_rtr() {
        let p = ImplProfile::daemon();
        assert_eq!(
            p.token_wire_bytes(10),
            p.token_base_bytes + 10 * ImplProfile::RTR_ENTRY_BYTES
        );
    }

    #[test]
    fn receiver_cpu_budget_fits_1g_but_not_10g() {
        // The calibration invariant behind the paper's shapes: at 1 Gbps
        // a 1350-byte message takes ~11.4us on the wire, which exceeds
        // every profile's per-message receive+deliver CPU (network-
        // bound); at 10 Gbps it takes ~1.14us, less than every profile's
        // CPU (processing-bound).
        let wire_1g = SimDuration::serialization(1500, 1_000_000_000);
        let wire_10g = SimDuration::serialization(1500, 10_000_000_000);
        for p in ImplProfile::all() {
            let cpu = p.proc_data(1350) + p.deliver(1350);
            assert!(cpu < wire_1g, "{} is CPU-bound on 1G", p.name);
            assert!(cpu > wire_10g, "{} is network-bound on 10G", p.name);
        }
    }
}
