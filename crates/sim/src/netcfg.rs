//! Network configuration: link, switch, and socket-buffer parameters,
//! with presets modeling the paper's two testbeds.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Parameters of the simulated switched LAN.
///
/// The topology is fixed to the paper's: `n` hosts, each connected by a
/// full-duplex link to one store-and-forward switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Link bandwidth in bits per second (both directions).
    pub link_bps: u64,
    /// One-way propagation delay per link (cable + PHY).
    pub propagation: SimDuration,
    /// Switch forwarding latency added to every frame (lookup +
    /// crossbar; the store-and-forward serialization is modeled by the
    /// links themselves).
    pub switch_latency: SimDuration,
    /// Per-output-port buffer capacity in bytes; frames arriving at a
    /// full port are dropped (tail drop).
    pub switch_port_buffer: usize,
    /// Kernel receive-buffer bytes for the data socket.
    pub data_socket_buffer: usize,
    /// Kernel receive-buffer bytes for the token socket (separate
    /// socket/port, per Section III-D of the paper).
    pub token_socket_buffer: usize,
    /// Independent per-frame loss probability (bit errors, etc.);
    /// usually zero — congestion loss is modeled by the buffers.
    pub random_loss: f64,
}

impl NetworkConfig {
    /// The paper's 1-gigabit testbed: Cisco Catalyst 2960.
    ///
    /// The 2960 has on the order of 1 MB of shared packet memory per
    /// port group; we give each output port 768 KiB.
    pub fn gigabit() -> NetworkConfig {
        NetworkConfig {
            link_bps: 1_000_000_000,
            propagation: SimDuration::from_nanos(500),
            switch_latency: SimDuration::from_micros(4),
            switch_port_buffer: 768 * 1024,
            data_socket_buffer: 2 * 1024 * 1024,
            token_socket_buffer: 256 * 1024,
            random_loss: 0.0,
        }
    }

    /// The paper's 10-gigabit testbed: Arista 7100T.
    ///
    /// Cut-through-capable, but we keep the same store-and-forward
    /// model; the 7100 family has deep buffers relative to frame time.
    pub fn ten_gigabit() -> NetworkConfig {
        NetworkConfig {
            link_bps: 10_000_000_000,
            propagation: SimDuration::from_nanos(500),
            switch_latency: SimDuration::from_micros(1),
            switch_port_buffer: 2 * 1024 * 1024,
            data_socket_buffer: 4 * 1024 * 1024,
            token_socket_buffer: 256 * 1024,
            random_loss: 0.0,
        }
    }

    /// Serialization delay of `bytes` on one of this network's links.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::serialization(bytes, self.link_bps)
    }

    /// Sets the random per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn with_random_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.random_loss = p;
        self
    }

    /// Overrides the switch port buffer size.
    #[must_use]
    pub fn with_switch_port_buffer(mut self, bytes: usize) -> Self {
        self.switch_port_buffer = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_speed() {
        let g = NetworkConfig::gigabit();
        let tg = NetworkConfig::ten_gigabit();
        assert_eq!(tg.link_bps, 10 * g.link_bps);
        assert!(tg.serialization(1500) < g.serialization(1500));
    }

    #[test]
    fn serialization_matches_link_rate() {
        let g = NetworkConfig::gigabit();
        assert_eq!(g.serialization(1500).as_nanos(), 12_000);
    }

    #[test]
    fn loss_builder_validates() {
        let g = NetworkConfig::gigabit().with_random_loss(0.01);
        assert_eq!(g.random_loss, 0.01);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = NetworkConfig::gigabit().with_random_loss(1.5);
    }
}
