//! A fixed-sequencer total-order protocol on the same simulated
//! substrate — the related-work baseline (§V of the paper).
//!
//! The paper compares token-based ordering against sequencer-based
//! systems (JGroups' SEQUENCER, ISIS). The canonical fixed-sequencer
//! design: every sender forwards its message to a distinguished
//! *sequencer* host, which assigns the global sequence number and
//! multicasts the message to everyone. Receivers deliver in sequence
//! order.
//!
//! The interesting comparison points this model reproduces:
//!
//! * on a network-bound fabric (1-gigabit) the sequencer's links carry
//!   every message twice (inbound unicast + outbound multicast on a
//!   full-duplex link), so throughput approaches line rate, but
//!   latency pays an extra network + processing hop;
//! * on a processing-bound fabric (10-gigabit) the sequencer's CPU must
//!   receive *and* re-multicast every message in the system, making the
//!   coordinator the bottleneck — the ring protocols distribute that
//!   work around all members.
//!
//! Loss handling is out of scope for this baseline (the comparison
//! benches run lossless, like the paper's §V measurements); overload is
//! modeled by bounded queues with tail drop.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::EventQueue;
use crate::metrics::{LatencyRecorder, SimReport};
use crate::netcfg::NetworkConfig;
use crate::profile::ImplProfile;
use crate::time::{SimDuration, SimTime};

/// Configuration of a sequencer-protocol run.
#[derive(Debug, Clone)]
pub struct SequencerSimConfig {
    /// Number of hosts; host 0 is the sequencer (and also sends).
    pub n_hosts: usize,
    /// Network parameters (links, switch, buffers).
    pub net: NetworkConfig,
    /// CPU cost model.
    pub profile: ImplProfile,
    /// Application payload bytes per message.
    pub payload_bytes: usize,
    /// Aggregate offered load in payload bits/second.
    pub aggregate_bps: u64,
    /// Measurement window.
    pub duration: SimDuration,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// RNG seed (phase jitter).
    pub seed: u64,
}

impl SequencerSimConfig {
    /// The paper's 8-host setup at a given load.
    pub fn eight_hosts(net: NetworkConfig, profile: ImplProfile, aggregate_bps: u64) -> Self {
        SequencerSimConfig {
            n_hosts: 8,
            net,
            profile,
            payload_bytes: 1350,
            aggregate_bps,
            duration: SimDuration::from_millis(300),
            warmup: SimDuration::from_millis(120),
            seed: 42,
        }
    }
}

/// Maximum messages queued at the sequencer before tail drop
/// (overload model).
const SEQUENCER_QUEUE_LIMIT: usize = 8192;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// A sender injects one message.
    Submit { host: usize },
    /// A forwarded message fully arrives at the sequencer NIC.
    AtSequencer { submit_ns: u64 },
    /// The sequencer CPU picks up queued work.
    SequencerCpu,
    /// A sequenced multicast fully arrives at a receiver.
    AtReceiver {
        host: usize,
        submit_ns: u64,
        seq: u64,
    },
    /// A receiver CPU picks up queued work.
    ReceiverCpu { host: usize },
}

/// Runs the sequencer baseline and reports throughput/latency.
pub fn run_sequencer(cfg: &SequencerSimConfig) -> SimReport {
    assert!(cfg.n_hosts >= 2, "need a sequencer and at least one other");
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = cfg.n_hosts;
    let wire_bytes = cfg.profile.data_wire_bytes(cfg.payload_bytes);
    let ser = cfg.net.serialization(wire_bytes);
    let hop = cfg.net.propagation + cfg.net.switch_latency + cfg.net.propagation;

    // Per-host send interval.
    let per_host_bps = cfg.aggregate_bps / n as u64;
    let interval = SimDuration::from_nanos(
        (cfg.payload_bytes as u128 * 8 * 1_000_000_000 / per_host_bps.max(1) as u128) as u64,
    );
    for h in 0..n {
        let phase = rng.gen_range(0..interval.as_nanos().max(1));
        q.schedule(
            SimTime::ZERO + SimDuration::from_nanos(phase),
            Ev::Submit { host: h },
        );
    }

    // Sequencer state.
    let mut seq_inbox: VecDeque<u64> = VecDeque::new(); // submit timestamps
    let mut seq_cpu_free = SimTime::ZERO;
    let mut seq_cpu_pending = false;
    let mut seq_nic_free = SimTime::ZERO;
    let mut next_seq: u64 = 0;
    let mut seq_drops: u64 = 0;

    // Per-sender NIC (for the forward leg) and per-receiver CPU.
    let mut snd_nic_free = vec![SimTime::ZERO; n];
    let mut rcv_inbox: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); n];
    let mut rcv_cpu_free = vec![SimTime::ZERO; n];
    let mut rcv_cpu_pending = vec![false; n];

    let measure_start = SimTime::ZERO + cfg.warmup;
    let measure_end = measure_start + cfg.duration;
    let mut latencies = LatencyRecorder::new();
    let mut delivered_total: u64 = 0;

    let proc = cfg.profile.proc_data(cfg.payload_bytes);
    let send = cfg.profile.send_data(cfg.payload_bytes);
    let deliver = cfg.profile.deliver(cfg.payload_bytes);

    while let Some((t, ev)) = q.pop() {
        if t >= measure_end {
            break;
        }
        match ev {
            Ev::Submit { host } => {
                // Forward to the sequencer (senders other than host 0
                // pay a network hop; the sequencer's own messages go
                // straight to its inbox).
                if host == 0 {
                    if seq_inbox.len() < SEQUENCER_QUEUE_LIMIT {
                        seq_inbox.push_back(t.as_nanos());
                        if !seq_cpu_pending {
                            seq_cpu_pending = true;
                            q.schedule(seq_cpu_free.max(t), Ev::SequencerCpu);
                        }
                    } else {
                        seq_drops += 1;
                    }
                } else {
                    let start = snd_nic_free[host].max(t);
                    snd_nic_free[host] = start + ser;
                    q.schedule(
                        snd_nic_free[host] + hop,
                        Ev::AtSequencer {
                            submit_ns: t.as_nanos(),
                        },
                    );
                }
                // Next injection (±1% jitter).
                let jr = (interval.as_nanos() / 100).max(1);
                let jitter = rng.gen_range(0..=2 * jr);
                q.schedule(
                    t + SimDuration::from_nanos(interval.as_nanos() - jr + jitter),
                    Ev::Submit { host },
                );
            }
            Ev::AtSequencer { submit_ns } => {
                if seq_inbox.len() < SEQUENCER_QUEUE_LIMIT {
                    seq_inbox.push_back(submit_ns);
                    if !seq_cpu_pending {
                        seq_cpu_pending = true;
                        q.schedule(seq_cpu_free.max(t), Ev::SequencerCpu);
                    }
                } else {
                    seq_drops += 1;
                }
            }
            Ev::SequencerCpu => {
                seq_cpu_pending = false;
                let Some(submit_ns) = seq_inbox.pop_front() else {
                    continue;
                };
                // Receive + assign seq + multicast.
                let cursor = t + proc + send;
                let seq = next_seq;
                next_seq += 1;
                // Multicast: one serialization on the sequencer uplink,
                // the switch replicates; receivers get it one hop later.
                let tx_start = seq_nic_free.max(cursor);
                seq_nic_free = tx_start + ser;
                for h in 0..n {
                    if h != 0 {
                        q.schedule(
                            seq_nic_free + hop,
                            Ev::AtReceiver {
                                host: h,
                                submit_ns,
                                seq,
                            },
                        );
                    }
                }
                // The sequencer delivers locally.
                let done = cursor + deliver;
                seq_cpu_free = done;
                if done >= measure_start && done < measure_end {
                    delivered_total += 1;
                    latencies.record(done.since(SimTime::from_nanos(submit_ns)));
                }
                if !seq_inbox.is_empty() {
                    seq_cpu_pending = true;
                    q.schedule(seq_cpu_free, Ev::SequencerCpu);
                }
            }
            Ev::AtReceiver {
                host,
                submit_ns,
                seq,
            } => {
                rcv_inbox[host].push_back((submit_ns, seq));
                if !rcv_cpu_pending[host] {
                    rcv_cpu_pending[host] = true;
                    q.schedule(rcv_cpu_free[host].max(t), Ev::ReceiverCpu { host });
                }
            }
            Ev::ReceiverCpu { host } => {
                rcv_cpu_pending[host] = false;
                let Some((submit_ns, _seq)) = rcv_inbox[host].pop_front() else {
                    continue;
                };
                // Multicasts arrive in seq order on a FIFO fabric, so
                // in-order delivery needs no reordering buffer here.
                let done = rcv_cpu_free[host].max(q.now()) + proc + deliver;
                rcv_cpu_free[host] = done;
                if done >= measure_start && done < measure_end {
                    delivered_total += 1;
                    latencies.record(done.since(SimTime::from_nanos(submit_ns)));
                }
                if !rcv_inbox[host].is_empty() {
                    rcv_cpu_pending[host] = true;
                    q.schedule(rcv_cpu_free[host], Ev::ReceiverCpu { host });
                }
            }
        }
    }

    let secs = cfg.duration.as_secs_f64();
    let per_participant = delivered_total as f64 / n as f64;
    SimReport {
        offered_bps: cfg.aggregate_bps,
        achieved_bps: per_participant * (cfg.payload_bytes as f64 * 8.0) / secs,
        latency: latencies.summarize(),
        delivered_per_participant: per_participant,
        token_rotations: 0,
        switch_drops: 0,
        socket_drops: seq_drops,
        retransmissions: 0,
        submit_rejected: 0,
        events_processed: q.events_processed(),
        measurement_nanos: cfg.duration.as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(net: NetworkConfig, mbps: u64) -> SequencerSimConfig {
        let mut c = SequencerSimConfig::eight_hosts(net, ImplProfile::daemon(), mbps * 1_000_000);
        c.duration = SimDuration::from_millis(60);
        c.warmup = SimDuration::from_millis(30);
        c
    }

    #[test]
    fn sequencer_carries_modest_load() {
        let r = run_sequencer(&base(NetworkConfig::gigabit(), 200));
        assert!(r.achieved_bps > 150e6, "{r:?}");
        assert!(r.latency.count > 0);
        assert!(r.latency.mean > SimDuration::ZERO);
    }

    #[test]
    fn sequencer_latency_exceeds_direct_multicast_floor() {
        // Two network hops + sequencer processing: the latency floor is
        // strictly above one hop + processing.
        let r = run_sequencer(&base(NetworkConfig::gigabit(), 100));
        let one_hop =
            NetworkConfig::gigabit().serialization(1410) + NetworkConfig::gigabit().propagation;
        assert!(r.latency.mean.as_nanos() > 2 * one_hop.as_nanos());
    }

    #[test]
    fn sequencer_saturates_below_ring_on_10g() {
        // Push hard: the coordinator CPU caps throughput well below
        // what the ring's distributed ordering achieves (~3.3 Gbps for
        // the daemon profile).
        let r = run_sequencer(&base(NetworkConfig::ten_gigabit(), 6000));
        assert!(
            r.achieved_bps < 3.0e9,
            "sequencer bottleneck: {:.0} Mbps",
            r.achieved_mbps()
        );
        assert!(r.socket_drops > 0, "overload drops at the coordinator");
    }

    #[test]
    fn deterministic() {
        let a = run_sequencer(&base(NetworkConfig::gigabit(), 300));
        let b = run_sequencer(&base(NetworkConfig::gigabit(), 300));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.events_processed, b.events_processed);
    }
}
