//! # ar-sim — discrete-event data-center simulator for the Accelerated
//! Ring protocol
//!
//! The paper evaluates the Accelerated Ring protocol on eight servers
//! connected by 1-gigabit (Cisco Catalyst 2960) and 10-gigabit (Arista
//! 7100T) switches. This crate substitutes a calibrated discrete-event
//! simulation of that testbed so every figure of the evaluation can be
//! regenerated on a laptop:
//!
//! * full-duplex links with bandwidth and propagation delay
//!   ([`NetworkConfig`]);
//! * one store-and-forward switch with bounded output-port buffers
//!   (tail drop) — the buffering whose trade-offs the protocol
//!   exploits;
//! * per-host NICs and *two* receive sockets (token and data) with
//!   separate kernel buffers, drained by a single-threaded CPU in the
//!   priority order the protocol requests (Section III-C/III-D);
//! * CPU cost models for the paper's three implementation tiers
//!   ([`ImplProfile`]: library / daemon / Spread);
//! * open-loop and saturating load generators ([`LoadMode`]), latency
//!   and goodput measurement ([`SimReport`]), and fault injection
//!   ([`FaultPlan`]).
//!
//! ## Example: one point of Figure 1
//!
//! ```
//! use ar_sim::{run_ring, LoadMode, RingSimConfig, SimDuration};
//! use ar_core::ProtocolConfig;
//!
//! let mut cfg = RingSimConfig::paper_default();
//! cfg.protocol = ProtocolConfig::accelerated();
//! cfg.load = LoadMode::OpenLoop { aggregate_bps: 400_000_000 };
//! cfg.warmup = SimDuration::from_millis(10);
//! cfg.duration = SimDuration::from_millis(20);
//! let report = run_ring(&cfg);
//! assert!(report.achieved_bps > 300e6);
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod fault;
pub mod load;
pub mod metrics;
pub mod netcfg;
pub mod profile;
pub mod runner;
pub mod seqsim;
pub mod time;
pub mod timeseries;

pub use fault::{Connectivity, FaultEvent, FaultPlan};
pub use load::LoadMode;
pub use metrics::{LatencyRecorder, LatencySummary, SimReport};
pub use netcfg::NetworkConfig;
pub use profile::ImplProfile;
pub use runner::{run_ring, RingSim, RingSimConfig};
pub use seqsim::{run_sequencer, SequencerSimConfig};
pub use time::{SimDuration, SimTime};
pub use timeseries::{find_disruption, Disruption, ThroughputSeries};
