//! The discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled simulation event. The payload type is supplied by the
/// runner.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue: ties are broken by
/// insertion order, so identical runs replay identically.
#[derive(Debug, Clone)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` is in the past — events may never
    /// rewind time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.now(), SimTime::from_nanos(20));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_nanos(5), 2u32);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 > t);
    }
}
