//! A minimal JSON writer and parser.
//!
//! The workspace vendors no JSON crate, and telemetry's needs are
//! small: emit metric snapshots and `BENCH_*.json` result files, and
//! parse them back for validation. [`JsonWriter`] is a streaming
//! emitter that tracks comma placement; [`Value`] is a fully-owned
//! parse tree produced by a recursive-descent parser accepting exactly
//! RFC 8259 JSON (no comments, no trailing commas).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number: finite values only (non-finite
/// become `null`), integers without a trailing `.0`.
pub fn fmt_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// A streaming JSON emitter. The caller drives structure
/// (`begin_object`/`key`/`end_object`, `begin_array`/`end_array`) and
/// the writer inserts commas where needed.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next value at each nesting level needs a leading
    /// comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emits an object key; the next call must emit its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        // The value following a key is not comma-separated from it.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emits a string value.
    pub fn str(&mut self, s: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
    }

    /// Emits an unsigned integer value.
    pub fn num_u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Emits a signed integer value.
    pub fn num_i64(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Emits a floating-point value (`null` if non-finite).
    pub fn num_f64(&mut self, v: f64) {
        self.pre_value();
        fmt_f64(&mut self.buf, v);
    }

    /// Emits a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Emits `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Value>),
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses `input` as a single JSON document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            b: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object contents, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The JSON type name, for error messages and schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.b[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos past the digits; skip the
                            // generic advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.b.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.b[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.str("latency \"curve\"\n");
        w.key("points");
        w.begin_array();
        for i in 0..3 {
            w.begin_object();
            w.key("i");
            w.num_u64(i);
            w.key("v");
            w.num_f64(i as f64 + 0.5);
            w.end_object();
        }
        w.end_array();
        w.key("ok");
        w.bool(true);
        w.key("none");
        w.null();
        w.end_object();
        let text = w.finish();
        let v = Value::parse(&text).expect("writer output parses");
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("latency \"curve\"\n")
        );
        assert_eq!(
            v.get("points")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn parses_numbers() {
        for (text, want) in [
            ("0", 0.0),
            ("-17", -17.0),
            ("3.25", 3.25),
            ("1e3", 1000.0),
            ("-2.5E-2", -0.025),
        ] {
            assert_eq!(Value::parse(text).unwrap().as_f64(), Some(want), "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Value::parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tbé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn f64_formatting() {
        let mut s = String::new();
        fmt_f64(&mut s, 5.0);
        assert_eq!(s, "5");
        s.clear();
        fmt_f64(&mut s, 2.5);
        assert_eq!(s, "2.5");
        s.clear();
        fmt_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn roundtrips_whitespace_heavy_document() {
        let text = " {\n\t\"a\" : [ 1 , 2 , { \"b\" : null } ] \r\n} ";
        let v = Value::parse(text).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }
}
