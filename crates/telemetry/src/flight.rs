//! Flight recorder: a bounded ring of recent protocol events.
//!
//! Attached to a [`Participant`](ar_core::Participant) through the
//! [`Observer`](ar_core::Observer) hook, the recorder keeps the last
//! `capacity` events (with caller-injected timestamps) so that when a
//! node fails an assertion — in the Nemesis chaos harness, in a test,
//! or in production — the tail of its protocol history can be dumped
//! for post-mortem analysis. Recording is a mutex-guarded ring-buffer
//! write; the buffer is allocated once up front.

use std::sync::Arc;

use ar_core::{Observer, ProtoEvent};
use parking_lot::Mutex;

/// One recorded protocol event with its injected timestamp
/// (nanoseconds; the caller decides the clock domain).
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    /// Timestamp passed to `Participant::observe_now` before the event
    /// fired.
    pub at: u64,
    /// The protocol event itself.
    pub ev: ProtoEvent,
}

struct Ring {
    buf: Vec<FlightEvent>,
    /// Next write position.
    head: usize,
    /// Total events ever pushed (>= buf.len()).
    total: u64,
}

/// A bounded, thread-safe recorder of the most recent protocol events.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.cap)
            .field("len", &ring.buf.len())
            .field("total", &ring.total)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            cap,
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(cap),
                head: 0,
                total: 0,
            }),
        }
    }

    /// Convenience: a recorder already wrapped for
    /// [`Participant::set_observer`](ar_core::Participant::set_observer).
    pub fn shared(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::new(capacity))
    }

    /// Records one event, evicting the oldest if full.
    pub fn push(&self, at: u64, ev: ProtoEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.cap {
            ring.buf.push(FlightEvent { at, ev });
        } else {
            let head = ring.head;
            ring.buf[head] = FlightEvent { at, ev };
        }
        ring.head = (ring.head + 1) % self.cap;
        ring.total += 1;
    }

    /// Number of events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().buf.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.ring.lock().total
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock();
        if ring.buf.len() < self.cap {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
            out
        }
    }

    /// FNV-1a digest over the retained events (timestamps + encoded
    /// event bodies, oldest first). Two recorders that saw identical
    /// histories produce identical digests, making chaos runs
    /// comparable across executions.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for fe in self.dump() {
            eat(&fe.at.to_le_bytes());
            fe.ev.encode(&mut eat);
        }
        h
    }

    /// Human-readable dump, one event per line (`at=<ns> <name> …`).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for fe in self.dump() {
            let _ = writeln!(out, "at={} {:?}", fe.at, fe.ev);
        }
        out
    }

    /// Discards all retained events (the cumulative total is kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.buf.clear();
        ring.head = 0;
    }
}

impl Observer for FlightRecorder {
    fn on_event(&self, at: u64, ev: &ProtoEvent) {
        self.push(at, *ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> ProtoEvent {
        ProtoEvent::MsgPostToken { seq }
    }

    #[test]
    fn retains_last_capacity_events_oldest_first() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(i, ev(i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total(), 10);
        let d = fr.dump();
        let ats: Vec<u64> = d.iter().map(|f| f.at).collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_dumps_in_order() {
        let fr = FlightRecorder::new(8);
        for i in 0..3u64 {
            fr.push(i * 100, ev(i));
        }
        let ats: Vec<u64> = fr.dump().iter().map(|f| f.at).collect();
        assert_eq!(ats, vec![0, 100, 200]);
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let a = FlightRecorder::new(16);
        let b = FlightRecorder::new(16);
        for i in 0..5u64 {
            a.push(i, ev(i));
            b.push(i, ev(i));
        }
        assert_eq!(a.digest(), b.digest());
        b.push(5, ev(5));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn works_as_participant_observer() {
        use ar_core::{Participant, ProtocolConfig, ServiceType};
        use bytes::Bytes;

        let fr = FlightRecorder::shared(64);
        let mut p = Participant::new_singleton(0.into(), ProtocolConfig::accelerated()).unwrap();
        p.set_observer(fr.clone());
        p.observe_now(42_000);
        p.submit(Bytes::from_static(b"x"), ServiceType::Agreed)
            .unwrap();
        let _ = p.start();
        assert!(fr.total() > 0, "observer saw protocol events");
        assert!(fr.dump().iter().all(|f| f.at == 42_000));
        let names: Vec<&str> = fr.dump().iter().map(|f| f.ev.name()).collect();
        assert!(names.contains(&"token-rx"), "{names:?}");
    }

    #[test]
    fn clear_keeps_total() {
        let fr = FlightRecorder::new(4);
        fr.push(1, ev(1));
        fr.push(2, ev(2));
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.total(), 2);
        fr.push(3, ev(3));
        assert_eq!(fr.dump().len(), 1);
    }
}
