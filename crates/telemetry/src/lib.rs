//! # ar-telemetry — low-overhead observability for the ring stack
//!
//! Instrumentation primitives shared by every layer of the repository:
//!
//! - [`LogLinearHistogram`] / [`AtomicHistogram`]: bounded,
//!   allocation-free latency histograms with ~0.2% quantization error
//!   (HdrHistogram-style log-linear bucketing). The plain variant is
//!   single-writer and mergeable; the atomic variant takes concurrent
//!   writers lock-free.
//! - [`MetricsRegistry`]: named counters, gauges, and histograms with
//!   Prometheus text and JSON exposition, updated through cheap cloned
//!   handles.
//! - [`FlightRecorder`]: a bounded ring of recent protocol events,
//!   pluggable into [`Participant`](ar_core::Participant) via the
//!   [`Observer`](ar_core::Observer) hook; dumped on failure for
//!   post-mortems and digestible for determinism checks.
//! - [`json`]: a dependency-free JSON writer/parser used for metric
//!   snapshots and `BENCH_*.json` result files.
//!
//! The crate deliberately depends only on `ar-core` (for the event
//! types) and `parking_lot`, and performs no I/O of its own: exposition
//! returns `String`s for the caller to serve or write. Timestamps are
//! injected by the caller everywhere (see
//! [`Participant::observe_now`](ar_core::Participant::observe_now)),
//! preserving the sans-io core's determinism.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod registry;

pub use flight::{FlightEvent, FlightRecorder};
pub use hist::{AtomicHistogram, LogLinearHistogram, SUB_BUCKET_BITS};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, EXPORT_QUANTILES};
