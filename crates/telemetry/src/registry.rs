//! A process-wide metric registry with Prometheus and JSON exposition.
//!
//! Metrics are registered once by name (registration takes a lock;
//! idempotent re-registration returns the existing handle) and then
//! updated lock-free through cheap `Arc`-backed handles:
//! [`Counter`] and [`Gauge`] are single atomics, [`Histogram`] wraps an
//! [`AtomicHistogram`](crate::AtomicHistogram). The registry renders
//! the whole set as Prometheus text exposition (histograms as
//! `summary`-typed quantile series) or as a JSON snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::AtomicHistogram;
use crate::json::JsonWriter;

/// Quantiles exported for every histogram, in exposition order:
/// `(quantile, Prometheus label, JSON key)`.
pub const EXPORT_QUANTILES: [(f64, &str, &str); 4] = [
    (0.5, "0.5", "p50"),
    (0.9, "0.9", "p90"),
    (0.99, "0.99", "p99"),
    (0.999, "0.999", "p999"),
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared histogram handle; `record` is lock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one value (e.g. a latency in nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// A point-in-time copy for analysis.
    pub fn snapshot(&self) -> crate::LogLinearHistogram {
        self.0.snapshot()
    }
}

enum Metric {
    Counter { v: Counter },
    Gauge { v: Gauge },
    Histogram { v: Histogram },
}

/// One registered series: the family name, an optional label set
/// (rendered inside `{...}`), and the metric itself.
struct Entry {
    base: String,
    labels: String,
    help: String,
    metric: Metric,
}

/// The registry: a named set of counters, gauges, and histograms.
/// Series within one family are distinguished by a label set (e.g.
/// `shard="0"`), so N ring shards can export the same metric names
/// side by side.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

/// The BTreeMap key for a series: `name` or `name{labels}`. Sorted
/// iteration keeps every series of one family adjacent, so the
/// renderers emit `# HELP`/`# TYPE` once per family.
fn series_key(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics.lock();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &m.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, "", help)
    }

    /// Registers (or retrieves) a counter named `name` carrying a
    /// label set, e.g. `counter_labeled("ar_x_total", "shard=\"2\"", …)`
    /// renders as `ar_x_total{shard="2"}`.
    ///
    /// # Panics
    /// If the series is already registered as a different metric kind.
    pub fn counter_labeled(&self, name: &str, labels: &str, help: &str) -> Counter {
        let mut m = self.metrics.lock();
        let key = series_key(name, labels);
        match &m
            .entry(key)
            .or_insert_with(|| Entry {
                base: name.to_string(),
                labels: labels.to_string(),
                help: help.to_string(),
                metric: Metric::Counter {
                    v: Counter::default(),
                },
            })
            .metric
        {
            Metric::Counter { v } => v.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_labeled(name, "", help)
    }

    /// Registers (or retrieves) a gauge carrying a label set (see
    /// [`counter_labeled`](MetricsRegistry::counter_labeled)).
    ///
    /// # Panics
    /// If the series is already registered as a different metric kind.
    pub fn gauge_labeled(&self, name: &str, labels: &str, help: &str) -> Gauge {
        let mut m = self.metrics.lock();
        let key = series_key(name, labels);
        match &m
            .entry(key)
            .or_insert_with(|| Entry {
                base: name.to_string(),
                labels: labels.to_string(),
                help: help.to_string(),
                metric: Metric::Gauge {
                    v: Gauge::default(),
                },
            })
            .metric
        {
            Metric::Gauge { v } => v.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_labeled(name, "", help)
    }

    /// Registers (or retrieves) a histogram carrying a label set (see
    /// [`counter_labeled`](MetricsRegistry::counter_labeled)). The
    /// exported quantile series merge the label set with the
    /// `quantile` label.
    ///
    /// # Panics
    /// If the series is already registered as a different metric kind.
    pub fn histogram_labeled(&self, name: &str, labels: &str, help: &str) -> Histogram {
        let mut m = self.metrics.lock();
        let key = series_key(name, labels);
        match &m
            .entry(key)
            .or_insert_with(|| Entry {
                base: name.to_string(),
                labels: labels.to_string(),
                help: help.to_string(),
                metric: Metric::Histogram {
                    v: Histogram::default(),
                },
            })
            .metric
        {
            Metric::Histogram { v } => v.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4). Histograms are rendered as `summary` metrics
    /// with `quantile` labels plus `_count` and `_sum` series.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let m = self.metrics.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, entry) in m.iter() {
            let name = &entry.base;
            let labels = &entry.labels;
            let help = &entry.help;
            // Sorted keys keep a family's labelled series adjacent;
            // emit the HELP/TYPE header once per family.
            let header = *name != last_family;
            if header {
                last_family = name.clone();
            }
            match &entry.metric {
                Metric::Counter { v } => {
                    if header {
                        let _ = writeln!(out, "# HELP {name} {help}");
                        let _ = writeln!(out, "# TYPE {name} counter");
                    }
                    let _ = writeln!(out, "{key} {}", v.get());
                }
                Metric::Gauge { v } => {
                    if header {
                        let _ = writeln!(out, "# HELP {name} {help}");
                        let _ = writeln!(out, "# TYPE {name} gauge");
                    }
                    let _ = writeln!(out, "{key} {}", v.get());
                }
                Metric::Histogram { v } => {
                    let snap = v.snapshot();
                    if header {
                        let _ = writeln!(out, "# HELP {name} {help}");
                        let _ = writeln!(out, "# TYPE {name} summary");
                    }
                    for (q, label, _) in EXPORT_QUANTILES {
                        let qlabels = if labels.is_empty() {
                            format!("quantile=\"{label}\"")
                        } else {
                            format!("{labels},quantile=\"{label}\"")
                        };
                        let _ = writeln!(out, "{name}{{{qlabels}}} {}", snap.value_at_quantile(q));
                    }
                    let suffix = series_key("", labels);
                    let _ = writeln!(out, "{name}_count{suffix} {}", snap.count());
                    let _ = writeln!(out, "{name}_sum{suffix} {}", snap.sum());
                }
            }
        }
        out
    }

    /// Renders every metric as a JSON object keyed by metric name.
    /// Counters and gauges are numbers; histograms are objects with
    /// `count`, `sum`, `min`, `max`, `mean`, and `p50/p90/p99/p999`.
    pub fn render_json(&self) -> String {
        let m = self.metrics.lock();
        let mut w = JsonWriter::new();
        w.begin_object();
        for (key, entry) in m.iter() {
            w.key(key);
            match &entry.metric {
                Metric::Counter { v } => w.num_u64(v.get()),
                Metric::Gauge { v } => w.num_i64(v.get()),
                Metric::Histogram { v } => {
                    let snap = v.snapshot();
                    w.begin_object();
                    w.key("count");
                    w.num_u64(snap.count());
                    w.key("sum");
                    w.num_f64(snap.sum() as f64);
                    w.key("min");
                    w.num_u64(snap.min());
                    w.key("max");
                    w.num_u64(snap.max());
                    w.key("mean");
                    w.num_f64(snap.mean());
                    for (q, _, key) in EXPORT_QUANTILES {
                        w.key(key);
                        w.num_u64(snap.value_at_quantile(q));
                    }
                    w.end_object();
                }
            }
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("ar_tokens_total", "Tokens handled");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent re-registration returns the same underlying value.
        assert_eq!(r.counter("ar_tokens_total", "Tokens handled").get(), 5);

        let g = r.gauge("ar_queue_depth", "Pending sends");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", "a counter");
        r.gauge("x", "now a gauge");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = MetricsRegistry::new();
        r.counter("ar_a_total", "A").add(3);
        r.gauge("ar_b", "B").set(-1);
        let h = r.histogram("ar_lat_ns", "Latency");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ar_a_total counter"));
        assert!(text.contains("ar_a_total 3"));
        assert!(text.contains("ar_b -1"));
        assert!(text.contains("# TYPE ar_lat_ns summary"));
        assert!(text.contains("ar_lat_ns{quantile=\"0.5\"} 50"));
        assert!(text.contains("ar_lat_ns_count 100"));
        assert!(text.contains("ar_lat_ns_sum 5050"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(parts.next().is_some(), "missing name in {line:?}");
        }
    }

    #[test]
    fn labeled_series_are_distinct_and_render_with_labels() {
        let r = MetricsRegistry::new();
        let s0 = r.counter_labeled("ar_shard_msgs_total", "shard=\"0\"", "Msgs");
        let s1 = r.counter_labeled("ar_shard_msgs_total", "shard=\"1\"", "Msgs");
        s0.add(3);
        s1.add(5);
        // Distinct series despite the shared family name.
        assert_eq!(s0.get(), 3);
        assert_eq!(s1.get(), 5);
        let g = r.gauge_labeled("ar_shard_depth", "shard=\"1\"", "Depth");
        g.set(-2);
        let h = r.histogram_labeled("ar_shard_lat_ns", "shard=\"0\"", "Lat");
        h.record(7);

        let text = r.render_prometheus();
        assert!(
            text.contains("ar_shard_msgs_total{shard=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ar_shard_msgs_total{shard=\"1\"} 5"),
            "{text}"
        );
        assert!(text.contains("ar_shard_depth{shard=\"1\"} -2"), "{text}");
        assert!(
            text.contains("ar_shard_lat_ns{shard=\"0\",quantile=\"0.5\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("ar_shard_lat_ns_count{shard=\"0\"} 1"),
            "{text}"
        );
        // One HELP/TYPE header per family, not per series.
        assert_eq!(
            text.matches("# TYPE ar_shard_msgs_total counter").count(),
            1,
            "{text}"
        );
        // Every non-comment line still parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }

        let v = crate::json::Value::parse(&r.render_json()).expect("valid json");
        assert_eq!(
            v.get("ar_shard_msgs_total{shard=\"1\"}")
                .and_then(crate::json::Value::as_f64),
            Some(5.0)
        );
    }

    #[test]
    fn json_rendering_parses_back() {
        use crate::json::Value;
        let r = MetricsRegistry::new();
        r.counter("c", "C").add(2);
        let h = r.histogram("h", "H");
        h.record(10);
        h.record(20);
        let v = Value::parse(&r.render_json()).expect("valid json");
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(2.0));
        let hist = v.get("h").expect("histogram object");
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(hist.get("min").and_then(Value::as_f64), Some(10.0));
        assert_eq!(hist.get("max").and_then(Value::as_f64), Some(20.0));
        assert!(hist.get("p50").is_some());
        assert!(hist.get("p999").is_some());
    }
}
