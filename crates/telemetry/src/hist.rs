//! Bounded log-linear histograms (HdrHistogram-style).
//!
//! Values are `u64` (nanoseconds, bytes, counts — unit is the caller's
//! business). The value range is divided into buckets whose width grows
//! with magnitude: values below `2^SUB_BUCKET_BITS` are recorded
//! exactly; above that, each power-of-two range is split into
//! `2^(SUB_BUCKET_BITS - 1)` equal sub-buckets, bounding the relative
//! quantization error at `2^-(SUB_BUCKET_BITS - 1)` (< 0.2% here).
//!
//! [`LogLinearHistogram::record`] is branch-light integer math into a
//! fixed, pre-allocated array — no allocation, no floating point —
//! which keeps it in the tens-of-nanoseconds range. Histograms merge
//! exactly (bucket-wise addition), so per-thread or per-node histograms
//! can be combined for a fleet view. [`AtomicHistogram`] is the
//! shared-writer variant: relaxed atomic increments, lock-free,
//! snapshot on read.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision: values `< 2^10 = 1024` are exact; larger
/// values have at most `2^-9` (~0.2%) relative quantization error.
pub const SUB_BUCKET_BITS: u32 = 10;

const SUB_BUCKET_COUNT: usize = 1 << SUB_BUCKET_BITS; // 1024
const SUB_BUCKET_HALF: usize = SUB_BUCKET_COUNT / 2; // 512
/// Number of power-of-two ranges above the exact range (`2^10 ..
/// 2^64`).
const EXP_RANGES: usize = 64 - SUB_BUCKET_BITS as usize; // 54
/// Total bucket-array length.
pub(crate) const BUCKETS: usize = SUB_BUCKET_COUNT + EXP_RANGES * SUB_BUCKET_HALF;

/// Maps a value to its bucket index. Exact for `v < 1024`; log-linear
/// above.
#[inline]
pub(crate) fn index_of(v: u64) -> usize {
    if v < SUB_BUCKET_COUNT as u64 {
        v as usize
    } else {
        // Highest set bit (>= SUB_BUCKET_BITS here).
        let exp = 63 - v.leading_zeros();
        let shift = exp - (SUB_BUCKET_BITS - 1);
        let sub = (v >> shift) as usize - SUB_BUCKET_HALF;
        SUB_BUCKET_COUNT + (exp - SUB_BUCKET_BITS) as usize * SUB_BUCKET_HALF + sub
    }
}

/// Lowest value mapping to bucket `idx` (the histogram's quantile
/// estimates report this bound, so estimates never exceed the true
/// value).
#[inline]
pub(crate) fn lower_bound_of(idx: usize) -> u64 {
    if idx < SUB_BUCKET_COUNT {
        idx as u64
    } else {
        let rel = idx - SUB_BUCKET_COUNT;
        let exp = SUB_BUCKET_BITS + (rel / SUB_BUCKET_HALF) as u32;
        let sub = (rel % SUB_BUCKET_HALF) as u64 + SUB_BUCKET_HALF as u64;
        sub << (exp - (SUB_BUCKET_BITS - 1))
    }
}

/// A single-writer log-linear histogram with exact count/sum/min/max.
#[derive(Clone)]
pub struct LogLinearHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

impl std::fmt::Debug for LogLinearHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLinearHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl LogLinearHistogram {
    /// Creates an empty histogram (one fixed ~224 KiB allocation; all
    /// subsequent operations are allocation-free).
    pub fn new() -> LogLinearHistogram {
        LogLinearHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("fixed length"),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Records a value `n` times.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Adds every recorded value of `other` into `self` (exact).
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket containing the `ceil(q * count)`-th smallest recording
    /// (so values below 1024 are exact and larger ones under-report by
    /// at most ~0.2%). Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Tighten the outer buckets with the exact extremes.
                return lower_bound_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Count of recordings at or below `v`.
    pub fn count_at_or_below(&self, v: u64) -> u64 {
        let idx = index_of(v);
        self.counts[..=idx].iter().sum()
    }

    /// Upper quantization error bound for a recorded value `v`: the
    /// true value lies in `[reported, reported + equivalent_range(v))`.
    pub fn equivalent_range(v: u64) -> u64 {
        if v < SUB_BUCKET_COUNT as u64 {
            1
        } else {
            let exp = 63 - v.leading_zeros();
            1u64 << (exp - (SUB_BUCKET_BITS - 1))
        }
    }

    /// Clears all recordings.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

/// The shared-writer variant: every cell is an atomic, all updates are
/// `Relaxed` fetch-adds (lock-free, no writer coordination). Reads take
/// a [`snapshot`](AtomicHistogram::snapshot); a snapshot taken while
/// writers are active is a consistent-enough view for monitoring (the
/// per-field counters may straddle a concurrent record by one sample).
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    /// Creates an empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value; lock-free and allocation-free, callable from
    /// any thread through a shared reference.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain histogram for analysis.
    pub fn snapshot(&self) -> LogLinearHistogram {
        let mut h = LogLinearHistogram::new();
        let mut count = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                h.counts[i] = n;
                count += n;
            }
        }
        h.count = count;
        h.sum = u128::from(self.sum.load(Ordering::Relaxed));
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }

    /// Clears all recordings (not atomic with respect to concurrent
    /// writers; intended for tests and controlled resets).
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new();
        for v in 0..1024u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1024);
        for v in [0u64, 1, 13, 512, 1023] {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(lower_bound_of(index_of(v)), v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 1023);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1023);
    }

    #[test]
    fn index_and_bound_are_consistent_across_the_range() {
        for v in [
            0u64,
            1,
            1023,
            1024,
            1025,
            4096,
            123_456,
            1_000_000,
            u64::from(u32::MAX),
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = index_of(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            let lo = lower_bound_of(idx);
            assert!(lo <= v, "{lo} > {v}");
            let width = LogLinearHistogram::equivalent_range(v);
            assert!(v - lo < width, "v={v} lo={lo} width={width}");
            // The lower bound maps back to the same bucket.
            assert_eq!(index_of(lo), idx);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [2_000u64, 30_000, 7_777_777, 123_456_789_012] {
            let lo = lower_bound_of(index_of(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 1.0 / 512.0, "v={v} err={err}");
        }
    }

    #[test]
    fn quantiles_track_exact_on_uniform_data() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 10); // 10..=1000, all exact
        }
        assert_eq!(h.value_at_quantile(0.5), 500);
        assert_eq!(h.value_at_quantile(0.99), 990);
        assert_eq!(h.value_at_quantile(1.0), 1000);
        assert!((h.mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        let mut whole = LogLinearHistogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1_000_000);
            whole.record(v * 7 + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        a.record_n(42, 5);
        a.record_n(9_999, 3);
        for _ in 0..5 {
            b.record(42);
        }
        for _ in 0..3 {
            b.record(9_999);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.value_at_quantile(0.5), b.value_at_quantile(0.5));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogLinearHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = LogLinearHistogram::new();
        for v in [5u64, 5, 900, 12_345, 700_000] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.sum(), h.sum());
        assert_eq!(snap.min(), h.min());
        assert_eq!(snap.max(), h.max());
        assert_eq!(snap.value_at_quantile(0.5), h.value_at_quantile(0.5));
    }

    #[test]
    fn atomic_histogram_is_shareable_across_threads() {
        use std::sync::Arc;
        let ah = Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ah = ah.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ah.record(t * 1_000 + (i % 997));
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(ah.count(), 40_000);
        assert_eq!(ah.snapshot().count(), 40_000);
    }

    #[test]
    fn count_at_or_below_is_monotone() {
        let mut h = LogLinearHistogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_at_or_below(0), 0);
        assert_eq!(h.count_at_or_below(1), 1);
        assert_eq!(h.count_at_or_below(150), 3);
        assert_eq!(h.count_at_or_below(u64::MAX / 2), 6);
    }
}
