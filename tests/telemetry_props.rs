//! Property tests for the telemetry subsystem: the log-linear
//! histogram's quantile error bound against an exact oracle, exactness
//! of histogram merging, and flight-recorder ring-buffer wraparound.

use accelerated_ring::telemetry::{FlightRecorder, LogLinearHistogram};
use proptest::prelude::*;

/// Exact quantile oracle matching the histogram's rank rule: the
/// `ceil(q * n)`-th smallest sample (1-based), clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// Every reported quantile is a lower bound on the exact one, off
    /// by less than the bucket width at that magnitude (< 0.2%
    /// relative; exact below 1024).
    #[test]
    fn quantiles_stay_within_the_documented_error_bound(
        mut values in proptest::collection::vec(1u64..1u64 << 48, 1..300),
        // Deliberately overshoots 1.0: both sides clamp the rank.
        q in 0.0f64..1.001,
    ) {
        let mut h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_quantile(&values, q);
        let reported = h.value_at_quantile(q);
        prop_assert!(reported <= exact, "reported {reported} > exact {exact}");
        prop_assert!(
            exact - reported < LogLinearHistogram::equivalent_range(exact),
            "exact {exact} - reported {reported} >= bucket width {}",
            LogLinearHistogram::equivalent_range(exact)
        );
    }

    /// Merging two histograms is exactly equivalent to recording both
    /// sample sets into one.
    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(1u64..1u64 << 40, 0..150),
        b in proptest::collection::vec(1u64..1u64 << 40, 0..150),
    ) {
        let mut ha = LogLinearHistogram::new();
        let mut hb = LogLinearHistogram::new();
        let mut hu = LogLinearHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.sum(), hu.sum());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q), "q={}", q);
        }
    }

    /// The flight recorder retains exactly the last
    /// `min(pushed, capacity)` events, oldest first, across arbitrary
    /// wraparound.
    #[test]
    fn flight_recorder_wraparound_keeps_the_newest_tail(
        capacity in 1usize..40,
        pushed in 0usize..200,
    ) {
        use accelerated_ring::core::ProtoEvent;
        let fr = FlightRecorder::new(capacity);
        for i in 0..pushed {
            fr.push(i as u64, ProtoEvent::MsgPostToken { seq: i as u64 });
        }
        let want = pushed.min(capacity);
        prop_assert_eq!(fr.len(), want);
        prop_assert_eq!(fr.total(), pushed as u64);
        let ats: Vec<u64> = fr.dump().iter().map(|f| f.at).collect();
        let expect: Vec<u64> = ((pushed - want)..pushed).map(|i| i as u64).collect();
        prop_assert_eq!(ats, expect);
    }
}
