//! Property tests for the durable log: record codec round-trips
//! byte-exactly, and recovery survives arbitrary tail truncation and
//! bit corruption without panicking or resurrecting records past the
//! first bad CRC.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use accelerated_ring::core::{ParticipantId, RingId, Seq, ServiceType};
use accelerated_ring::log::{
    decode_record, encode_record, read_log_dir, DeliveryRecord, FsyncPolicy, LogConfig, LogRecord,
    SegmentedLog,
};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_pid() -> impl Strategy<Value = ParticipantId> {
    any::<u16>().prop_map(ParticipantId::new)
}

fn arb_ring_id() -> impl Strategy<Value = RingId> {
    (arb_pid(), any::<u64>()).prop_map(|(p, s)| RingId::new(p, s))
}

fn arb_service() -> impl Strategy<Value = ServiceType> {
    prop_oneof![
        Just(ServiceType::Reliable),
        Just(ServiceType::Fifo),
        Just(ServiceType::Causal),
        Just(ServiceType::Agreed),
        Just(ServiceType::Safe),
    ]
}

fn arb_delivery() -> impl Strategy<Value = DeliveryRecord> {
    (
        arb_ring_id(),
        any::<u64>(),
        arb_pid(),
        arb_service(),
        prop::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(ring, seq, pid, service, payload)| DeliveryRecord {
            ring,
            seq: Seq::new(seq),
            pid,
            service,
            payload: Bytes::from(payload),
        })
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        arb_delivery().prop_map(LogRecord::Delivery),
        (arb_ring_id(), any::<u64>()).prop_map(|(ring, seq)| LogRecord::Cursor {
            ring,
            seq: Seq::new(seq),
        }),
        (arb_ring_id(), prop::collection::vec(arb_pid(), 0..16))
            .prop_map(|(ring, members)| LogRecord::Ring { ring, members }),
    ]
}

/// A fresh scratch directory per proptest case.
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ar-log-props-{}-{n}", std::process::id()))
}

proptest! {
    /// encode → decode returns the same record and consumes exactly
    /// the bytes encode produced; re-encoding is byte-identical.
    #[test]
    fn record_roundtrip_is_byte_exact(rec in arb_record(), suffix in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = Vec::new();
        let written = encode_record(&rec, &mut bytes);
        prop_assert_eq!(written, bytes.len());

        // Decoding must not read past its own record even with junk after it.
        let mut framed = bytes.clone();
        framed.extend_from_slice(&suffix);
        let (decoded, consumed) = decode_record(&framed)
            .expect("well-formed record decodes")
            .expect("non-empty buffer yields a record");
        prop_assert_eq!(consumed, written);
        prop_assert_eq!(&decoded, &rec);

        let mut again = Vec::new();
        encode_record(&decoded, &mut again);
        prop_assert_eq!(again, bytes);
    }

    /// Truncating the log file anywhere never panics recovery, and
    /// recovery yields exactly the records wholly contained in the
    /// surviving bytes — a clean prefix, nothing resurrected.
    #[test]
    fn truncated_tail_recovers_clean_prefix(
        records in prop::collection::vec(arb_record(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch_dir();
        let cfg = LogConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_segment_bytes(1 << 20); // one segment: offsets are file offsets
        let (mut log, _) = SegmentedLog::open(cfg.clone()).unwrap();
        // Byte offset where each record ends.
        let mut ends = Vec::with_capacity(records.len());
        let mut off = 0usize;
        for rec in &records {
            let mut buf = Vec::new();
            off += encode_record(rec, &mut buf);
            ends.push(off);
            log.append(rec).unwrap();
        }
        drop(log);

        let seg = std::fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .expect("segment file exists");
        let cut = (off as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let survivors = ends.iter().filter(|&&e| e as u64 <= cut).count();
        let recovered = read_log_dir(&dir).unwrap();
        prop_assert_eq!(recovered.records, survivors as u64);
        let (_, after) = SegmentedLog::open(cfg).unwrap();
        prop_assert_eq!(after.records, survivors as u64);
        // The surviving deliveries are exactly the original prefix's.
        let expect: Vec<&DeliveryRecord> = records[..survivors].iter()
            .filter_map(|r| match r { LogRecord::Delivery(d) => Some(d), _ => None })
            .collect();
        let got: Vec<&DeliveryRecord> = after.deliveries.iter().map(|(_, d)| d).collect();
        prop_assert_eq!(got, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping any single bit never panics recovery and never
    /// resurrects a record at or past the flipped byte: the recovered
    /// stream is a prefix of the original, intact up to the record the
    /// flip landed in.
    #[test]
    fn bit_flip_never_resurrects_past_first_bad_crc(
        records in prop::collection::vec(arb_record(), 1..12),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir();
        let cfg = LogConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_segment_bytes(1 << 20);
        let (mut log, _) = SegmentedLog::open(cfg).unwrap();
        let mut ends = Vec::with_capacity(records.len());
        let mut off = 0usize;
        for rec in &records {
            let mut buf = Vec::new();
            off += encode_record(rec, &mut buf);
            ends.push(off);
            log.append(rec).unwrap();
        }
        drop(log);

        let seg = std::fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .expect("segment file exists");
        let mut bytes = std::fs::read(&seg).unwrap();
        let pos = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();

        // Records wholly before the flipped byte are untouched; the
        // record containing the flip and everything after must die.
        let intact = ends.iter().filter(|&&e| e <= pos).count();
        let recovered = read_log_dir(&dir).unwrap();
        prop_assert_eq!(recovered.records, intact as u64,
            "flip at byte {} (record ends {:?})", pos, ends);
        let expect: Vec<&DeliveryRecord> = records[..intact].iter()
            .filter_map(|r| match r { LogRecord::Delivery(d) => Some(d), _ => None })
            .collect();
        let got: Vec<&DeliveryRecord> = recovered.deliveries.iter().map(|(_, d)| d).collect();
        prop_assert_eq!(got, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
