//! Property tests of the adaptive failure-detection controller
//! (`ar_core::adaptive`): derived timeouts are always clamped and
//! valid, the derivation is monotone in the rotation estimate, and the
//! controller is a pure function of its sample sequence (the
//! determinism the nemesis harness relies on for resume).

use accelerated_ring::core::{
    derive_timeouts, AdaptiveConfig, AdaptiveTimeouts, FlapDampingConfig, Participant,
    ParticipantId, ProtocolConfig, TimeoutConfig,
};
use proptest::prelude::*;

/// Policies with valid but varied quantiles, factors, and clamp bands.
///
/// Every generated policy passes `AdaptiveConfig::validate` by
/// construction: quantiles stay in (0, 1], factors are at least 1,
/// floors are at least 1 and each ceiling is its floor scaled up, and
/// the sample window is at least `min_samples`.
fn arb_policy() -> impl Strategy<Value = AdaptiveConfig> {
    (
        (0.01f64..0.999, 1.0f64..32.0, 1.0f64..8.0, 1.0f64..64.0),
        (
            1u64..10_000_000,
            1u64..1_000_000,
            1u64..20_000_000,
            1usize..32,
            1usize..64,
        ),
    )
        .prop_map(
            |(
                (quantile, loss_factor, retransmit_factor, consensus_factor),
                (loss_floor, retransmit_floor, consensus_floor, min_samples, extra_window),
            )| {
                AdaptiveConfig {
                    quantile,
                    loss_factor,
                    retransmit_factor,
                    consensus_factor,
                    token_loss_floor: loss_floor,
                    token_loss_ceiling: loss_floor.saturating_mul(1000),
                    token_retransmit_floor: retransmit_floor,
                    token_retransmit_ceiling: retransmit_floor.saturating_mul(1000),
                    consensus_floor,
                    consensus_ceiling: consensus_floor.saturating_mul(1000),
                    min_samples,
                    // window >= min_samples so adaptation can trigger.
                    window: min_samples + extra_window,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every derived timeout lies within its configured clamp band and
    /// the derived table always passes `TimeoutConfig::validate` (no
    /// zero or inverted relations, whatever the rotation input).
    #[test]
    fn derived_timeouts_are_clamped_and_valid(
        policy in arb_policy(),
        rotation in any::<u64>(),
    ) {
        let base = TimeoutConfig::default();
        let t = derive_timeouts(&base, &policy, rotation);
        prop_assert!(t.token_loss >= policy.token_loss_floor);
        prop_assert!(t.token_loss <= policy.token_loss_ceiling);
        prop_assert!(t.consensus >= policy.consensus_floor);
        prop_assert!(t.consensus <= policy.consensus_ceiling);
        // The retransmit value may sit below its floor only because it
        // was forced under the loss timeout.
        prop_assert!(
            t.token_retransmit >= policy.token_retransmit_floor
                || t.token_retransmit < t.token_loss
        );
        prop_assert!(t.token_retransmit <= policy.token_retransmit_ceiling);
        prop_assert!(t.validate().is_ok(), "derived config invalid: {t:?}");
        // Untouched fields carry over from the base.
        prop_assert_eq!(t.join, base.join);
        prop_assert_eq!(t.commit, base.commit);
        prop_assert_eq!(t.token_retransmit_limit, base.token_retransmit_limit);
    }

    /// A slower measured rotation never yields *tighter* timeouts.
    #[test]
    fn derivation_is_monotone_in_rotation(
        policy in arb_policy(),
        a in 0u64..u64::MAX / 2,
        b in 0u64..u64::MAX / 2,
    ) {
        let base = TimeoutConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = derive_timeouts(&base, &policy, lo);
        let t_hi = derive_timeouts(&base, &policy, hi);
        prop_assert!(t_lo.token_loss <= t_hi.token_loss);
        prop_assert!(t_lo.consensus <= t_hi.consensus);
    }

    /// The controller is deterministic: replaying the same sample
    /// sequence yields the identical policy trace, change flags, and
    /// update counts.
    #[test]
    fn controller_is_deterministic_across_reruns(
        policy in arb_policy(),
        samples in prop::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let base = TimeoutConfig::default();
        let run = |samples: &[u64]| {
            let mut ctl = AdaptiveTimeouts::new(base, policy).unwrap();
            let mut trace = Vec::new();
            for &s in samples {
                let changed = ctl.record_rotation(s);
                trace.push((changed, ctl.current()));
            }
            (trace, ctl.updates(), ctl.rotation_quantile())
        };
        prop_assert_eq!(run(&samples), run(&samples));
    }

    /// Whatever the sample stream, the policy the controller installs
    /// is exactly the pure derivation at its current quantile estimate
    /// — and stays the base policy until `min_samples` arrive.
    #[test]
    fn controller_tracks_pure_derivation(
        policy in arb_policy(),
        samples in prop::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let base = TimeoutConfig::default();
        let mut ctl = AdaptiveTimeouts::new(base, policy).unwrap();
        for (i, &s) in samples.iter().enumerate() {
            ctl.record_rotation(s);
            if i + 1 < policy.min_samples {
                prop_assert_eq!(ctl.current(), base);
            } else {
                let q = ctl.rotation_quantile().unwrap();
                prop_assert_eq!(ctl.current(), derive_timeouts(&base, &policy, q));
            }
        }
    }
}

// ----- flap-damping decay properties ------------------------------------

/// Valid, varied flap-damping policies with the feature enabled.
///
/// `reuse_threshold` is kept at least 1: with a reuse threshold of
/// zero a fully decayed score (which *is* zero) could never drop below
/// it and quarantine would be permanent by construction — the policies
/// the damping code is meant for always allow reinstatement.
/// Half-lives are kept short so the "quarantine lifts" bound stays
/// cheap to step through.
fn arb_damping() -> impl Strategy<Value = FlapDampingConfig> {
    (1u32..5_000, 1u32..10_000, 1u64..48, 1u32..4_000).prop_map(
        |(penalty_per_flap, suppress_threshold, half_life_rounds, reuse_raw)| {
            FlapDampingConfig {
                enabled: true,
                penalty_per_flap,
                suppress_threshold,
                // Reinstatement must be reachable: 1..=suppress_threshold.
                reuse_threshold: 1 + reuse_raw % suppress_threshold,
                half_life_rounds,
                // Cap at or above one flap's worth so scores can move.
                max_penalty: suppress_threshold.saturating_mul(4).max(penalty_per_flap),
            }
        },
    )
}

/// A lone participant whose flap-damping machinery can be driven
/// directly through the public `penalize`/`decay_penalties` API.
fn damped_participant(damping: FlapDampingConfig) -> Participant {
    let cfg = ProtocolConfig {
        flap_damping: damping,
        ..ProtocolConfig::accelerated()
    };
    Participant::new_singleton(ParticipantId::new(0), cfg).expect("valid damping config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Across quiet rounds (no new flaps) a member's penalty score is
    /// monotone non-increasing, never resurrects once it reaches zero,
    /// and the quarantined population never grows.
    #[test]
    fn penalty_is_monotone_nonincreasing_across_quiet_rounds(
        damping in arb_damping(),
        flaps in 1u32..24,
        quiet_rounds in 1u64..512,
    ) {
        let mut p = damped_participant(damping);
        let flapper = ParticipantId::new(7);
        for _ in 0..flaps {
            p.penalize(flapper);
        }
        let mut prev_score = p.flap_penalty(flapper);
        let mut prev_quarantined = p.quarantined_count();
        prop_assert!(prev_score <= damping.max_penalty);
        for round in 0..quiet_rounds {
            p.decay_penalties();
            let score = p.flap_penalty(flapper);
            prop_assert!(
                score <= prev_score,
                "score rose {prev_score} -> {score} at quiet round {round}"
            );
            if prev_score == 0 {
                prop_assert_eq!(score, 0, "zero score resurrected at round {}", round);
            }
            let quarantined = p.quarantined_count();
            prop_assert!(
                quarantined <= prev_quarantined,
                "quiet decay grew the quarantine set at round {round}"
            );
            prev_score = score;
            prev_quarantined = quarantined;
        }
    }

    /// A quarantined member is always reinstated after enough quiet
    /// rounds: scores are capped at `max_penalty` (< 2^32) and halve
    /// every `half_life_rounds`, so within 33 half-lives the score is
    /// zero, which is below every admissible reuse threshold.
    #[test]
    fn quarantine_always_lifts_under_quiet_decay(
        damping in arb_damping(),
        extra_flaps in 0u32..8,
    ) {
        let mut p = damped_participant(damping);
        let flapper = ParticipantId::new(3);
        // Flap until quarantined (the cap guarantees this terminates:
        // ceil(suppress/penalty) charges reach the threshold).
        let needed = damping.suppress_threshold.div_ceil(damping.penalty_per_flap) + extra_flaps;
        for _ in 0..needed {
            p.penalize(flapper);
        }
        prop_assert!(p.is_quarantined(flapper), "never entered quarantine");
        let bound = damping.half_life_rounds * 34;
        let mut lifted_at = None;
        for round in 0..=bound {
            if !p.is_quarantined(flapper) {
                lifted_at = Some(round);
                break;
            }
            p.decay_penalties();
        }
        prop_assert!(
            lifted_at.is_some(),
            "still quarantined after {bound} quiet rounds (score {})",
            p.flap_penalty(flapper)
        );
        // Reinstatement is stable: staying quiet never re-quarantines.
        for _ in 0..damping.half_life_rounds * 2 {
            p.decay_penalties();
            prop_assert!(!p.is_quarantined(flapper));
        }
    }
}
