//! A deterministic, lossy, in-memory network harness for protocol-level
//! integration and property tests.
//!
//! Unlike the discrete-event simulator (which models time), this
//! harness models only *message order and loss*: messages are delivered
//! FIFO, each copy is dropped independently with a configured
//! probability, and the test driver fires protocol timers explicitly to
//! model timeouts. Determinism comes from a seeded RNG.

use std::collections::VecDeque;

use accelerated_ring::core::{
    Action, ConfigChange, Delivery, Message, Participant, ParticipantId, ProtocolConfig, RingId,
    ServiceType, TimerKind, TokenRuleMonitor,
};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The lossy in-memory network.
pub struct LossyNet {
    /// The participants, indexed by position (pid `i` at index `i`).
    pub parts: Vec<Participant>,
    /// Per-participant delivery logs.
    pub logs: Vec<Vec<Delivery>>,
    /// Per-participant configuration-change logs.
    pub configs: Vec<Vec<ConfigChange>>,
    /// Watches every token put on the wire and accumulates violations
    /// of the retransmission-request rule (rtr entries must not exceed
    /// the previous token's seq).
    pub monitor: TokenRuleMonitor,
    queue: VecDeque<(usize, Message)>,
    rng: StdRng,
    loss: f64,
}

impl LossyNet {
    /// Builds `n` participants on an established ring with the given
    /// protocol configuration and per-copy loss probability.
    pub fn new(n: u16, cfg: ProtocolConfig, loss: f64, seed: u64) -> LossyNet {
        let members: Vec<ParticipantId> = (0..n).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let parts: Vec<Participant> = members
            .iter()
            .map(|&p| Participant::new(p, cfg, ring_id, members.clone()).expect("valid ring"))
            .collect();
        LossyNet {
            logs: vec![Vec::new(); n as usize],
            configs: vec![Vec::new(); n as usize],
            monitor: TokenRuleMonitor::new(),
            parts,
            queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            loss,
        }
    }

    /// Starts every participant (the representative injects the token).
    pub fn start(&mut self) {
        for i in 0..self.parts.len() {
            let actions = self.parts[i].start();
            self.apply_actions(i, actions);
        }
    }

    /// Submits an application message at participant `i`.
    pub fn submit(&mut self, i: usize, payload: Bytes, service: ServiceType) {
        self.parts[i]
            .submit(payload, service)
            .expect("test queues are small");
    }

    fn lose(&mut self) -> bool {
        self.loss > 0.0 && self.rng.gen::<f64>() < self.loss
    }

    fn apply_actions(&mut self, from: usize, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Multicast(m) => {
                    for i in 0..self.parts.len() {
                        if i != from && !self.lose() {
                            self.queue.push_back((i, Message::Data(m.clone())));
                        }
                    }
                }
                Action::MulticastJoin(j) => {
                    for i in 0..self.parts.len() {
                        if i != from && !self.lose() {
                            self.queue.push_back((i, Message::Join(j.clone())));
                        }
                    }
                }
                Action::SendToken { to, token } => {
                    // The rule is judged on what is *sent*, before loss.
                    self.monitor.on_token(&token);
                    let i = to.as_u16() as usize;
                    if !self.lose() {
                        self.queue.push_back((i, Message::Token(token)));
                    }
                }
                Action::SendCommit { to, token } => {
                    let i = to.as_u16() as usize;
                    if !self.lose() {
                        self.queue.push_back((i, Message::Commit(token)));
                    }
                }
                Action::Deliver(d) => self.logs[from].push(d),
                Action::DeliverConfigChange(c) => self.configs[from].push(c),
                Action::SetTimer(_) | Action::CancelTimer(_) => {}
            }
        }
    }

    /// Processes queued messages FIFO, up to `budget` handlings.
    pub fn run(&mut self, budget: usize) {
        let mut steps = 0;
        while let Some((i, msg)) = self.queue.pop_front() {
            let actions = self.parts[i].handle_message(msg);
            self.apply_actions(i, actions);
            steps += 1;
            if steps >= budget {
                break;
            }
        }
    }

    /// True if no messages are in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Fires a timer at every participant and runs the fallout.
    pub fn fire_all(&mut self, kind: TimerKind, budget: usize) {
        for i in 0..self.parts.len() {
            let actions = self.parts[i].handle_timer(kind);
            self.apply_actions(i, actions);
        }
        self.run(budget);
    }

    /// Total messages delivered at participant `i`.
    pub fn delivered(&self, i: usize) -> usize {
        self.logs[i].len()
    }

    /// Drives the network until every participant has delivered
    /// `expected` messages or the escalation budget is exhausted.
    /// Returns true on completion.
    ///
    /// Escalation mirrors what real timers would do: first token
    /// retransmissions, then (rarely) a full membership pass.
    pub fn drive_until_delivered(&mut self, expected: usize, rounds: usize) -> bool {
        for round in 0..rounds {
            self.run(200_000);
            if self.done(expected) {
                return true;
            }
            if self.idle() {
                self.fire_all(TimerKind::TokenRetransmit, 200_000);
            }
            if self.done(expected) {
                return true;
            }
            // Heavier escalation every few rounds: membership recovery.
            if round % 8 == 7 && self.idle() {
                self.fire_all(TimerKind::TokenLoss, 200_000);
                self.fire_all(TimerKind::Join, 200_000);
                self.fire_all(TimerKind::ConsensusTimeout, 200_000);
                self.fire_all(TimerKind::CommitTimeout, 200_000);
                self.fire_all(TimerKind::ConsensusTimeout, 200_000);
            }
        }
        self.done(expected)
    }

    fn done(&self, expected: usize) -> bool {
        self.logs.iter().all(|l| l.len() >= expected)
    }
}

/// Asserts the agreed-delivery safety invariants on the harness logs.
/// These must hold in *every* run, including ones with loss and
/// membership changes:
///
/// 1. no duplicate (ring, seq) in any log;
/// 2. within a ring, sequence numbers are delivered in increasing
///    order;
/// 3. any two participants agree on the payload at each (ring, seq);
/// 4. per-sender FIFO within a ring.
pub fn assert_safety(net: &LossyNet) {
    use std::collections::HashMap;
    let mut payload_at: HashMap<(RingId, u64), (Bytes, ParticipantId)> = HashMap::new();
    for (i, log) in net.logs.iter().enumerate() {
        let mut last_seq: HashMap<RingId, u64> = HashMap::new();
        let mut per_sender_last: HashMap<(RingId, ParticipantId), u64> = HashMap::new();
        for d in log {
            let key = (d.ring_id, d.seq.as_u64());
            // 2. increasing within a ring (also implies 1 within a log)
            if let Some(&prev) = last_seq.get(&d.ring_id) {
                assert!(
                    d.seq.as_u64() > prev,
                    "P{i}: non-increasing seq {} after {} in {:?}",
                    d.seq,
                    prev,
                    d.ring_id
                );
            }
            last_seq.insert(d.ring_id, d.seq.as_u64());
            // 3. cross-participant agreement
            match payload_at.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (payload, pid) = e.get();
                    assert_eq!(payload, &d.payload, "P{i}: payload mismatch at {key:?}");
                    assert_eq!(*pid, d.pid, "P{i}: sender mismatch at {key:?}");
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((d.payload.clone(), d.pid));
                }
            }
            // 4. FIFO per sender: payloads carry a per-sender counter in
            // tests, but seq order per sender suffices: a sender's
            // messages get increasing seqs in submission order, so
            // increasing delivery order per ring implies FIFO.
            let sk = (d.ring_id, d.pid);
            if let Some(&prev) = per_sender_last.get(&sk) {
                assert!(d.seq.as_u64() > prev, "P{i}: per-sender order violated");
            }
            per_sender_last.insert(sk, d.seq.as_u64());
        }
    }
}

/// Asserts that all logs are exactly identical (usable when no
/// membership change occurred).
pub fn assert_identical_logs(net: &LossyNet) {
    for (i, log) in net.logs.iter().enumerate().skip(1) {
        assert_eq!(
            log.len(),
            net.logs[0].len(),
            "P{i} delivered a different count"
        );
        for (a, b) in log.iter().zip(&net.logs[0]) {
            assert_eq!(a.seq, b.seq, "P{i} diverged");
            assert_eq!(a.payload, b.payload, "P{i} diverged in content");
        }
    }
}
