//! End-to-end test of the remote (TCP) client sessions: two daemons on
//! loopback transports, clients connecting over real TCP sockets.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, RemoteClient};
use accelerated_ring::net::LoopbackNet;
use bytes::Bytes;

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn tcp_clients_join_and_exchange_ordered_messages() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let daemons: Vec<_> = members
        .iter()
        .map(|&p| {
            let part = Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                .unwrap();
            spawn_daemon(part, net.endpoint(p))
        })
        .collect();
    // Listen on OS-assigned ports.
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let l0 = daemons[0].listen(any).expect("listen d0");
    let l1 = daemons[1].listen(any).expect("listen d1");

    let mut alice = RemoteClient::connect(l0.local_addr(), "alice").expect("connect alice");
    let mut bob = RemoteClient::connect(l1.local_addr(), "bob").expect("connect bob");
    assert_eq!(alice.member_id().client, "alice");

    alice.join("room").unwrap();
    bob.join("room").unwrap();
    // Both see a 2-member group.
    let mut n = 0;
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 2
            },
            20
        ),
        "membership over TCP"
    );

    bob.multicast(
        &["room"],
        ServiceType::Agreed,
        Bytes::from_static(b"over-tcp"),
    )
    .unwrap();
    let mut got = None;
    assert!(wait_for(
        || {
            for ev in alice.drain() {
                if let ClientEvent::Message {
                    payload, sender, ..
                } = ev
                {
                    got = Some((payload, sender));
                }
            }
            got.is_some()
        },
        20
    ));
    let (payload, sender) = got.unwrap();
    assert_eq!(payload, Bytes::from_static(b"over-tcp"));
    assert_eq!(sender.client, "bob");

    // Duplicate names are refused at connect time.
    let err = RemoteClient::connect(l0.local_addr(), "alice").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

    // Disconnecting a client leaves its groups (watcher sees a
    // 1-member group).
    drop(bob);
    let mut n = usize::MAX;
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 1
            },
            20
        ),
        "tcp disconnect leaves groups"
    );

    drop(alice);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}
