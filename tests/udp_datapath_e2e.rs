//! End-to-end: a 2-node ring over real UDP sockets keeps total
//! ordering while an attacker blasts garbage datagrams at both of each
//! node's sockets. Exercises the batched datapath and the portable
//! fallback (the `AR_UDP_PORTABLE` CI job forces the latter through
//! `DatapathMode::auto` as well).

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::net::{AppEvent, DatapathMode, PeerMap, Runtime, UdpTransport};
use bytes::Bytes;

fn bind_ring(base_port: u16, mode: DatapathMode) -> Option<(PeerMap, Vec<Runtime<UdpTransport>>)> {
    for attempt in 0..20u16 {
        let Some(base) = attempt
            .checked_mul(64)
            .and_then(|o| base_port.checked_add(o))
        else {
            continue;
        };
        let map = PeerMap::localhost(2, base);
        if map.len() < 2 {
            continue;
        }
        let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let mut runtimes = Vec::new();
        let mut ok = true;
        for &p in &members {
            match UdpTransport::bind_with_mode(p, map.clone(), mode) {
                Ok(t) => {
                    let part = Participant::new(
                        p,
                        ProtocolConfig::accelerated(),
                        ring_id,
                        members.clone(),
                    )
                    .expect("valid ring");
                    runtimes.push(Runtime::new(part, t));
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some((map, runtimes));
        }
    }
    None
}

/// Runs a 2-node UDP ring to completion while bursts of undecodable
/// datagrams hit every socket, then checks ordering was untouched.
fn ordering_survives_garbage(base_port: u16, mode: DatapathMode) {
    let Some((map, mut ring)) = bind_ring(base_port, mode) else {
        eprintln!("skipping: no free UDP port range");
        return;
    };
    let garbage_tx = UdpSocket::bind("127.0.0.1:0").expect("bind garbage source");
    let targets: Vec<std::net::SocketAddr> = (0..2)
        .flat_map(|p| {
            let addrs = map.get(ParticipantId::new(p)).unwrap();
            [addrs.token, addrs.data]
        })
        .collect();

    const PER_NODE: u64 = 5;
    for (i, rt) in ring.iter_mut().enumerate() {
        for k in 0..PER_NODE {
            rt.submit(Bytes::from(format!("n{i}-m{k}")), ServiceType::Agreed)
                .expect("submit");
        }
    }
    let total = PER_NODE as usize * 2;
    let mut logs: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 2];
    for (i, rt) in ring.iter_mut().enumerate() {
        for ev in rt.start().expect("start") {
            if let AppEvent::Delivered(d) = ev {
                logs[i].push((d.seq.as_u64(), d.payload));
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut burst = 0u32;
    while logs.iter().any(|l| l.len() < total) && Instant::now() < deadline {
        // A burst of garbage at every socket, interleaved with real
        // protocol traffic.
        if burst < 40 {
            burst += 1;
            for t in &targets {
                garbage_tx.send_to(b"\xFF\xFE garbage burst \x00", t).ok();
                garbage_tx.send_to(&[0u8; 3], t).ok();
            }
        }
        for (i, rt) in ring.iter_mut().enumerate() {
            for ev in rt.step().expect("step") {
                if let AppEvent::Delivered(d) = ev {
                    logs[i].push((d.seq.as_u64(), d.payload));
                }
            }
        }
    }

    assert_eq!(
        logs[0].len(),
        total,
        "node 0 delivered everything despite garbage ({mode:?})"
    );
    assert_eq!(logs[0], logs[1], "identical total order ({mode:?})");
    let seqs: Vec<u64> = logs[0].iter().map(|(s, _)| *s).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "delivery in sequence order ({mode:?})");
    // The garbage was actually seen and dropped (not silently wedged).
    let drops: u64 = ring
        .iter()
        .map(|rt| rt.transport().stats().decode_drops)
        .sum();
    assert!(drops > 0, "garbage datagrams were counted as decode drops");
}

#[test]
fn ordering_survives_garbage_default_mode() {
    ordering_survives_garbage(49400, DatapathMode::auto());
}

#[test]
fn ordering_survives_garbage_portable_mode() {
    ordering_survives_garbage(50700, DatapathMode::Portable);
}

#[cfg(target_os = "linux")]
#[test]
fn ordering_survives_garbage_batched_mode() {
    ordering_survives_garbage(52000, DatapathMode::Batched);
}
