//! Integration tests asserting the *shapes* of the paper's evaluation
//! on the simulator: who wins, in which regime, and by roughly what
//! kind of margin. These are the machine-checked versions of the claims
//! `EXPERIMENTS.md` documents.

use accelerated_ring::core::{ProtocolConfig, ServiceType, TimeoutConfig};
use accelerated_ring::sim::{
    run_ring, FaultPlan, ImplProfile, LoadMode, NetworkConfig, RingSimConfig, SimDuration, SimTime,
};

fn cfg(
    net: NetworkConfig,
    profile: ImplProfile,
    protocol: ProtocolConfig,
    service: ServiceType,
    payload: usize,
    load: LoadMode,
) -> RingSimConfig {
    RingSimConfig {
        n_hosts: 8,
        protocol,
        timeouts: TimeoutConfig::default(),
        net,
        profile,
        payload_bytes: payload,
        service,
        load,
        duration: SimDuration::from_millis(120),
        warmup: SimDuration::from_millis(60),
        seed: 7,
        faults: FaultPlan::none(),
        verify_order: false,
    }
}

fn accel() -> ProtocolConfig {
    ProtocolConfig::accelerated()
}

fn orig() -> ProtocolConfig {
    ProtocolConfig::original()
}

#[test]
fn fig1_shape_accelerated_dominates_on_1g() {
    // At 700 Mbps on 1-gigabit, the accelerated protocol has (much)
    // lower Agreed latency than the original for every implementation.
    let load = LoadMode::OpenLoop {
        aggregate_bps: 700_000_000,
    };
    for profile in ImplProfile::all() {
        let o = run_ring(&cfg(
            NetworkConfig::gigabit(),
            profile,
            orig(),
            ServiceType::Agreed,
            1350,
            load,
        ));
        let a = run_ring(&cfg(
            NetworkConfig::gigabit(),
            profile,
            accel(),
            ServiceType::Agreed,
            1350,
            load,
        ));
        assert!(
            a.latency.mean.as_nanos() * 2 < o.latency.mean.as_nanos(),
            "{}: accelerated {}us vs original {}us",
            profile.name,
            a.mean_latency_us(),
            o.mean_latency_us()
        );
    }
}

#[test]
fn fig1_shape_spread_original_has_highest_latency_but_accel_closes_gap() {
    // With the original protocol, Spread's expensive client delivery on
    // the critical path gives it distinctly higher latency than the
    // library prototype; the accelerated protocol narrows that gap
    // (paper §IV-A.1).
    let load = LoadMode::OpenLoop {
        aggregate_bps: 300_000_000,
    };
    let lib_o = run_ring(&cfg(
        NetworkConfig::gigabit(),
        ImplProfile::library(),
        orig(),
        ServiceType::Agreed,
        1350,
        load,
    ));
    let spr_o = run_ring(&cfg(
        NetworkConfig::gigabit(),
        ImplProfile::spread(),
        orig(),
        ServiceType::Agreed,
        1350,
        load,
    ));
    let lib_a = run_ring(&cfg(
        NetworkConfig::gigabit(),
        ImplProfile::library(),
        accel(),
        ServiceType::Agreed,
        1350,
        load,
    ));
    let spr_a = run_ring(&cfg(
        NetworkConfig::gigabit(),
        ImplProfile::spread(),
        accel(),
        ServiceType::Agreed,
        1350,
        load,
    ));
    let gap_o = spr_o.latency.mean.as_nanos() as f64 / lib_o.latency.mean.as_nanos() as f64;
    let gap_a = spr_a.latency.mean.as_nanos() as f64 / lib_a.latency.mean.as_nanos() as f64;
    assert!(gap_o > 1.2, "spread/library original gap: {gap_o:.2}");
    assert!(
        gap_a < gap_o,
        "accelerated narrows the gap: {gap_a:.2} vs {gap_o:.2}"
    );
}

#[test]
fn fig2_shape_safe_costs_more_than_agreed() {
    let load = LoadMode::OpenLoop {
        aggregate_bps: 400_000_000,
    };
    for protocol in [orig(), accel()] {
        let agreed = run_ring(&cfg(
            NetworkConfig::gigabit(),
            ImplProfile::daemon(),
            protocol,
            ServiceType::Agreed,
            1350,
            load,
        ));
        let safe = run_ring(&cfg(
            NetworkConfig::gigabit(),
            ImplProfile::daemon(),
            protocol,
            ServiceType::Safe,
            1350,
            load,
        ));
        assert!(
            safe.latency.mean.as_nanos() > agreed.latency.mean.as_nanos() * 2,
            "{}: safe {}us vs agreed {}us",
            protocol.variant,
            safe.mean_latency_us(),
            agreed.mean_latency_us()
        );
    }
}

#[test]
fn fig3_shape_implementation_tiers_separate_on_10g() {
    // Processing-bound regime: library > daemon > spread in maximum
    // throughput, with meaningful gaps (paper: 4.6 / 3.3 / 2.3 Gbps).
    let mut results = Vec::new();
    for profile in ImplProfile::all() {
        let r = run_ring(&cfg(
            NetworkConfig::ten_gigabit(),
            profile,
            accel()
                .with_personal_window(60)
                .with_global_window(400)
                .with_accelerated_window(40),
            ServiceType::Agreed,
            1350,
            LoadMode::Saturating,
        ));
        results.push((profile.name, r.achieved_bps));
    }
    let lib = results[0].1;
    let dmn = results[1].1;
    let spr = results[2].1;
    assert!(lib > dmn * 1.2, "library {lib:.0} vs daemon {dmn:.0}");
    assert!(dmn > spr * 1.2, "daemon {dmn:.0} vs spread {spr:.0}");
    assert!(spr > 1.5e9, "spread exceeds 1.5 Gbps: {spr:.0}");
    assert!(lib > 4.0e9, "library exceeds 4 Gbps: {lib:.0}");
}

#[test]
fn fig4_shape_large_payloads_raise_max_throughput() {
    for profile in ImplProfile::all() {
        let small = run_ring(&cfg(
            NetworkConfig::ten_gigabit(),
            profile,
            accel()
                .with_personal_window(60)
                .with_global_window(400)
                .with_accelerated_window(40),
            ServiceType::Agreed,
            1350,
            LoadMode::Saturating,
        ));
        let large = run_ring(&cfg(
            NetworkConfig::ten_gigabit(),
            profile,
            accel()
                .with_personal_window(24)
                .with_global_window(160)
                .with_accelerated_window(16),
            ServiceType::Agreed,
            8850,
            LoadMode::Saturating,
        ));
        assert!(
            large.achieved_bps > small.achieved_bps * 1.3,
            "{}: 8850B {:.0} Mbps vs 1350B {:.0} Mbps",
            profile.name,
            large.achieved_mbps(),
            small.achieved_mbps()
        );
    }
}

#[test]
fn fig7_shape_safe_crossover_at_low_throughput() {
    // The paper's subtlest result: at very low load the *original*
    // protocol delivers Safe messages with lower latency (raising the
    // aru costs the accelerated protocol an extra round), but by a few
    // hundred Mbps the accelerated protocol is ahead.
    let spread = ImplProfile::spread();
    let low = LoadMode::OpenLoop {
        aggregate_bps: 100_000_000,
    };
    let high = LoadMode::OpenLoop {
        aggregate_bps: 1_000_000_000,
    };
    let net = NetworkConfig::ten_gigabit();
    let o_low = run_ring(&cfg(net, spread, orig(), ServiceType::Safe, 1350, low));
    let a_low = run_ring(&cfg(net, spread, accel(), ServiceType::Safe, 1350, low));
    let o_high = run_ring(&cfg(net, spread, orig(), ServiceType::Safe, 1350, high));
    let a_high = run_ring(&cfg(net, spread, accel(), ServiceType::Safe, 1350, high));
    assert!(
        a_low.latency.mean > o_low.latency.mean,
        "at 1% load the original wins: orig {}us vs accel {}us",
        o_low.mean_latency_us(),
        a_low.mean_latency_us()
    );
    assert!(
        a_high.latency.mean < o_high.latency.mean,
        "at 10% load the accelerated wins: orig {}us vs accel {}us",
        o_high.mean_latency_us(),
        a_high.mean_latency_us()
    );
}

#[test]
fn faults_crash_mid_run_keeps_delivering() {
    let mut c = cfg(
        NetworkConfig::gigabit(),
        ImplProfile::daemon(),
        accel(),
        ServiceType::Agreed,
        1350,
        LoadMode::OpenLoop {
            aggregate_bps: 100_000_000,
        },
    );
    c.n_hosts = 4;
    c.duration = SimDuration::from_millis(400);
    c.warmup = SimDuration::from_millis(10);
    c.faults = FaultPlan::none().crash(SimTime::ZERO + SimDuration::from_millis(80), 2);
    let r = run_ring(&c);
    assert!(
        r.achieved_bps > 40e6,
        "delivery continues after the crash: {:.0} Mbps",
        r.achieved_mbps()
    );
}

#[test]
fn faults_partition_and_heal_reunifies() {
    // Partition 8 hosts into two halves at 60 ms, heal at 200 ms; with
    // traffic flowing, both sides keep ordering during the partition
    // and merge after the heal (delivery rate recovers).
    let mut c = cfg(
        NetworkConfig::gigabit(),
        ImplProfile::daemon(),
        accel(),
        ServiceType::Agreed,
        1350,
        LoadMode::OpenLoop {
            aggregate_bps: 80_000_000,
        },
    );
    c.duration = SimDuration::from_millis(700);
    c.warmup = SimDuration::from_millis(10);
    c.faults = FaultPlan::none()
        .partition(
            SimTime::ZERO + SimDuration::from_millis(60),
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .heal(SimTime::ZERO + SimDuration::from_millis(200));
    let r = run_ring(&c);
    // Offered is 80 Mbps aggregate; each delivered message counts at
    // every participant of its component. If the merge failed, both
    // 4-host components would keep delivering only their own halves'
    // messages forever (~50% of offered after the partition point).
    assert!(
        r.achieved_bps > 55e6,
        "post-heal delivery recovered: {:.1} Mbps",
        r.achieved_mbps()
    );
}
