//! Property-based tests of the ordering protocol's core guarantees
//! under randomized workloads, configurations, and message loss.

mod common;

use accelerated_ring::core::{PriorityMethod, ProtocolConfig, ProtocolVariant, ServiceType};
use bytes::Bytes;
use common::{assert_identical_logs, assert_safety, LossyNet};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ProtocolConfig> {
    (1u32..8, 0u32..6, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(personal, accel, aggressive, original)| {
            let (variant, accel) = if original {
                (ProtocolVariant::Original, 0)
            } else {
                (ProtocolVariant::Accelerated, accel)
            };
            ProtocolConfig {
                variant,
                personal_window: personal,
                global_window: personal * 8,
                accelerated_window: accel,
                max_seq_gap: 64,
                priority_method: if aggressive {
                    PriorityMethod::Aggressive
                } else {
                    PriorityMethod::Conservative
                },
                ..ProtocolConfig::accelerated()
            }
        },
    )
}

/// A workload: which participant sends how many messages with which
/// service.
fn arb_workload(n: usize) -> impl Strategy<Value = Vec<(usize, ServiceType)>> {
    prop::collection::vec(
        (
            0..n,
            prop_oneof![Just(ServiceType::Agreed), Just(ServiceType::Safe)],
        ),
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without loss, every participant delivers every message, in the
    /// identical order, regardless of configuration or workload.
    #[test]
    fn lossless_runs_deliver_identically(
        n in 2u16..6,
        cfg in arb_config(),
        workload_seed in arb_workload(5),
        seed in any::<u64>(),
    ) {
        let mut net = LossyNet::new(n, cfg, 0.0, seed);
        let mut count = 0;
        for (who, service) in &workload_seed {
            let who = who % n as usize;
            net.submit(who, Bytes::from(format!("m{count}")), *service);
            count += 1;
        }
        net.start();
        let ok = net.drive_until_delivered(count, 64);
        prop_assert!(ok, "did not converge: {:?}",
                     net.logs.iter().map(Vec::len).collect::<Vec<_>>());
        assert_safety(&net);
        assert_identical_logs(&net);
        prop_assert_eq!(net.delivered(0), count);
    }

    /// With loss, safety invariants always hold, and with the
    /// escalation budget the runs still converge to full delivery.
    #[test]
    fn lossy_runs_preserve_safety(
        n in 2u16..6,
        cfg in arb_config(),
        workload_seed in arb_workload(5),
        loss in 0.01f64..0.25,
        seed in any::<u64>(),
    ) {
        let mut net = LossyNet::new(n, cfg, loss, seed);
        let mut count = 0;
        for (who, service) in &workload_seed {
            let who = who % n as usize;
            net.submit(who, Bytes::from(format!("m{count}")), *service);
            count += 1;
        }
        net.start();
        let converged = net.drive_until_delivered(count, 200);
        // Safety must hold whether or not we converged (membership
        // changes may have excluded members in pathological runs).
        assert_safety(&net);
        if converged {
            // If everyone delivered everything, the logs must agree on
            // the shared ring prefix.
            for log in &net.logs {
                prop_assert!(log.len() >= count);
            }
        }
    }

    /// Every token put on the wire respects the retransmission-request
    /// rule: an rtr entry never exceeds the seq carried by the previous
    /// token on that ring — a participant can only ask for
    /// retransmission of messages the ring has already sequenced. Runs
    /// cover both variants, all priority methods, and loss rates high
    /// enough to force real retransmission requests.
    #[test]
    fn rtr_requests_never_exceed_previous_token_seq(
        n in 2u16..6,
        cfg in arb_config(),
        workload_seed in arb_workload(5),
        loss in 0.0f64..0.35,
        seed in any::<u64>(),
    ) {
        let mut net = LossyNet::new(n, cfg, loss, seed);
        let mut count = 0;
        for (who, service) in &workload_seed {
            let who = who % n as usize;
            net.submit(who, Bytes::from(format!("m{count}")), *service);
            count += 1;
        }
        net.start();
        let _ = net.drive_until_delivered(count, 100);
        prop_assert!(net.monitor.tokens_seen() > 0, "no tokens observed");
        let violations = net.monitor.check().err().unwrap_or_default();
        prop_assert!(violations.is_empty(), "token rule violations: {violations:?}");
    }

    /// Delivery respects submission order per sender (FIFO), under any
    /// interleaving.
    #[test]
    fn fifo_per_sender(
        n in 2u16..5,
        per_sender in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = ProtocolConfig::accelerated().with_personal_window(3);
        let mut net = LossyNet::new(n, cfg, 0.0, seed);
        for i in 0..n as usize {
            for k in 0..per_sender {
                net.submit(i, Bytes::from(format!("p{i}-{k}")), ServiceType::Agreed);
            }
        }
        net.start();
        let total = n as usize * per_sender;
        prop_assert!(net.drive_until_delivered(total, 64));
        assert_safety(&net);
        // Check the textual per-sender order explicitly.
        for log in &net.logs {
            let mut next_k = vec![0usize; n as usize];
            for d in log {
                let text = String::from_utf8_lossy(&d.payload).into_owned();
                let (sender, k) = parse(&text);
                prop_assert_eq!(k, next_k[sender], "out of order: {}", text);
                next_k[sender] += 1;
            }
        }
        fn parse(text: &str) -> (usize, usize) {
            let rest = text.strip_prefix('p').unwrap();
            let (s, k) = rest.split_once('-').unwrap();
            (s.parse().unwrap(), k.parse().unwrap())
        }
    }

    /// Safe messages are never delivered before every participant has
    /// received them: in a lossless run, by the time any participant
    /// delivers a Safe message, every other participant has it buffered
    /// or delivered.
    #[test]
    fn safe_stability_invariant(
        n in 2u16..5,
        seed in any::<u64>(),
    ) {
        let cfg = ProtocolConfig::accelerated().with_personal_window(2);
        let mut net = LossyNet::new(n, cfg, 0.0, seed);
        net.submit(0, Bytes::from_static(b"safe-1"), ServiceType::Safe);
        net.submit(1 % n as usize, Bytes::from_static(b"safe-2"), ServiceType::Safe);
        net.start();
        prop_assert!(net.drive_until_delivered(2, 64));
        // After convergence every log contains both, in the same order.
        assert_identical_logs(&net);
        assert_safety(&net);
    }
}

#[test]
fn large_mixed_run_is_consistent() {
    // A fixed, heavier smoke test outside proptest: 6 participants,
    // 120 messages, mixed services, light loss.
    let cfg = ProtocolConfig::accelerated()
        .with_personal_window(5)
        .with_accelerated_window(3);
    let mut net = LossyNet::new(6, cfg, 0.02, 12345);
    let mut count = 0;
    for round in 0..20 {
        for i in 0..6 {
            let service = if (round + i) % 3 == 0 {
                ServiceType::Safe
            } else {
                ServiceType::Agreed
            };
            net.submit(i, Bytes::from(format!("r{round}-p{i}")), service);
            count += 1;
        }
    }
    net.start();
    assert!(
        net.drive_until_delivered(count, 300),
        "converged: {:?}",
        net.logs.iter().map(Vec::len).collect::<Vec<_>>()
    );
    assert_safety(&net);
    assert_identical_logs(&net);
    assert_eq!(net.delivered(0), count);
}
