//! Property tests over randomized membership episodes, driven through
//! the nemesis replay [`World`] the explorer uses.
//!
//! Each case runs one complete episode — a silent fail or a network
//! partition (plus heal) injected into a stable ring, with a seeded
//! scheduler choosing the interleaving — and checks the two ring-id
//! properties the membership model promises:
//!
//! * **freshness across episodes** — a surviving component's final
//!   ring id carries a ring seq strictly greater than every ring seq
//!   observed anywhere before the episode (reverting the ring-seq burn
//!   or the commit freshness guard breaks this);
//! * **component uniqueness** — no two components of a partition ever
//!   install the same ring id (their representatives differ, and a
//!   shared id would merge two independent total orders).
//!
//! The EVS delivery checker runs inside the world throughout, so every
//! case also asserts the episode stayed free of delivery violations.

use accelerated_ring::core::{Mode, ParticipantId, RingId, TimerKind};
use accelerated_ring::net::replay::{Step, World};
use proptest::prelude::*;

/// Timer preference when a whole component's flight runs dry:
/// nothing is moving, so some proc-set member must be unreachable and
/// only the consensus timeout (declaring it failed) makes progress —
/// the always-armed join retransmit would starve it.
const DRY_PREFERENCE: [TimerKind; 4] = [
    TimerKind::ConsensusTimeout,
    TimerKind::CommitTimeout,
    TimerKind::TokenLoss,
    TimerKind::Join,
];

/// Tiny splitmix-style generator so each proptest case replays the
/// same interleaving for its seed.
struct Sched(u64);

impl Sched {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn live_hosts(world: &World) -> Vec<u16> {
    (0..world.hosts())
        .filter(|&h| !world.is_failed(h))
        .collect()
}

/// The first armed timer from `preference` on any host in `hosts`,
/// chosen by the scheduler among that kind's armed hosts.
fn armed_timer(
    world: &World,
    sched: &mut Sched,
    hosts: &[u16],
    preference: &[TimerKind],
) -> Option<Step> {
    let enabled = world.enabled();
    for &want in preference {
        let candidates: Vec<&Step> = enabled
            .iter()
            .filter(|s| matches!(s, Step::Timer { host, kind } if *kind == want && hosts.contains(host)))
            .collect();
        if !candidates.is_empty() {
            return Some(*candidates[sched.pick(candidates.len())]);
        }
    }
    None
}

fn apply(world: &mut World, step: &Step) {
    world
        .apply_step(step)
        .unwrap_or_else(|e| panic!("{}: {e}", step.describe()));
}

/// Drives the world until `done` holds or `cap` steps pass. Per
/// iteration:
///
/// 1. a partition component whose in-flight traffic has run dry fires
///    a timer (consensus timeout first — nothing else restarts a dead
///    component). Timers never fire while the component still has
///    traffic moving: in a real deployment the membership timeouts are
///    orders of magnitude longer than message delivery, so every host
///    sees every join before any clock expires. Firing them mid-gather
///    aborts commits that are still in progress, and the ring-seq burn
///    then ratchets joins/commits into an endless abort-regather
///    cascade. Any genuine stall (a host stuck in Commit eats the
///    circulating token as foreign traffic, a dead component has
///    nothing in flight at all) drains the component's flight, so the
///    dry check is reached exactly when a timer is really needed;
/// 2. otherwise an in-flight message is delivered — the scheduler's
///    choice when `fair` is false, the oldest when `fair` is true
///    (FIFO never starves a message, which multi-ring merges need).
fn drive(
    world: &mut World,
    sched: &mut Sched,
    cap: usize,
    fair: bool,
    done: impl Fn(&World) -> bool,
) {
    for _ in 0..cap {
        if done(world) {
            return;
        }
        let live = live_hosts(world);
        let mut components: Vec<u8> = live.iter().map(|&h| world.component_of(h)).collect();
        components.sort_unstable();
        components.dedup();
        let mut fired = None;
        for c in components {
            let members: Vec<u16> = live
                .iter()
                .copied()
                .filter(|&h| world.component_of(h) == c)
                .collect();
            let dry = !world
                .inflight()
                .iter()
                .any(|m| members.contains(&m.from) || members.contains(&m.to));
            if dry {
                if let Some(t) = armed_timer(world, sched, &members, &DRY_PREFERENCE) {
                    fired = Some(t);
                    break;
                }
            }
        }
        if let Some(t) = fired {
            apply(world, &t);
            continue;
        }
        let flight = world.inflight();
        if flight.is_empty() {
            break;
        }
        let ix = if fair { 0 } else { sched.pick(flight.len()) };
        let id = flight[ix].id;
        apply(world, &Step::Deliver { msg: id });
    }
    if done(world) {
        return;
    }
    let state: Vec<String> = (0..world.hosts())
        .map(|h| {
            let p = world.participant(h);
            format!(
                "P{h}: failed={} {:?} {:?} members {:?}",
                world.is_failed(h),
                p.mode(),
                p.ring().id(),
                p.ring().members()
            )
        })
        .collect();
    panic!(
        "episode did not converge within {cap} steps:\n{}",
        state.join("\n")
    );
}

/// True when every host in `members` shares one ring whose member list
/// is exactly `members` (as participant ids, sorted).
fn component_stable(world: &World, members: &[u16]) -> bool {
    let want: Vec<ParticipantId> = members.iter().map(|&h| ParticipantId::new(h)).collect();
    let first = world.participant(members[0]).ring().id();
    members.iter().all(|&h| {
        let r = world.participant(h).ring();
        r.id() == first && r.members() == want.as_slice()
    })
}

/// [`component_stable`] plus quiescence: every member is back in
/// normal operation and no membership traffic (joins, commit tokens)
/// touching the component is still in flight. An episode only *ends*
/// when this holds — merging two components while one is still
/// mid-gather leaves split-era fail-set gossip in flight, and that
/// gossip re-contaminates every subsequent gather (the sender keeps
/// the other side in its fail set, so their joins can never merge).
fn component_settled(world: &World, members: &[u16]) -> bool {
    component_stable(world, members)
        && members
            .iter()
            .all(|&h| world.participant(h).mode() == Mode::Operational)
        && !world.inflight().iter().any(|m| {
            matches!(
                m.msg,
                accelerated_ring::core::Message::Join(_)
                    | accelerated_ring::core::Message::Commit(_)
            ) && (members.contains(&m.from) || members.contains(&m.to))
        })
}

/// Ring seqs installed anywhere right now, for the freshness bound.
fn installed_seqs(world: &World, hosts: &[u16]) -> Vec<u64> {
    hosts
        .iter()
        .map(|&h| world.participant(h).ring().id().ring_seq())
        .collect()
}

/// Random token deliveries that keep the ring stable but move the
/// episode's starting point around.
fn warmup(world: &mut World, sched: &mut Sched, steps: usize) {
    for _ in 0..steps {
        let flight = world.inflight();
        if flight.is_empty() {
            break;
        }
        let id = flight[sched.pick(flight.len())].id;
        apply(world, &Step::Deliver { msg: id });
    }
}

/// The canonical two-component partition masks for `hosts` (host 0's
/// bit clear, at least one bit set), mirroring `World::enabled`.
fn partition_masks(hosts: u16) -> Vec<u8> {
    (1u16..(1 << hosts))
        .filter(|m| m & 1 == 0)
        .map(|m| m as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After one host silently fails, the surviving component re-forms
    /// on a ring whose seq strictly exceeds every pre-episode ring seq.
    #[test]
    fn surviving_component_ring_exceeds_every_pre_episode_ring(
        hosts in 2u16..5,
        victim_pick in 0u64..1024,
        seed in any::<u64>(),
        warm in 0usize..16,
    ) {
        let mut sched = Sched(seed);
        let mut w = World::new(hosts, "accelerated", &[]).unwrap();
        warmup(&mut w, &mut sched, warm);
        let all: Vec<u16> = (0..hosts).collect();
        let pre = installed_seqs(&w, &all);
        let victim = (victim_pick % hosts as u64) as u16;
        apply(&mut w, &Step::Fail { host: victim });
        let survivors: Vec<u16> = all.into_iter().filter(|&h| h != victim).collect();
        let done = {
            let survivors = survivors.clone();
            move |w: &World| component_settled(w, &survivors)
        };
        drive(&mut w, &mut sched, 800, false, done);
        let final_id = w.participant(survivors[0]).ring().id();
        for &s in &pre {
            prop_assert!(
                final_id.ring_seq() > s,
                "survivors installed {:?}, not strictly beyond pre-episode seq {}",
                final_id, s
            );
        }
        prop_assert!(w.violations().is_empty(), "EVS violations: {:?}", w.violations());
    }

    /// Across a partition and heal: the two components never install
    /// the same ring id while split, and the healed ring's seq strictly
    /// exceeds everything either component installed.
    #[test]
    fn partitioned_components_install_distinct_rings(
        hosts in 2u16..5,
        mask_pick in 0u64..1024,
        seed in any::<u64>(),
        warm in 0usize..16,
    ) {
        let mut sched = Sched(seed);
        let mut w = World::new(hosts, "accelerated", &[]).unwrap();
        warmup(&mut w, &mut sched, warm);
        let all: Vec<u16> = (0..hosts).collect();
        let pre = installed_seqs(&w, &all);
        let masks = partition_masks(hosts);
        let mask = masks[(mask_pick % masks.len() as u64) as usize];
        apply(&mut w, &Step::Partition { mask });
        let side_a: Vec<u16> = all.iter().copied().filter(|h| mask >> h & 1 == 0).collect();
        let side_b: Vec<u16> = all.iter().copied().filter(|h| mask >> h & 1 == 1).collect();
        let done = {
            let (a, b) = (side_a.clone(), side_b.clone());
            move |w: &World| component_settled(w, &a) && component_settled(w, &b)
        };
        drive(&mut w, &mut sched, 800, false, done);
        let ring_a = w.participant(side_a[0]).ring().id();
        let ring_b = w.participant(side_b[0]).ring().id();
        prop_assert_ne!(
            ring_a, ring_b,
            "both components installed the same ring id"
        );
        for (id, side) in [(ring_a, "majority"), (ring_b, "minority")] {
            for &s in &pre {
                prop_assert!(
                    id.ring_seq() > s,
                    "{} component installed {:?}, not strictly beyond pre-episode seq {}",
                    side, id, s
                );
            }
        }
        // Heal. A token-loss timer on one side starts the merge gather;
        // its joins pull the other component in.
        let split_seqs: Vec<u64> = installed_seqs(&w, &all);
        apply(&mut w, &Step::Merge);
        let enabled = w.enabled();
        let kicks: Vec<&Step> = enabled
            .iter()
            .filter(|s| matches!(s, Step::Timer { kind: TimerKind::TokenLoss, .. }))
            .collect();
        prop_assert!(!kicks.is_empty(), "no token-loss timer armed after merge");
        let kick = *kicks[sched.pick(kicks.len())];
        apply(&mut w, &kick);
        let done = {
            let all = all.clone();
            move |w: &World| component_settled(w, &all)
        };
        drive(&mut w, &mut sched, 1200, true, done);
        let healed: RingId = w.participant(0).ring().id();
        for &s in &split_seqs {
            prop_assert!(
                healed.ring_seq() > s,
                "healed ring {:?} does not strictly exceed split-era seq {}",
                healed, s
            );
        }
        prop_assert!(w.violations().is_empty(), "EVS violations: {:?}", w.violations());
    }
}
