//! End-to-end nemesis scenarios for the degradation machinery added on
//! top of the chaos harness: rotation-informed failure detection,
//! membership flap damping, and AIMD shrinking of the accelerated
//! window. All runs are virtual-clock deterministic — the same seed
//! replays the same trace.

use std::time::Duration;

use accelerated_ring::core::{
    AdaptiveConfig, AimdConfig, FlapDampingConfig, ParticipantId, ProtocolConfig, ServiceType,
    TimeoutConfig,
};
use accelerated_ring::net::{NemesisPlan, NemesisRunner};

/// A healthy ring with adaptive failure detection enabled: the
/// controller tightens the static 50ms token-loss timeout down toward
/// the measured rotation without ever firing a spurious token-loss
/// (no gathers, no quarantines, clean convergence).
#[test]
fn adaptive_timeouts_tighten_without_spurious_membership_changes() {
    let mut r = NemesisRunner::new(
        4,
        ProtocolConfig::accelerated(),
        NemesisPlan::none(),
        0.0,
        7,
    );
    r.enable_adaptive(AdaptiveConfig::default());
    // Steady probe traffic keeps the run going well past the
    // controller's warm-up window.
    for k in 0..40u64 {
        r.submit_at(
            Duration::from_millis(25 * k + 10),
            (k % 4) as usize,
            format!("probe-{k}").as_bytes(),
            ServiceType::Agreed,
        );
    }
    r.start();
    let out = r.run(Duration::from_secs(5));
    out.assert_clean();

    let base = TimeoutConfig::default();
    for i in 0..4 {
        let p = r.participant(i);
        assert_eq!(
            p.stats().gathers_started,
            0,
            "host {i}: adaptive timeouts fired a spurious token-loss"
        );
        assert!(
            p.stats().timeouts_adapted > 0,
            "host {i}: controller never adapted"
        );
        assert!(
            p.timeouts().token_loss < base.token_loss,
            "host {i}: token-loss timeout not tightened ({} ns)",
            p.timeouts().token_loss
        );
        assert!(
            p.timeouts().validate().is_ok(),
            "host {i}: installed timeouts invalid"
        );
        assert_eq!(p.quarantined_count(), 0, "host {i}: spurious quarantine");
    }
}

/// Builds the marginal-link scenario: five hosts, host 4 behind a link
/// that flaps between ~97% loss and clean in 250ms windows, with probe
/// traffic from both sides of the flap so drops and re-merges both
/// actually happen.
fn flapping_ring(damped: bool, seed: u64) -> NemesisRunner {
    let damping = FlapDampingConfig {
        enabled: damped,
        penalty_per_flap: 1000,
        suppress_threshold: 2500,
        reuse_threshold: 1000,
        // Far beyond the run length: no decay-driven reinstatement.
        half_life_rounds: 1 << 20,
        max_penalty: 8000,
    };
    let cfg = ProtocolConfig::accelerated().with_flap_damping(damping);
    let mut r = NemesisRunner::new(5, cfg, NemesisPlan::none(), 0.0, seed);
    for c in 0..6u64 {
        r.schedule_host_loss(Duration::from_millis(500 * c + 100), 4, 0.97);
        r.schedule_host_loss(Duration::from_millis(500 * c + 350), 4, 0.0);
    }
    for k in 0..120u64 {
        let at = Duration::from_millis(25 * k + 5);
        r.submit_at(at, 0, format!("stable-{k}").as_bytes(), ServiceType::Agreed);
        r.submit_at(at, 4, format!("flappy-{k}").as_bytes(), ServiceType::Agreed);
    }
    r.start();
    r
}

/// With flap damping on, the repeatedly-flapping member is quarantined
/// and the stable majority settles on a fixed ring with strictly fewer
/// configuration changes than the undamped baseline, which keeps
/// thrashing for every flap cycle.
#[test]
fn flap_damping_quarantines_marginal_member_and_bounds_config_changes() {
    let seed = 11;
    let limit = Duration::from_secs(4);

    let mut undamped = flapping_ring(false, seed);
    let out_undamped = undamped.run(limit);
    let mut damped = flapping_ring(true, seed);
    let out_damped = damped.run(limit);

    // Neither run may violate safety; damping only changes liveness.
    assert!(
        out_undamped.evs_violations.is_empty(),
        "undamped run violated EVS: {:#?}",
        out_undamped.evs_violations
    );
    assert!(
        out_damped.evs_violations.is_empty(),
        "damped run violated EVS: {:#?}",
        out_damped.evs_violations
    );

    // The marginal member was quarantined by the stable majority.
    let quarantines: u64 = (0..4)
        .map(|i| damped.participant(i).stats().members_quarantined)
        .sum();
    assert!(quarantines >= 1, "no host ever quarantined the flapper");
    assert!(
        (0..4).all(|i| damped.participant(i).is_quarantined(ParticipantId::new(4))),
        "stable hosts disagree on the quarantine"
    );

    // The stable majority ends on one common ring of exactly hosts 0-3;
    // the flapper is outside it (so `converged`, which demands all
    // survivors, is intentionally not asserted here).
    let want_members: Vec<ParticipantId> = (0..4).map(ParticipantId::new).collect();
    let want_ring = damped.participant(0).ring().id();
    for i in 0..4 {
        let p = damped.participant(i);
        assert!(p.is_operational(), "host {i} not operational");
        assert_eq!(p.ring().id(), want_ring, "host {i} on a different ring");
        assert_eq!(
            p.ring().members(),
            want_members.as_slice(),
            "host {i} ring includes the flapper"
        );
    }

    // Damping bounds the churn: strictly fewer configuration changes at
    // the stable hosts than the undamped baseline, by a clear margin.
    let changes = |r: &NemesisRunner| -> u64 {
        (0..4)
            .map(|i| r.participant(i).stats().config_changes)
            .sum()
    };
    let (d, u) = (changes(&damped), changes(&undamped));
    assert!(
        d + 3 <= u,
        "damping did not bound churn: damped {d} vs undamped {u} config changes"
    );

    // The flapper's later joins were actively suppressed, not just lost.
    let suppressed: u64 = (0..4)
        .map(|i| damped.participant(i).stats().joins_suppressed)
        .sum();
    assert!(suppressed > 0, "no joins were ever suppressed");
}

/// Under a sustained loss burst the AIMD controller multiplicatively
/// shrinks the effective accelerated window (toward the original-Totem
/// behavior); once the loss clears it recovers additively back to the
/// configured window.
#[test]
fn aimd_shrinks_accelerated_window_under_loss_and_recovers() {
    let aimd = AimdConfig {
        enabled: true,
        pressure_threshold: 1,
        pressure_rounds: 2,
        recovery_rounds: 4,
    };
    let cfg = ProtocolConfig::accelerated()
        .with_accelerated_window(4)
        .with_accel_aimd(aimd);
    let mut r = NemesisRunner::new(3, cfg, NemesisPlan::none(), 0.0, 23);
    // Loss burst on host 1's links in the middle of the run.
    r.schedule_host_loss(Duration::from_millis(200), 1, 0.3);
    r.schedule_host_loss(Duration::from_millis(600), 1, 0.0);
    for k in 0..150u64 {
        let at = Duration::from_millis(10 * k + 5);
        for host in 0..3usize {
            r.submit_at(
                at,
                host,
                format!("h{host}-m{k}").as_bytes(),
                ServiceType::Agreed,
            );
        }
    }
    r.start();
    let out = r.run(Duration::from_secs(4));
    out.assert_clean();

    let shrinks: u64 = (0..3)
        .map(|i| r.participant(i).stats().accel_window_shrinks)
        .sum();
    let grows: u64 = (0..3)
        .map(|i| r.participant(i).stats().accel_window_grows)
        .sum();
    assert!(shrinks >= 1, "loss burst never shrank the window");
    assert!(grows >= 1, "window never recovered additively");
    for i in 0..3 {
        assert_eq!(
            r.participant(i).effective_accelerated_window(),
            4,
            "host {i}: window did not recover to the configured value"
        );
    }
}
