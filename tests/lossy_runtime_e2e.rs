//! Live-runtime resilience: a threaded ring over lossy transports,
//! with real timers driving retransmissions. Verifies the protocol
//! delivers everything, identically ordered, despite 10% message loss.

use std::time::{Duration, Instant};

use accelerated_ring::core::{
    Participant, ParticipantId, ProtocolConfig, RingId, ServiceType, TimeoutConfig,
};
use accelerated_ring::net::{spawn, AppEvent, LoopbackNet, LossyTransport};
use bytes::Bytes;

#[test]
fn lossy_ring_recovers_and_keeps_total_order() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..4).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    // Fast timers so retransmissions happen quickly under loss.
    let timeouts = TimeoutConfig {
        token_loss: 200_000_000,
        token_retransmit: 3_000_000,
        join: 10_000_000,
        consensus: 100_000_000,
        commit: 60_000_000,
        token_retransmit_limit: 30,
    };
    let nodes: Vec<_> = members
        .iter()
        .map(|&p| {
            let mut part =
                Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                    .unwrap();
            part.set_timeouts(timeouts).expect("valid timeouts");
            let lossy = LossyTransport::new(net.endpoint(p), 0.10, p.as_u16() as u64 + 99);
            spawn(part, lossy)
        })
        .collect();

    let per_sender = 25;
    for (i, n) in nodes.iter().enumerate() {
        for k in 0..per_sender {
            let service = if k % 5 == 0 {
                ServiceType::Safe
            } else {
                ServiceType::Agreed
            };
            n.submit(Bytes::from(format!("p{i}-k{k}")), service)
                .expect("submit");
        }
    }

    let expected = nodes.len() * per_sender;
    let mut logs: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); nodes.len()];
    let deadline = Instant::now() + Duration::from_secs(60);
    while logs.iter().any(|l| l.len() < expected) && Instant::now() < deadline {
        for (i, n) in nodes.iter().enumerate() {
            while let Some(ev) = n.recv_event(Duration::from_millis(5)) {
                if let AppEvent::Delivered(d) = ev {
                    logs[i].push((d.seq.as_u64(), d.payload));
                }
            }
        }
    }
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(
            log.len(),
            expected,
            "P{i} delivered {}/{expected} under loss",
            log.len()
        );
        assert_eq!(log, &logs[0], "P{i} diverged from P0");
    }
    for n in nodes {
        n.shutdown().expect("clean shutdown");
    }
}
