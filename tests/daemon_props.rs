//! Property tests for the daemon layer: the group table against a
//! model, and the packing/fragmentation codec.

use accelerated_ring::core::{ParticipantId, ServiceType};
use accelerated_ring::daemon::packing::{
    decode_bundle, encode_bundle, BundleEntry, Packer, Reassembler,
};
use accelerated_ring::daemon::proto::{decode, encode, Envelope};
use accelerated_ring::daemon::{GroupTable, MemberId};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn arb_member() -> impl Strategy<Value = MemberId> {
    (0u16..4, prop_oneof!["[a-d]", Just("x".to_string())])
        .prop_map(|(d, c)| MemberId::new(ParticipantId::new(d), c))
}

fn arb_group() -> impl Strategy<Value = String> {
    prop_oneof![Just("g1".to_string()), Just("g2".to_string()), "[p-s]"]
}

#[derive(Debug, Clone)]
enum Op {
    Join(String, MemberId),
    Leave(String, MemberId),
    RetainDaemons(Vec<u16>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_group(), arb_member()).prop_map(|(g, m)| Op::Join(g, m)),
        (arb_group(), arb_member()).prop_map(|(g, m)| Op::Leave(g, m)),
        prop::collection::vec(0u16..4, 0..4).prop_map(Op::RetainDaemons),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The group table matches a naive model under arbitrary
    /// join/leave/config-change sequences.
    #[test]
    fn group_table_matches_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut table = GroupTable::new();
        let mut model: BTreeMap<String, BTreeSet<MemberId>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Join(g, m) => {
                    let t = table.join(&g, m.clone());
                    let mo = model.entry(g).or_default().insert(m);
                    prop_assert_eq!(t, mo);
                }
                Op::Leave(g, m) => {
                    let t = table.leave(&g, &m);
                    let mo = model.get_mut(&g).map(|s| s.remove(&m)).unwrap_or(false);
                    model.retain(|_, s| !s.is_empty());
                    prop_assert_eq!(t, mo);
                }
                Op::RetainDaemons(ds) => {
                    let daemons: Vec<ParticipantId> =
                        ds.iter().map(|&d| ParticipantId::new(d)).collect();
                    table.retain_daemons(&daemons);
                    for s in model.values_mut() {
                        s.retain(|m| daemons.contains(&m.daemon));
                    }
                    model.retain(|_, s| !s.is_empty());
                }
            }
            // Compare the full state.
            let table_groups: BTreeSet<String> = table.group_names().into_iter().collect();
            let model_groups: BTreeSet<String> = model.keys().cloned().collect();
            prop_assert_eq!(&table_groups, &model_groups);
            for g in &model_groups {
                let t: Vec<MemberId> = table.members(g);
                let m: Vec<MemberId> = model[g].iter().cloned().collect();
                prop_assert_eq!(t, m);
            }
        }
    }

    /// Envelope codec round-trips arbitrary well-formed envelopes.
    #[test]
    fn envelope_roundtrip(
        member in arb_member(),
        groups in prop::collection::vec(arb_group(), 0..5),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        kind in 0u8..3,
        stamp in any::<u64>(),
    ) {
        let env = match kind {
            0 => Envelope::Data {
                sender: member,
                groups,
                stamp,
                payload: Bytes::from(payload),
            },
            1 => Envelope::Join {
                member,
                group: groups.first().cloned().unwrap_or_else(|| "g".into()),
            },
            _ => Envelope::Leave {
                member,
                group: groups.first().cloned().unwrap_or_else(|| "g".into()),
            },
        };
        prop_assert_eq!(decode(&encode(&env)).unwrap(), env);
    }

    /// Bundles round-trip, and bundle decoding never panics on noise.
    #[test]
    fn bundle_roundtrip_and_robustness(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..8),
        noise in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let entries: Vec<BundleEntry> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                BundleEntry::Whole(Envelope::Data {
                    sender: MemberId::new(ParticipantId::new(0), format!("c{i}")),
                    groups: vec!["g".into()],
                    stamp: i as u64,
                    payload: Bytes::from(p),
                })
            })
            .collect();
        let enc = encode_bundle(&entries);
        prop_assert_eq!(decode_bundle(&enc).unwrap(), entries);
        let _ = decode_bundle(&noise); // must not panic
    }

    /// Fragmentation reassembles any payload exactly, for any budget.
    #[test]
    fn fragmentation_reassembles_exactly(
        len in 1usize..40_000,
        budget in 200usize..4096,
        seed in any::<u8>(),
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(seed)).collect();
        let payload = Bytes::from(payload);
        let sender = MemberId::new(ParticipantId::new(1), "frag");
        let mut p = Packer::new(budget);
        p.push_data(sender.clone(), vec!["g".into()], payload.clone(), 5, 7);
        let mut r = Reassembler::new();
        let mut whole: Option<Bytes> = None;
        let mut got_whole_envelope = false;
        while let Some(b) = p.next_bundle() {
            for e in decode_bundle(&b).unwrap() {
                match e {
                    BundleEntry::Whole(Envelope::Data { payload, stamp, .. }) => {
                        prop_assert_eq!(stamp, 7);
                        whole = Some(payload);
                        got_whole_envelope = true;
                    }
                    BundleEntry::Whole(_) => unreachable!("only data queued"),
                    BundleEntry::Fragment(f) => {
                        if let Some((s, stamp, gs, rebuilt)) = r.feed(f) {
                            prop_assert_eq!(&s, &sender);
                            prop_assert_eq!(stamp, 7);
                            prop_assert_eq!(gs, vec!["g".to_string()]);
                            whole = Some(rebuilt);
                        }
                    }
                }
            }
        }
        let rebuilt = whole.expect("message came out");
        prop_assert_eq!(rebuilt, payload.clone());
        if got_whole_envelope {
            prop_assert!(payload.len() <= budget, "small messages stay whole");
        }
        prop_assert_eq!(r.in_progress(), 0);
    }
}

#[test]
fn service_levels_keep_separate_bundles() {
    // Packing never mixes service levels: a bundle is submitted with
    // one service, so Safe data must not ride in an Agreed bundle.
    // (Structural check of the daemon design: packers are per-service.)
    let mut agreed = Packer::new(1350);
    let mut safe = Packer::new(1350);
    let m = MemberId::new(ParticipantId::new(0), "c");
    agreed.push(Envelope::Data {
        sender: m.clone(),
        groups: vec!["g".into()],
        stamp: 0,
        payload: Bytes::from_static(b"a"),
    });
    safe.push(Envelope::Data {
        sender: m,
        groups: vec!["g".into()],
        stamp: 0,
        payload: Bytes::from_static(b"s"),
    });
    assert_eq!(
        decode_bundle(&agreed.next_bundle().unwrap()).unwrap().len(),
        1
    );
    assert_eq!(
        decode_bundle(&safe.next_bundle().unwrap()).unwrap().len(),
        1
    );
    let _ = ServiceType::Safe;
}
