//! End-to-end test of the live metrics endpoint: a real (loopback)
//! daemon ring configured with a [`TelemetryHub`], served over HTTP
//! exactly as `ard --metrics-addr` does, and scraped with raw TCP GETs.
//! Checks Prometheus exposition validity on `/metrics`, JSON
//! well-formedness and content on `/snapshot`, and the `/flight` event
//! dump.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon_with, ClientEvent, DaemonConfig, TelemetryHub};
use accelerated_ring::net::LoopbackNet;
use accelerated_ring::telemetry::json::Value;
use bytes::Bytes;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

/// Every non-comment, non-blank exposition line must be
/// `name{optional labels} <number>`.
fn assert_valid_exposition(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line without a value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        if name_end < series.len() {
            assert!(series.ends_with('}'), "unterminated label set in {line:?}");
        }
    }
}

#[test]
fn daemon_ring_serves_metrics_snapshot_and_flight() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);

    // Daemon 0 carries the telemetry hub and serves it, exactly as
    // `ard --metrics-addr 127.0.0.1:0` wires things up.
    let hub = TelemetryHub::shared();
    let daemons: Vec<_> = members
        .iter()
        .map(|&p| {
            let part = Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                .unwrap();
            let mut config = DaemonConfig::default();
            if p == members[0] {
                config.telemetry = Some(hub.clone());
            }
            spawn_daemon_with(part, net.endpoint(p), config)
        })
        .collect();
    let server = accelerated_ring::daemon::serve_metrics("127.0.0.1:0", hub.clone())
        .expect("bind metrics endpoint");
    let addr = server.local_addr();

    // Push traffic through the ring until daemon 0 has delivered it.
    let alice = daemons[0].connect("alice").unwrap();
    let bob = daemons[1].connect("bob").unwrap();
    alice.join("g").unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut joined = false;
    while !joined && Instant::now() < deadline {
        if let Some(ClientEvent::Membership { .. }) = alice.recv(Duration::from_millis(50)) {
            joined = true;
        }
    }
    assert!(joined, "group join did not complete");
    bob.multicast(&["g"], ServiceType::Agreed, Bytes::from_static(b"ping"))
        .unwrap();
    let mut got = false;
    while !got && Instant::now() < deadline {
        if let Some(ClientEvent::Message { .. }) = alice.recv(Duration::from_millis(50)) {
            got = true;
        }
    }
    assert!(got, "message did not deliver");
    // One more loop iteration guarantees a post-delivery stats refresh.
    while hub.stats().messages_delivered == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    // /metrics: valid exposition carrying both the runtime series and
    // the participant counters.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    assert_valid_exposition(&body);
    for series in [
        "ar_node_tokens_rx_total",
        "ar_node_token_rotation_ns",
        "ar_node_queue_depth",
        "ar_participant_tokens_handled_total",
        "ar_participant_messages_delivered_total",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }

    // /snapshot: parseable JSON with metrics, stats, and flight info.
    let (head, body) = http_get(addr, "/snapshot");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let v = Value::parse(&body).expect("snapshot is valid JSON");
    assert!(v.get("metrics").is_some(), "{body}");
    let delivered = v
        .get("stats")
        .and_then(|s| s.get("messages_delivered_total"))
        .and_then(Value::as_f64)
        .expect("stats carry delivery counter");
    assert!(delivered >= 1.0, "delivered = {delivered}");
    // The recovery hardening counters ride along in the same stats
    // object even when zero, so dashboards can rely on the keys.
    for key in [
        "recovery_burst_truncated_total",
        "recovery_pending_dropped_total",
    ] {
        assert!(
            v.get("stats")
                .and_then(|s| s.get(key))
                .and_then(Value::as_f64)
                .is_some(),
            "missing {key} in stats: {body}"
        );
    }
    assert!(
        v.get("flight")
            .and_then(|f| f.get("total"))
            .and_then(Value::as_f64)
            .is_some_and(|t| t > 0.0),
        "flight recorder saw events: {body}"
    );

    // /flight: a JSON array of timestamped events.
    let (head, body) = http_get(addr, "/flight");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let v = Value::parse(&body).expect("flight dump is valid JSON");
    let events = v.as_array().expect("flight dump is an array");
    assert!(!events.is_empty());
    assert!(events[0].get("event").and_then(Value::as_str).is_some());

    // Unknown paths 404.
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    drop(alice);
    drop(bob);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}

#[test]
fn service_tier_metrics_are_exported() {
    use accelerated_ring::svc::{serve_clients, SvcClient, SvcConfig, SvcEvent, SvcListeners};

    let net = LoopbackNet::new();
    let members = vec![ParticipantId::new(0)];
    let ring_id = RingId::new(members[0], 1);
    let part = Participant::new(
        members[0],
        ProtocolConfig::accelerated(),
        ring_id,
        members.clone(),
    )
    .unwrap();
    let hub = TelemetryHub::shared();
    let config = DaemonConfig {
        telemetry: Some(hub.clone()),
        ..Default::default()
    };
    let daemon = spawn_daemon_with(part, net.endpoint(members[0]), config);
    let server = accelerated_ring::daemon::serve_metrics("127.0.0.1:0", hub.clone())
        .expect("bind metrics endpoint");
    let addr = server.local_addr();

    let mut svc_config = SvcConfig::default();
    svc_config.flow.publish_credits = 2;
    svc_config.telemetry = Some(hub.clone());
    let svc = serve_clients(
        &daemon,
        SvcListeners {
            tcp: Some("127.0.0.1:0".parse().unwrap()),
            uds: None,
        },
        svc_config,
    )
    .expect("service tier");
    let svc_addr = svc.tcp_addr().unwrap();

    // Real tier traffic: a consumer joins, a publisher exhausts its
    // credits (forcing at least one reject) and a delivery lands.
    let mut consumer = SvcClient::connect_tcp(svc_addr, "cons").expect("connect");
    consumer.join("g").expect("join");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut joined = false;
    while !joined && Instant::now() < deadline {
        if let Some(SvcEvent::Membership { .. }) = consumer.recv(Duration::from_millis(50)) {
            joined = true;
        }
    }
    assert!(joined, "svc group join did not complete");
    let mut publisher = SvcClient::connect_tcp(svc_addr, "pub").expect("connect");
    for _ in 0..2 {
        publisher
            .try_publish(&["g"], ServiceType::Agreed, Bytes::from_static(b"m"))
            .expect("publish within credits");
    }
    // A third publish with zero client-side credits never leaves the
    // client; hand-roll the frame to make the *server* reject it.
    use accelerated_ring::svc::wire::{encode_client, frame, ClientFrame};
    publisher
        .send_raw(&frame(&encode_client(&ClientFrame::Publish {
            id: 999,
            service: ServiceType::Agreed,
            groups: vec!["g".into()],
            payload: Bytes::from_static(b"over"),
        })))
        .expect("raw publish");
    let mut delivered = 0;
    let mut rejected = false;
    while (delivered < 2 || !rejected) && Instant::now() < deadline {
        if let Some(SvcEvent::Deliver { .. }) = consumer.recv(Duration::from_millis(20)) {
            delivered += 1;
        }
        for ev in publisher.drain() {
            if let SvcEvent::PublishRejected { .. } = ev {
                rejected = true;
            }
        }
    }
    assert!(delivered >= 2, "svc deliveries did not land");
    assert!(rejected, "credit-less publish was not rejected");

    // Kill the consumer's connection and pump until the session
    // resumes, so the resumption series carry real samples.
    consumer.sever();
    let mut resumed = false;
    while !resumed && Instant::now() < deadline {
        if let Some(SvcEvent::Reconnected { resumed: r }) = consumer.recv(Duration::from_millis(20))
        {
            assert!(r, "sever within grace must resume");
            resumed = true;
        }
    }
    assert!(resumed, "session did not resume after sever");

    // /metrics: the tier's series are present in the exposition.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_valid_exposition(&body);
    for series in [
        "ar_svc_clients_connected",
        "ar_svc_clients_evicted_total",
        "ar_svc_publish_rejects_total",
        "ar_svc_credit_grants_total",
        "ar_svc_credits_deferred",
        "ar_svc_publishes_total",
        "ar_svc_deliveries_total",
        "ar_svc_refused_total",
        "ar_svc_sessions_resumed_total",
        "ar_svc_sessions_parked",
        "ar_svc_resume_rejected_total",
        "ar_svc_retained_bytes",
        "ar_svc_holdback_stalled_total",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    let sample = |name: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("no sample for {name}"))
    };
    assert_eq!(sample("ar_svc_clients_connected"), 2.0);
    assert!(sample("ar_svc_publishes_total") >= 2.0);
    assert!(sample("ar_svc_deliveries_total") >= 2.0);
    assert!(sample("ar_svc_publish_rejects_total") >= 1.0);
    assert!(sample("ar_svc_sessions_resumed_total") >= 1.0);
    assert_eq!(
        sample("ar_svc_sessions_parked"),
        0.0,
        "the severed session resumed, so nothing stays parked"
    );
    assert_eq!(sample("ar_svc_resume_rejected_total"), 0.0);

    // /snapshot: the same series ride in the JSON metrics dump.
    let (head, body) = http_get(addr, "/snapshot");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let v = Value::parse(&body).expect("snapshot is valid JSON");
    let metrics = v.get("metrics").expect("snapshot carries metrics");
    for key in [
        "ar_svc_clients_connected",
        "ar_svc_publishes_total",
        "ar_svc_sessions_resumed_total",
        "ar_svc_sessions_parked",
        "ar_svc_resume_rejected_total",
        "ar_svc_retained_bytes",
    ] {
        assert!(
            metrics.get(key).and_then(Value::as_f64).is_some(),
            "missing {key} in snapshot metrics: {body}"
        );
    }

    drop(consumer);
    drop(publisher);
    svc.shutdown().expect("svc shutdown");
    daemon.shutdown().expect("clean shutdown");
}
