//! Property tests for the wire codec: round-trip fidelity for
//! arbitrary well-formed messages and robustness (no panics) on
//! arbitrary byte soup.

use accelerated_ring::core::wire::{decode, encode, encode_to_scratch, encoded_len, Message};
use accelerated_ring::core::{
    CommitToken, DataMessage, JoinMessage, MemberInfo, ParticipantId, RingId, Round, Seq,
    ServiceType, Token,
};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_pid() -> impl Strategy<Value = ParticipantId> {
    any::<u16>().prop_map(ParticipantId::new)
}

fn arb_ring_id() -> impl Strategy<Value = RingId> {
    (arb_pid(), any::<u64>()).prop_map(|(p, s)| RingId::new(p, s))
}

fn arb_service() -> impl Strategy<Value = ServiceType> {
    prop_oneof![
        Just(ServiceType::Reliable),
        Just(ServiceType::Fifo),
        Just(ServiceType::Causal),
        Just(ServiceType::Agreed),
        Just(ServiceType::Safe),
    ]
}

fn arb_data() -> impl Strategy<Value = DataMessage> {
    (
        arb_ring_id(),
        any::<u64>(),
        arb_pid(),
        any::<u64>(),
        arb_service(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(
            |(ring_id, seq, pid, round, service, after_token, payload)| DataMessage {
                ring_id,
                seq: Seq::new(seq),
                pid,
                round: Round::new(round),
                service,
                after_token,
                payload: Bytes::from(payload),
            },
        )
}

fn arb_token() -> impl Strategy<Value = Token> {
    (
        arb_ring_id(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop::option::of(arb_pid()),
        any::<u32>(),
        prop::collection::btree_set(any::<u64>(), 0..64),
    )
        .prop_map(|(ring_id, round, seq, aru, aru_setter, fcc, rtr)| Token {
            ring_id,
            round: Round::new(round),
            seq: Seq::new(seq),
            aru: Seq::new(aru),
            aru_setter,
            fcc,
            rtr: rtr.into_iter().map(Seq::new).collect(),
        })
}

fn arb_join() -> impl Strategy<Value = JoinMessage> {
    (
        arb_pid(),
        prop::collection::btree_set(any::<u16>(), 0..16),
        prop::collection::btree_set(any::<u16>(), 0..16),
        any::<u64>(),
    )
        .prop_map(|(sender, proc_set, fail_set, ring_seq)| JoinMessage {
            sender,
            proc_set: proc_set.into_iter().map(ParticipantId::new).collect(),
            fail_set: fail_set.into_iter().map(ParticipantId::new).collect(),
            ring_seq,
        })
}

fn arb_member_info() -> impl Strategy<Value = MemberInfo> {
    (
        arb_pid(),
        arb_ring_id(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(pid, old_ring_id, aru, high, safe, filled)| MemberInfo {
            pid,
            old_ring_id,
            my_aru: Seq::new(aru),
            high_seq: Seq::new(high),
            safe_seq: Seq::new(safe),
            filled,
        })
}

fn arb_commit() -> impl Strategy<Value = CommitToken> {
    (
        arb_ring_id(),
        prop::collection::vec(arb_member_info(), 1..12),
        any::<u32>(),
    )
        .prop_map(|(ring_id, memb, hop)| CommitToken { ring_id, memb, hop })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_data().prop_map(Message::Data),
        arb_token().prop_map(Message::Token),
        arb_join().prop_map(Message::Join),
        arb_commit().prop_map(Message::Commit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every well-formed message round-trips exactly, and the
    /// `encoded_len` prediction matches.
    #[test]
    fn roundtrip(msg in arb_message()) {
        let bytes = encode(&msg);
        prop_assert_eq!(bytes.len(), encoded_len(&msg));
        let back = decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back, msg);
    }

    /// Encoding into a dirty, reused scratch buffer yields exactly the
    /// same bytes as a fresh `encode` for every message kind — no
    /// stale-buffer contamination from whatever was encoded before.
    #[test]
    fn scratch_reuse_matches_fresh_encode(
        first in arb_message(),
        second in arb_message(),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut scratch = bytes::BytesMut::new();
        scratch.extend_from_slice(&garbage);
        let len = encode_to_scratch(&first, &mut scratch);
        prop_assert_eq!(len, encoded_len(&first));
        prop_assert_eq!(&scratch[..], &encode(&first)[..]);
        // Reuse the now-dirty buffer for a different message.
        let len = encode_to_scratch(&second, &mut scratch);
        prop_assert_eq!(len, encoded_len(&second));
        prop_assert_eq!(&scratch[..], &encode(&second)[..]);
        prop_assert_eq!(decode(&scratch).expect("decode scratch encoding"), second);
    }

    /// Arbitrary bytes never panic the decoder (they either decode to a
    /// message or produce a structured error).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Truncating a valid encoding anywhere yields an error, never a
    /// bogus message or panic.
    #[test]
    fn truncation_always_detected(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }

    /// Flipping one byte either fails to decode or decodes to *some*
    /// message without panicking (corruption detection is out of scope
    /// per the paper's model, but memory safety is not).
    #[test]
    fn bitflips_never_panic(msg in arb_message(), pos_frac in 0.0f64..1.0, xor in 1u8..255) {
        let mut bytes = encode(&msg).to_vec();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        if pos < bytes.len() {
            bytes[pos] ^= xor;
            let _ = decode(&bytes);
        }
    }
}
