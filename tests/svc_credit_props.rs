//! Property tests for the service tier's flow-control state machine
//! ([`FlowState`]) and the frame extractor's lazy compaction.
//!
//! The credit machine guards daemon memory against misbehaving
//! clients, so the properties are adversarial: acks that overrun or
//! regress, congestion flags that flip between every ack, and flushes
//! at arbitrary points must never mint or leak a credit. The FrameBuf
//! property is the classic streaming invariant — how the byte stream
//! is split across reads can never change which frames come out.

use std::collections::HashMap;

use accelerated_ring::svc::wire::{frame, FrameBuf};
use accelerated_ring::svc::{DedupWindow, FlowConfig, FlowState, Offer};
use proptest::prelude::*;

fn small_cfg(credits: u32, window: u32) -> FlowConfig {
    FlowConfig {
        publish_credits: credits,
        delivery_window: window,
        max_pending: 64,
        max_write_buffer: 1 << 16,
    }
}

/// One step of an adversarial delivery-window schedule.
#[derive(Debug, Clone)]
enum WindowOp {
    /// Queue a delivery (ignore overflow; the property is about the
    /// window arithmetic, not the eviction policy).
    Queue,
    /// Drain every sendable delivery.
    Send,
    /// Ack through an arbitrary — possibly absurd — sequence.
    Ack(u64),
}

fn arb_window_ops() -> impl Strategy<Value = Vec<WindowOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(WindowOp::Queue),
            Just(WindowOp::Send),
            // Mix plausible acks with wild overruns and regressions.
            (0u64..200).prop_map(WindowOp::Ack),
            any::<u64>().prop_map(WindowOp::Ack),
        ],
        0..120,
    )
}

/// One step of an adversarial credit schedule.
#[derive(Debug, Clone)]
enum CreditOp {
    /// Try to publish, fanning out to `copies` shard messages.
    Publish { copies: u32 },
    /// Ack the oldest incomplete in-flight stamp once, under the given
    /// congestion flag.
    AckOldest { congested: bool },
    /// Ack a stamp that was never issued (restart straggler).
    AckBogus { stamp: u64, congested: bool },
    /// Congestion cleared: release deferred grants.
    Flush,
}

fn arb_credit_ops() -> impl Strategy<Value = Vec<CreditOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..4).prop_map(|copies| CreditOp::Publish { copies }),
            any::<bool>().prop_map(|congested| CreditOp::AckOldest { congested }),
            (1000u64..2000, any::<bool>())
                .prop_map(|(stamp, congested)| CreditOp::AckBogus { stamp, congested }),
            Just(CreditOp::Flush),
        ],
        0..200,
    )
}

proptest! {
    /// However the consumer lies in its acks — overruns beyond what
    /// was sent, regressions, repeats — the window arithmetic never
    /// underflows, never exceeds the configured window, and delivery
    /// sequences stay strictly increasing.
    #[test]
    fn ack_clamping_keeps_window_sound(
        window in 1u32..8,
        ops in arb_window_ops(),
    ) {
        let mut fs: FlowState<u32> = FlowState::new(small_cfg(4, window));
        let mut sent: u64 = 0;
        let mut acked_model: u64 = 0;
        let mut last_seq = 0u64;
        for op in ops {
            match op {
                WindowOp::Queue => {
                    let _ = fs.queue_delivery(0);
                }
                WindowOp::Send => {
                    while let Some(p) = fs.next_sendable() {
                        prop_assert!(p.seq > last_seq, "sequences strictly increase");
                        last_seq = p.seq;
                        sent = p.seq;
                        // The window bound holds at every send.
                        prop_assert!(sent - acked_model <= u64::from(window));
                    }
                }
                WindowOp::Ack(through) => {
                    fs.on_ack(through);
                    // Model: clamp to sent, ignore regressions.
                    acked_model = acked_model.max(through.min(sent));
                }
            }
        }
        // After an overrun-ack, exactly `window` fresh deliveries fit:
        // the clamp kept `acked <= sent` rather than banking phantom
        // window space.
        fs.on_ack(u64::MAX);
        for _ in 0..window {
            fs.queue_delivery(1).unwrap();
        }
        let mut fits = 0;
        while fs.next_sendable().is_some() {
            fits += 1;
        }
        prop_assert_eq!(fits, window);
    }

    /// Credit conservation under arbitrarily interleaved congestion
    /// episodes: at every step,
    /// `credits + inflight + deferred == publish_credits`, grants come
    /// back in submission order, and the publisher floor only moves
    /// forward. A final flush after draining the ring returns every
    /// credit — congestion defers grants, it never destroys them.
    #[test]
    fn interleaved_congestion_conserves_credits(
        budget in 1u32..6,
        ops in arb_credit_ops(),
    ) {
        let mut fs: FlowState<()> = FlowState::new(small_cfg(budget, 4));
        // (stamp, copies_left) not yet fully agreed, oldest first.
        let mut open: Vec<(u64, u32)> = Vec::new();
        let mut next_id = 0u64;
        let mut granted: Vec<u64> = Vec::new();
        let mut floor = 0u64;
        for op in ops {
            match op {
                CreditOp::Publish { copies } => {
                    let had = fs.credits();
                    match fs.try_consume_credit(next_id, copies) {
                        Some(stamp) => {
                            prop_assert!(had > 0);
                            open.push((stamp, copies));
                            next_id += 1;
                        }
                        None => prop_assert_eq!(had, 0),
                    }
                }
                CreditOp::AckOldest { congested } => {
                    if let Some((stamp, copies_left)) = open.first_mut() {
                        let stamp = *stamp;
                        *copies_left -= 1;
                        if *copies_left == 0 {
                            open.remove(0);
                        }
                        granted.extend(fs.on_ordered(stamp, congested));
                    }
                }
                CreditOp::AckBogus { stamp, congested } => {
                    // Stamps in 1000.. are never issued (< 200 ops), so
                    // this must be a no-op on the accounting.
                    let before = (fs.credits(), fs.inflight(), fs.deferred_len());
                    prop_assert!(fs.on_ordered(stamp, congested).is_empty());
                    prop_assert_eq!(
                        (fs.credits(), fs.inflight(), fs.deferred_len()),
                        before
                    );
                }
                CreditOp::Flush => {
                    granted.extend(fs.flush_deferred());
                    prop_assert_eq!(fs.deferred_len(), 0);
                }
            }
            // Conservation: every credit is exactly one of available,
            // riding an in-flight publish, or parked as a deferred
            // grant.
            prop_assert_eq!(
                fs.credits() + fs.inflight() as u32 + fs.deferred_len() as u32,
                budget
            );
            prop_assert!(fs.ordered_through() >= floor, "floor is monotone");
            floor = fs.ordered_through();
        }
        // Drain: agree everything still open, then flush.
        while let Some((stamp, copies)) = open.first().copied() {
            open.remove(0);
            for _ in 0..copies {
                granted.extend(fs.on_ordered(stamp, false));
            }
        }
        granted.extend(fs.flush_deferred());
        prop_assert_eq!(fs.credits(), budget, "all credits return after drain");
        prop_assert_eq!(fs.inflight(), 0);
        // Every issued id is granted exactly once. Global ordering is
        // deliberately NOT asserted: an ack landing after congestion
        // clears grants immediately and may overtake ids still parked
        // in the deferred queue — credits are fungible, so exactly-once
        // is the contract, not submission order.
        granted.sort_unstable();
        let expected: Vec<u64> = (0..next_id).collect();
        prop_assert_eq!(granted, expected);
    }

    /// FrameBuf invariance under read fragmentation: however the byte
    /// stream is split across `extend` calls — including mid-prefix
    /// splits that trigger the lazy compaction path — the extracted
    /// frame sequence is byte-identical to the frames that went in.
    #[test]
    fn framebuf_compaction_preserves_frame_stream(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..12),
        cuts in prop::collection::vec(any::<u16>(), 0..16),
    ) {
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&frame(b));
        }
        // Arbitrary split points over the concatenated stream.
        let mut points: Vec<usize> =
            cuts.iter().map(|&c| c as usize % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();

        let mut fb = FrameBuf::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        for w in points.windows(2) {
            fb.extend(&stream[w[0]..w[1]]);
            // Interleave extraction with feeding so `head` advances
            // between extends and compaction actually fires.
            while let Some(f) = fb.next_frame().expect("well-formed stream") {
                out.push(f.to_vec());
            }
        }
        prop_assert_eq!(out, bodies);
        prop_assert!(fb.is_empty(), "no bytes left after the final frame");
    }

    /// The publish dedup window never lies in the dangerous direction.
    /// Against an arbitrary schedule of offers, grants, and forgets
    /// over a small id space (so collisions are common) and a small
    /// capacity (so eviction fires constantly):
    ///
    /// * an id the model knows is **in-flight** (offered, neither
    ///   granted nor forgotten) is always classified `InFlight` — a
    ///   re-sent publish whose outcome is still pending is *never*
    ///   double-forwarded, because eviction refuses to drop in-flight
    ///   entries;
    /// * an id the model has never seen (or has forgotten) is always
    ///   `Fresh` — the window never invents a duplicate;
    /// * a granted id is `Granted` or — only after capacity eviction —
    ///   `Fresh`, never `InFlight`;
    /// * the window holds at most `max(cap, peak in-flight)` entries —
    ///   in-flight ids are bounded by the session's publish credits,
    ///   so parked sessions cannot pin unbounded dedup state.
    ///   (Eviction runs at insert; a grant landing afterwards shrinks
    ///   the in-flight count without shrinking the window, so the
    ///   bound is against the peak, not the instant.)
    #[test]
    fn dedup_window_never_double_forwards_inflight_ids(
        cap in 1usize..8,
        ops in prop::collection::vec(
            (0u8..3, 0u64..24u64),
            0..200,
        ),
    ) {
        let mut w = DedupWindow::new(cap);
        // id → granted? mirror of what *must* still be protected.
        let mut model: HashMap<u64, bool> = HashMap::new();
        let mut peak_inflight = 0usize;
        for (kind, id) in ops {
            match kind {
                0 => {
                    let offer = w.offer(id);
                    match model.get(&id) {
                        Some(false) => {
                            prop_assert_eq!(
                                offer, Offer::InFlight,
                                "in-flight id {} must never re-forward", id
                            );
                        }
                        Some(true) => {
                            // Granted entries may be evicted under
                            // pressure; re-offering one is then Fresh
                            // (forwarded again — harmless, the ring
                            // orders it once more) but never InFlight.
                            match offer {
                                Offer::Granted => {}
                                Offer::Fresh => {
                                    model.insert(id, false);
                                }
                                Offer::InFlight => {
                                    prop_assert!(false, "granted id {} became in-flight", id);
                                }
                            }
                        }
                        None => {
                            prop_assert_eq!(
                                offer, Offer::Fresh,
                                "unseen id {} misclassified as a duplicate", id
                            );
                            model.insert(id, false);
                        }
                    }
                }
                1 => {
                    w.grant(id);
                    if let Some(g) = model.get_mut(&id) {
                        *g = true;
                    }
                }
                _ => {
                    w.forget(id);
                    model.remove(&id);
                }
            }
            let inflight = model.values().filter(|g| !**g).count();
            peak_inflight = peak_inflight.max(inflight);
            prop_assert!(
                w.len() <= cap.max(peak_inflight),
                "window holds {} entries (cap {}, peak {} in flight)",
                w.len(), cap, peak_inflight
            );
        }
    }

    /// Replaying the complete publish history of a resumed session —
    /// every id re-offered in order after all were granted — forwards
    /// nothing and re-grants everything still within the window's
    /// capacity: the lost-CreditGrant recovery path is idempotent.
    #[test]
    fn dedup_window_replay_after_grant_is_idempotent(
        cap in 1usize..32,
        n in 1u64..48,
    ) {
        let mut w = DedupWindow::new(cap);
        for id in 0..n {
            prop_assert_eq!(w.offer(id), Offer::Fresh);
            w.grant(id);
        }
        // The window keeps the newest `cap` granted ids; older ones
        // were evicted and would be forwarded (and re-ordered) again.
        for id in n.saturating_sub(cap as u64)..n {
            prop_assert_eq!(
                w.offer(id), Offer::Granted,
                "retained id {} must re-grant, not re-forward", id
            );
        }
    }
}
