//! Property tests for the service-tier client protocol: byte-exact
//! round trips for arbitrary well-formed frames, and robustness (clean
//! errors, never panics) under truncation, bit flips, and structure-
//! aware mutation of valid encodings (the ar-explore mutator style).

use accelerated_ring::core::ServiceType;
use accelerated_ring::daemon::MemberId;
use accelerated_ring::svc::wire::{
    decode_client, decode_server, encode_client, encode_server, frame, ClientFrame, FrameBuf,
    ResumeToken, ServerFrame, PROTOCOL_VERSION,
};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,30}"
}

fn arb_group() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,15}"
}

fn arb_groups() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_group(), 1..5)
}

fn arb_service() -> impl Strategy<Value = ServiceType> {
    prop_oneof![
        Just(ServiceType::Reliable),
        Just(ServiceType::Fifo),
        Just(ServiceType::Causal),
        Just(ServiceType::Agreed),
        Just(ServiceType::Safe),
    ]
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from)
}

fn arb_member() -> impl Strategy<Value = MemberId> {
    (any::<u16>(), arb_name()).prop_map(|(d, c)| MemberId {
        daemon: accelerated_ring::core::ParticipantId::new(d),
        client: c,
    })
}

fn arb_resume() -> impl Strategy<Value = Option<ResumeToken>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, epoch, acked_through)| {
            Some(ResumeToken {
                session,
                epoch,
                acked_through,
            })
        }),
    ]
}

fn arb_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        (arb_name(), arb_resume()).prop_map(|(name, resume)| ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            name,
            resume,
        }),
        arb_group().prop_map(|group| ClientFrame::JoinGroup { group }),
        arb_group().prop_map(|group| ClientFrame::LeaveGroup { group }),
        (any::<u64>(), arb_service(), arb_groups(), arb_payload()).prop_map(
            |(id, service, groups, payload)| ClientFrame::Publish {
                id,
                service,
                groups,
                payload,
            }
        ),
        any::<u64>().prop_map(|through| ClientFrame::Ack { through }),
        Just(ClientFrame::Goodbye),
    ]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    prop_oneof![
        (
            (any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>()),
            (
                any::<u64>(),
                any::<u64>(),
                any::<bool>(),
                any::<u64>(),
                any::<u64>()
            ),
        )
            .prop_map(
                |((daemon, rings, c, w), (session, epoch, resumed, retained_lo, retained_hi))| {
                    ServerFrame::Welcome {
                        version: PROTOCOL_VERSION,
                        daemon,
                        rings,
                        publish_credits: c,
                        delivery_window: w,
                        session,
                        epoch,
                        resumed,
                        retained_lo,
                        retained_hi,
                    }
                }
            ),
        ".{0,60}".prop_map(|reason| ServerFrame::Refused { reason }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            arb_service(),
            arb_member(),
            arb_groups(),
            arb_payload()
        )
            .prop_map(|(seq, ring_seq, shard, service, sender, groups, payload)| {
                ServerFrame::Deliver {
                    seq,
                    ring_seq,
                    shard,
                    service,
                    sender,
                    groups,
                    payload,
                }
            }),
        (arb_group(), prop::collection::vec(arb_member(), 0..6))
            .prop_map(|(group, members)| ServerFrame::Membership { group, members }),
        prop::collection::vec(any::<u16>(), 0..6)
            .prop_map(|daemons| ServerFrame::NetworkChange { daemons }),
        (any::<u64>(), 1..64u32)
            .prop_map(|(acked_id, credits)| ServerFrame::CreditGrant { acked_id, credits }),
        (any::<u64>(), ".{0,60}")
            .prop_map(|(id, reason)| ServerFrame::PublishReject { id, reason }),
        ".{0,60}".prop_map(|reason| ServerFrame::Evicted { reason }),
    ]
}

proptest! {
    /// Client frames survive an encode/decode round trip byte-exactly.
    #[test]
    fn client_frames_roundtrip(f in arb_client_frame()) {
        let bytes = encode_client(&f);
        let back = decode_client(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(&back, &f);
        // Deterministic encoding: re-encoding is byte-identical.
        prop_assert_eq!(encode_client(&back), bytes);
    }

    /// Server frames survive an encode/decode round trip byte-exactly.
    #[test]
    fn server_frames_roundtrip(f in arb_server_frame()) {
        let bytes = encode_server(&f);
        let back = decode_server(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(&back, &f);
        prop_assert_eq!(encode_server(&back), bytes);
    }

    /// Every truncation of a valid frame errors instead of panicking
    /// (and never misdecodes into a "success").
    #[test]
    fn truncated_frames_error_cleanly(f in arb_client_frame(), g in arb_server_frame()) {
        let c = encode_client(&f);
        for cut in 0..c.len() {
            prop_assert!(decode_client(&c[..cut]).is_err());
        }
        let s = encode_server(&g);
        for cut in 0..s.len() {
            prop_assert!(decode_server(&s[..cut]).is_err());
        }
    }

    /// Single-bit flips of a valid frame never panic the decoders
    /// (they may decode to a different valid frame; they must not
    /// crash or hang).
    #[test]
    fn bit_flips_never_panic(f in arb_client_frame(), g in arb_server_frame()) {
        let c = encode_client(&f);
        for i in 0..c.len().min(128) {
            for bit in 0..8 {
                let mut m = c.to_vec();
                m[i] ^= 1 << bit;
                let _ = decode_client(&m);
                let _ = decode_server(&m);
            }
        }
        let s = encode_server(&g);
        for i in 0..s.len().min(128) {
            for bit in 0..8 {
                let mut m = s.to_vec();
                m[i] ^= 1 << bit;
                let _ = decode_server(&m);
                let _ = decode_client(&m);
            }
        }
    }

    /// Arbitrary byte soup never panics either decoder or the frame
    /// extractor.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_client(&bytes);
        let _ = decode_server(&bytes);
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        // Drain until the extractor stalls or rejects; must terminate.
        while let Ok(Some(_)) = fb.next_frame() {}
    }
}

/// Structure-aware mutation in the ar-explore style: a deterministic
/// SplitMix64 stream drives splice/duplicate/overwrite mutations of
/// valid frames, stressing the decoders well past single-bit damage.
#[test]
fn mutated_frames_never_panic() {
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
    let seeds: Vec<Vec<u8>> = vec![
        encode_client(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            name: "fuzz".into(),
            resume: None,
        })
        .to_vec(),
        encode_client(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            name: "fuzz-resume".into(),
            resume: Some(ResumeToken {
                session: 0x1234_5678_9abc_def0,
                epoch: 5,
                acked_through: 4096,
            }),
        })
        .to_vec(),
        encode_client(&ClientFrame::Goodbye).to_vec(),
        encode_server(&ServerFrame::Welcome {
            version: PROTOCOL_VERSION,
            daemon: 1,
            rings: 2,
            publish_credits: 64,
            delivery_window: 1024,
            session: 0xfeed_f00d,
            epoch: 3,
            resumed: true,
            retained_lo: 17,
            retained_hi: 40,
        })
        .to_vec(),
        encode_client(&ClientFrame::Publish {
            id: 7,
            service: ServiceType::Safe,
            groups: vec!["a".into(), "b".into()],
            payload: Bytes::from_static(b"payload-bytes"),
        })
        .to_vec(),
        encode_server(&ServerFrame::Deliver {
            seq: 3,
            ring_seq: 99,
            shard: 1,
            service: ServiceType::Agreed,
            sender: MemberId {
                daemon: accelerated_ring::core::ParticipantId::new(2),
                client: "c".into(),
            },
            groups: vec!["g".into()],
            payload: Bytes::from_static(b"x"),
        })
        .to_vec(),
        encode_server(&ServerFrame::CreditGrant {
            acked_id: 12,
            credits: 1,
        })
        .to_vec(),
    ];
    let mut rng = SplitMix64(0xa5c3_1e60_0000_0001);
    for round in 0..20_000u32 {
        let mut m = seeds[(rng.next() as usize) % seeds.len()].clone();
        // 1-4 mutations per round.
        for _ in 0..=(rng.next() % 4) {
            if m.is_empty() {
                break;
            }
            match rng.next() % 5 {
                0 => {
                    // Overwrite a byte.
                    let i = (rng.next() as usize) % m.len();
                    m[i] = rng.next() as u8;
                }
                1 => {
                    // Truncate.
                    m.truncate((rng.next() as usize) % (m.len() + 1));
                }
                2 => {
                    // Duplicate a slice onto the end.
                    let i = (rng.next() as usize) % m.len();
                    let j = i + ((rng.next() as usize) % (m.len() - i));
                    let slice = m[i..j].to_vec();
                    m.extend_from_slice(&slice);
                }
                3 => {
                    // Splice a chunk from another seed.
                    let other = &seeds[(rng.next() as usize) % seeds.len()];
                    let i = (rng.next() as usize) % other.len();
                    let at = (rng.next() as usize) % (m.len() + 1);
                    let tail = m.split_off(at);
                    m.extend_from_slice(&other[i..]);
                    m.extend_from_slice(&tail);
                }
                _ => {
                    // Blast a u64 over a random offset (length-field
                    // style damage).
                    let i = (rng.next() as usize) % m.len();
                    let v = rng.next().to_be_bytes();
                    for (k, b) in v.iter().enumerate() {
                        if i + k < m.len() {
                            m[i + k] = *b;
                        }
                    }
                }
            }
        }
        let _ = decode_client(&m);
        let _ = decode_server(&m);
        let mut fb = FrameBuf::new();
        fb.extend(&frame(&Bytes::from(m)));
        while let Ok(Some(f)) = fb.next_frame() {
            let _ = decode_client(&f);
            let _ = decode_server(&f);
        }
        let _ = round;
    }
}
