//! Replays the checked-in schedule corpus (`tests/corpus/*.json`)
//! through the nemesis replay path and asserts each schedule still
//! matches its recorded expectation.
//!
//! The corpus holds minimized schedules the state-space explorer
//! (`ar-explore`) emitted: fault-free circulation, token loss repaired
//! by the retransmit timer, and token/data duplication. When the
//! explorer finds a violation, its emitted schedule (plus the
//! generated `#[test]` stub) lands here so the bug keeps reproducing
//! deterministically after it is fixed.
//!
//! Regenerate or extend the corpus with:
//!
//! ```text
//! cargo run --release -p ar-explore -- explore --hosts 3 --depth 12 \
//!     --emit-corpus tests/corpus
//! ```

use std::path::PathBuf;

use accelerated_ring::core::{Message, Mode, ParticipantId, ServiceType, TimerKind};
use accelerated_ring::net::replay::{
    replay_schedule, Expectation, Inflight, Schedule, Step, Submission, World,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_has_at_least_three_schedules() {
    assert!(
        corpus_files().len() >= 3,
        "corpus shrank below the three seed schedules: {:?}",
        corpus_files()
    );
}

#[test]
fn every_corpus_schedule_replays_to_its_recorded_expectation() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule =
            Schedule::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = replay_schedule(&schedule)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
        assert!(
            outcome.matches(schedule.expect),
            "{}: outcome diverged from recorded expectation; violations: {:?}",
            path.display(),
            outcome.violations
        );
        assert_eq!(
            outcome.steps_applied,
            schedule.steps.len() as u64,
            "{}: schedule did not replay end-to-end",
            path.display()
        );
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule = Schedule::from_json(&text).expect("valid schedule");
        let a = replay_schedule(&schedule).expect("replayable");
        let b = replay_schedule(&schedule).expect("replayable");
        assert_eq!(
            a.final_hash,
            b.final_hash,
            "{}: replay is not deterministic",
            path.display()
        );
        assert_eq!(a.deliveries, b.deliveries);
    }
}

// ----- membership corpus ------------------------------------------------
//
// Three resurrected membership bugs, promoted from the PR-4/PR-6 (and
// PR-10) fix sites into replayable schedules. Each schedule is
// generated deterministically by driving a `World` step by step (see
// `regenerate_membership_corpus`), replays clean with the fixes in
// place, and trips its named assertion the moment the guarding fix is
// reverted:
//
// * `membership_stale_commit.json` — a commit token from an abandoned
//   attempt must be rejected on freshness (its ring seq does not
//   exceed the receiver's current ring), or the receiver marches into
//   recovery for a zombie ring with an empty transitional group.
// * `membership_join_merge.json` — a singleton joining an established
//   pair: transitional configurations must contain only each side's
//   old-ring continuers (the EVS subset rule catches leftovers).
// * `membership_flap_one_sided.json` — under `damped`, only the side
//   retaining a majority of the old ring charges flap penalties; a
//   minority remnant charging the stable side escalates one marginal
//   link into a quarantine war.

fn membership_corpus_names() -> [&'static str; 3] {
    [
        "membership_stale_commit.json",
        "membership_join_merge.json",
        "membership_flap_one_sided.json",
    ]
}

fn apply(world: &mut World, steps: &mut Vec<Step>, step: Step) {
    world
        .apply_step(&step)
        .unwrap_or_else(|e| panic!("generator step {} failed: {e}", step.describe()));
    steps.push(step);
}

fn find_msg(world: &World, what: &str, pred: impl Fn(&Inflight) -> bool) -> u64 {
    world
        .inflight()
        .iter()
        .find(|m| pred(m))
        .unwrap_or_else(|| panic!("no in-flight message matches: {what}"))
        .id
}

/// Drives the world with a fair policy — deliver the oldest in-flight
/// message; when nothing is in flight, fire the first armed membership
/// timer — until `done` holds, recording every step.
fn drive_to(world: &mut World, steps: &mut Vec<Step>, cap: usize, done: impl Fn(&World) -> bool) {
    for _ in 0..cap {
        if done(world) {
            return;
        }
        if let Some(id) = world.inflight().first().map(|m| m.id) {
            apply(world, steps, Step::Deliver { msg: id });
            continue;
        }
        // An empty flight during Gather means the episode is genuinely
        // stalled on someone silent: a consensus timeout is the
        // protocol's answer. The join timer is always armed while
        // gathering, so it goes last or it starves the timeouts.
        let preference = [
            TimerKind::ConsensusTimeout,
            TimerKind::CommitTimeout,
            TimerKind::Join,
        ];
        let enabled = world.enabled();
        let timer = preference.iter().find_map(|want| {
            enabled
                .iter()
                .find(|s| matches!(s, Step::Timer { kind, .. } if kind == want))
                .cloned()
        });
        match timer {
            Some(t) => apply(world, steps, t),
            None => panic!("episode stalled: nothing in flight and no membership timer armed"),
        }
    }
    let state: Vec<String> = (0..world.hosts())
        .map(|h| {
            let p = world.participant(h);
            format!(
                "P{h}: {:?} {:?} members {:?} delivered {}",
                p.mode(),
                p.ring().id(),
                p.ring().members(),
                world.deliveries()[h as usize]
            )
        })
        .collect();
    panic!("no convergence within {cap} steps:\n{}", state.join("\n"));
}

fn shared_full_ring(world: &World, members: usize) -> bool {
    let r0 = world.participant(0).ring().id();
    (0..world.hosts()).all(|h| {
        let r = world.participant(h).ring();
        r.id() == r0 && r.members().len() == members
    })
}

/// P0's commit attempt for ring (P0, 2) is abandoned (its commit token
/// delayed in flight); P1 concludes alone and installs (P1, 2). When
/// the stale commit finally lands on a regathering P1 — membership
/// matching, P1's entry unfilled — the freshness guard must reject it:
/// its ring seq does not exceed P1's current ring, so its
/// representative may never install it.
fn stale_commit_schedule() -> (Schedule, World) {
    let mut w = World::new(2, "accelerated", &[]).unwrap();
    let mut steps = Vec::new();
    let token = find_msg(&w, "initial token", |m| matches!(m.msg, Message::Token(_)));
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 0,
            kind: TimerKind::TokenLoss,
        },
    );
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 1,
            kind: TimerKind::TokenLoss,
        },
    );
    apply(&mut w, &mut steps, Step::Drop { msg: token });
    // P0 learns P1's matching join and reaches consensus: commit
    // (P0, 2) goes into flight toward P1 — and stays there.
    let join_1_to_0 = find_msg(&w, "P1's join", |m| {
        m.from == 1 && matches!(m.msg, Message::Join(_))
    });
    apply(&mut w, &mut steps, Step::Deliver { msg: join_1_to_0 });
    let join_0_to_1 = find_msg(&w, "P0's first join", |m| {
        m.from == 0 && matches!(m.msg, Message::Join(_))
    });
    apply(&mut w, &mut steps, Step::Drop { msg: join_0_to_1 });
    // P1 never hears from P0, fails it, and installs singleton (P1, 2).
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 1,
            kind: TimerKind::ConsensusTimeout,
        },
    );
    // P0 abandons the attempt and regathers; its fresh join pulls P1
    // back into a shared gather believing in {P0, P1}.
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 0,
            kind: TimerKind::CommitTimeout,
        },
    );
    let rejoin = find_msg(&w, "P0's regather join", |m| {
        m.from == 0 && matches!(m.msg, Message::Join(_))
    });
    apply(&mut w, &mut steps, Step::Deliver { msg: rejoin });
    // The zombie commit finally arrives. Fixed: rejected, P1 keeps
    // gathering. Reverted: P1 marches into the abandoned attempt.
    let stale = find_msg(&w, "stale commit", |m| {
        m.to == 1 && matches!(m.msg, Message::Commit(_))
    });
    apply(&mut w, &mut steps, Step::Deliver { msg: stale });
    let schedule = Schedule {
        hosts: 2,
        joiners: vec![],
        config: "accelerated".into(),
        submissions: vec![],
        steps,
        expect: Expectation::Clean,
        note: "stale-commit regression (PR 4 / PR 10): P0's abandoned commit \
               for (P0,2) is delivered to P1 after P1 installed singleton \
               (P1,2) and regathered; the freshness guard must reject the \
               zombie ring — P1 stays in Gather"
            .into(),
    };
    (schedule, w)
}

/// A singleton (host 2) joins an established pair carrying two pre-join
/// submissions. The episode must converge on one three-member ring with
/// both payloads delivered on the old-ring side, and each side's
/// transitional configuration must contain only its own old-ring
/// continuers (EVS subset rule).
fn join_merge_schedule() -> (Schedule, World) {
    let submissions = vec![
        Submission {
            host: 0,
            payload: "pre-join-a".into(),
            service: ServiceType::Agreed,
        },
        Submission {
            host: 1,
            payload: "pre-join-b".into(),
            service: ServiceType::Agreed,
        },
    ];
    let mut w = World::new_with_joiners(3, &[2], "accelerated", &submissions).unwrap();
    let mut steps = Vec::new();
    apply(&mut w, &mut steps, Step::Join { host: 2 });
    drive_to(&mut w, &mut steps, 400, |w| {
        shared_full_ring(w, 3) && w.deliveries()[0] == 2 && w.deliveries()[1] == 2
    });
    let schedule = Schedule {
        hosts: 3,
        joiners: vec![2],
        config: "accelerated".into(),
        submissions,
        steps,
        expect: Expectation::Clean,
        note: "join-merge regression (PR 4 / PR 6): singleton host 2 joins the \
               {P0,P1} pair mid-stream; transitional configurations must hold \
               only each side's old-ring continuers — leftovers trip the EVS \
               subset rule at the joiner"
            .into(),
    };
    (schedule, w)
}

/// Host 2 is partitioned away from a damped three-ring: the majority
/// side re-forms (charging P2 one flap penalty), P2 concludes alone,
/// and the components merge back into one ring. Only the majority may
/// charge penalties — the minority remnant charging the stable side is
/// the seed of a quarantine war.
fn flap_one_sided_schedule() -> (Schedule, World) {
    let mut w = World::new(3, "damped", &[]).unwrap();
    let mut steps = Vec::new();
    apply(&mut w, &mut steps, Step::Partition { mask: 0b100 });
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 0,
            kind: TimerKind::TokenLoss,
        },
    );
    let pair = [ParticipantId::new(0), ParticipantId::new(1)];
    drive_to(&mut w, &mut steps, 400, |w| {
        let r0 = w.participant(0).ring();
        let r1 = w.participant(1).ring();
        r0.id() == r1.id() && r0.members() == pair && r1.members() == pair
    });
    // P2 concludes alone only now, right before the heal, so the
    // penalty scores at both sides are still fresh when the schedule
    // ends (decay is measured in handled token rounds).
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 2,
            kind: TimerKind::TokenLoss,
        },
    );
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 2,
            kind: TimerKind::ConsensusTimeout,
        },
    );
    assert_eq!(
        w.participant(2).ring().members(),
        &[ParticipantId::new(2)],
        "P2 should have concluded alone"
    );
    apply(&mut w, &mut steps, Step::Merge);
    apply(
        &mut w,
        &mut steps,
        Step::Timer {
            host: 2,
            kind: TimerKind::TokenLoss,
        },
    );
    drive_to(&mut w, &mut steps, 400, |w| shared_full_ring(w, 3));
    let schedule = Schedule {
        hosts: 3,
        joiners: vec![],
        config: "damped".into(),
        submissions: vec![],
        steps,
        expect: Expectation::Clean,
        note: "flap-war regression (PR 6): host 2 is partitioned off a damped \
               ring and the components heal; only the majority side may \
               charge flap penalties — the minority charging the stable pair \
               escalates one marginal link into a quarantine war"
            .into(),
    };
    (schedule, w)
}

fn replay_corpus_world(name: &str) -> World {
    let text = std::fs::read_to_string(corpus_dir().join(name)).expect("corpus file readable");
    let schedule = Schedule::from_json(&text).expect("valid schedule");
    let mut world = World::new_with_joiners(
        schedule.hosts,
        &schedule.joiners,
        &schedule.config,
        &schedule.submissions,
    )
    .expect("schedule initial conditions are valid");
    for (i, step) in schedule.steps.iter().enumerate() {
        world
            .apply_step(step)
            .unwrap_or_else(|e| panic!("{name}: step {i} ({}): {e}", step.describe()));
    }
    assert_eq!(world.violations(), Vec::<String>::new(), "{name}");
    world
}

/// Regenerates the three membership corpus schedules from their
/// deterministic generators. Run after an intentional protocol change
/// shifts the recorded step ids:
///
/// ```text
/// cargo test --test explore_regressions regenerate_membership_corpus -- --ignored
/// ```
#[test]
#[ignore = "writes tests/corpus/membership_*.json; run on intentional protocol changes"]
fn regenerate_membership_corpus() {
    let (stale, _) = stale_commit_schedule();
    let (join, _) = join_merge_schedule();
    let (flap, _) = flap_one_sided_schedule();
    for (name, schedule) in membership_corpus_names().iter().zip([stale, join, flap]) {
        let path = corpus_dir().join(name);
        std::fs::write(&path, schedule.to_json()).expect("corpus dir writable");
        println!("wrote {}", path.display());
    }
}

#[test]
fn membership_corpus_matches_generators() {
    // The checked-in schedules are exactly what the generators produce,
    // so `regenerate_membership_corpus` is a faithful regeneration path
    // and the named assertions below test the generated episodes.
    let (stale, _) = stale_commit_schedule();
    let (join, _) = join_merge_schedule();
    let (flap, _) = flap_one_sided_schedule();
    for (name, generated) in membership_corpus_names().iter().zip([stale, join, flap]) {
        let text = std::fs::read_to_string(corpus_dir().join(name)).expect("corpus file readable");
        let checked_in = Schedule::from_json(&text).expect("valid schedule");
        assert_eq!(
            checked_in, generated,
            "{name} drifted from its generator; re-run regenerate_membership_corpus"
        );
    }
}

#[test]
fn stale_commit_from_abandoned_attempt_is_rejected() {
    let world = replay_corpus_world("membership_stale_commit.json");
    // The freshness guard leaves P1 gathering toward a legitimate new
    // ring. With the guard reverted, P1 merges the zombie commit and
    // marches into Commit/Recovery for a ring whose representative
    // already abandoned it.
    assert_eq!(
        world.participant(1).mode(),
        Mode::Gather,
        "P1 must reject the abandoned attempt's stale commit and keep gathering"
    );
    let p1_ring = world.participant(1).ring();
    assert_eq!(p1_ring.members(), &[ParticipantId::new(1)]);
    assert!(
        p1_ring.id().ring_seq() >= 2,
        "P1 should still hold its singleton ring: {:?}",
        p1_ring.id()
    );
}

#[test]
fn join_merge_keeps_transitional_views_disjoint() {
    let world = replay_corpus_world("membership_join_merge.json");
    let r0 = world.participant(0).ring().id();
    for h in 0..3 {
        let r = world.participant(h).ring();
        assert_eq!(r.id(), r0, "P{h} not on the merged ring");
        assert_eq!(r.members().len(), 3, "P{h} merged ring incomplete");
    }
    // Old-ring submissions were delivered on the pair side despite the
    // concurrent membership episode (the EVS transitional machinery at
    // work); the replay-clean assertion above has already checked the
    // transitional configs against the subset and agreement rules.
    assert_eq!(&world.deliveries()[..2], &[2, 2]);
}

#[test]
fn flap_penalties_are_charged_by_the_majority_side_only() {
    let world = replay_corpus_world("membership_flap_one_sided.json");
    assert!(shared_full_ring(&world, 3), "components failed to heal");
    let [p0, p1, p2] = [
        ParticipantId::new(0),
        ParticipantId::new(1),
        ParticipantId::new(2),
    ];
    // The majority side charged the flapper...
    assert!(
        world.participant(0).flap_penalty(p2) > 0,
        "P0 never charged the flapping P2"
    );
    assert!(
        world.participant(1).flap_penalty(p2) > 0,
        "P1 never charged the flapping P2"
    );
    // ...and the minority remnant charged nobody: P2 blaming the
    // stable pair for its own isolation is how a quarantine war
    // starts.
    assert_eq!(
        world.participant(2).flap_penalty(p0),
        0,
        "minority remnant P2 charged stable member P0"
    );
    assert_eq!(
        world.participant(2).flap_penalty(p1),
        0,
        "minority remnant P2 charged stable member P1"
    );
    for h in 0..3 {
        assert_eq!(
            world.participant(h).quarantined_count(),
            0,
            "P{h}: one flap must stay far below the quarantine threshold"
        );
    }
}

#[test]
fn faulty_corpus_schedules_still_deliver_everything() {
    // The two fault-injection schedules must end with every host having
    // delivered both submissions — loss and duplication are *masked*,
    // not just survived.
    for name in [
        "token_loss_retransmit.json",
        "duplicate_token_and_data.json",
    ] {
        let path = corpus_dir().join(name);
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule = Schedule::from_json(&text).expect("valid schedule");
        let outcome = replay_schedule(&schedule).expect("replayable");
        assert!(
            outcome.deliveries.iter().all(|&d| d == 2),
            "{name}: expected every host to deliver both payloads, got {:?}",
            outcome.deliveries
        );
    }
}
