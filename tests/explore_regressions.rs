//! Replays the checked-in schedule corpus (`tests/corpus/*.json`)
//! through the nemesis replay path and asserts each schedule still
//! matches its recorded expectation.
//!
//! The corpus holds minimized schedules the state-space explorer
//! (`ar-explore`) emitted: fault-free circulation, token loss repaired
//! by the retransmit timer, and token/data duplication. When the
//! explorer finds a violation, its emitted schedule (plus the
//! generated `#[test]` stub) lands here so the bug keeps reproducing
//! deterministically after it is fixed.
//!
//! Regenerate or extend the corpus with:
//!
//! ```text
//! cargo run --release -p ar-explore -- explore --hosts 3 --depth 12 \
//!     --emit-corpus tests/corpus
//! ```

use std::path::PathBuf;

use accelerated_ring::net::replay::{replay_schedule, Schedule};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_has_at_least_three_schedules() {
    assert!(
        corpus_files().len() >= 3,
        "corpus shrank below the three seed schedules: {:?}",
        corpus_files()
    );
}

#[test]
fn every_corpus_schedule_replays_to_its_recorded_expectation() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule =
            Schedule::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = replay_schedule(&schedule)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
        assert!(
            outcome.matches(schedule.expect),
            "{}: outcome diverged from recorded expectation; violations: {:?}",
            path.display(),
            outcome.violations
        );
        assert_eq!(
            outcome.steps_applied,
            schedule.steps.len() as u64,
            "{}: schedule did not replay end-to-end",
            path.display()
        );
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule = Schedule::from_json(&text).expect("valid schedule");
        let a = replay_schedule(&schedule).expect("replayable");
        let b = replay_schedule(&schedule).expect("replayable");
        assert_eq!(
            a.final_hash,
            b.final_hash,
            "{}: replay is not deterministic",
            path.display()
        );
        assert_eq!(a.deliveries, b.deliveries);
    }
}

#[test]
fn faulty_corpus_schedules_still_deliver_everything() {
    // The two fault-injection schedules must end with every host having
    // delivered both submissions — loss and duplication are *masked*,
    // not just survived.
    for name in [
        "token_loss_retransmit.json",
        "duplicate_token_and_data.json",
    ] {
        let path = corpus_dir().join(name);
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let schedule = Schedule::from_json(&text).expect("valid schedule");
        let outcome = replay_schedule(&schedule).expect("replayable");
        assert!(
            outcome.deliveries.iter().all(|&d| d == 2),
            "{name}: expected every host to deliver both payloads, got {:?}",
            outcome.deliveries
        );
    }
}
