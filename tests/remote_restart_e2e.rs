//! End-to-end test of remote-client recovery: a TCP client survives
//! its daemon being shut down and restarted on the same port. The
//! client transparently redials with bounded exponential backoff,
//! re-runs the handshake, and re-joins its groups; the restarted
//! daemon (a fresh singleton incarnation) merges back into the ring
//! through the membership protocol.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{
    spawn_daemon, spawn_daemon_with, ClientEvent, DaemonConfig, DaemonLogConfig, RemoteClient,
};
use accelerated_ring::log::{read_log_dir, FsyncPolicy};
use accelerated_ring::net::LoopbackNet;
use bytes::Bytes;

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn tcp_client_survives_daemon_restart() {
    restart_roundtrip(false);
}

/// Same scenario with the restarted daemon journalling to a durable
/// log across both incarnations: recovery replays the first
/// incarnation's stream and the merged ring still re-forms.
#[test]
fn tcp_client_survives_durable_daemon_restart() {
    restart_roundtrip(true);
}

fn restart_roundtrip(durable: bool) {
    let log_dir = std::env::temp_dir().join(format!(
        "ar-remote-restart-{}-{durable}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&log_dir);
    let d0_config = || {
        let mut config = DaemonConfig::default();
        if durable {
            config.log = Some(DaemonLogConfig::new(&log_dir).with_fsync(FsyncPolicy::EveryN(8)));
        }
        config
    };
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let mk = |p: ParticipantId| {
        Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone()).unwrap()
    };
    let d0 = spawn_daemon_with(mk(members[0]), net.endpoint(members[0]), d0_config());
    let d1 = spawn_daemon(mk(members[1]), net.endpoint(members[1]));
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let l0 = d0.listen(any).expect("listen d0");
    let l1 = d1.listen(any).expect("listen d1");
    let addr0 = l0.local_addr();

    let mut alice = RemoteClient::connect(addr0, "alice").expect("connect alice");
    let mut bob = RemoteClient::connect(l1.local_addr(), "bob").expect("connect bob");
    alice.join("room").unwrap();
    bob.join("room").unwrap();
    let (mut na, mut nb) = (0, 0);
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        na = members.len();
                    }
                }
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        nb = members.len();
                    }
                }
                na == 2 && nb == 2
            },
            20
        ),
        "initial 2-member group"
    );

    // Kill alice's daemon: the listener drop frees the port, the
    // daemon drains and exits, and the surviving daemon reconfigures.
    drop(l0);
    d0.shutdown().expect("clean shutdown");
    net.detach(members[0]);

    // The surviving side sees alice leave when its daemon installs the
    // shrunken configuration.
    let mut n = usize::MAX;
    assert!(
        wait_for(
            || {
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 1
            },
            20
        ),
        "surviving daemon drops the dead daemon's client"
    );

    // Restart on the same port as a fresh singleton incarnation; the
    // membership protocol merges it back into the ring once traffic
    // flows.
    let part = Participant::new_singleton(members[0], ProtocolConfig::accelerated()).unwrap();
    let d0b = spawn_daemon_with(part, net.endpoint(members[0]), d0_config());
    let l0b = d0b.listen(addr0).expect("re-listen on the same port");
    assert_eq!(l0b.local_addr(), addr0);

    // Alice's next operation reconnects transparently and re-joins
    // "room"; the join travels the merged ring, so eventually both
    // sides see a 2-member group again.
    let mut n = 0;
    assert!(
        wait_for(
            || {
                // Reconnect happens lazily on an operation; poke until
                // the socket is re-established and the ring re-merges.
                let _ = alice.multicast(
                    &["room"],
                    ServiceType::Agreed,
                    Bytes::from_static(b"are-you-there"),
                );
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 2
            },
            30
        ),
        "group re-forms after daemon restart"
    );
    assert!(alice.reconnects() >= 1, "client redialled");

    // Traffic flows end-to-end in both directions again.
    bob.multicast(&["room"], ServiceType::Agreed, Bytes::from_static(b"wb"))
        .unwrap();
    let mut got = false;
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Message {
                        payload, sender, ..
                    } = ev
                    {
                        if payload == Bytes::from_static(b"wb") {
                            assert_eq!(sender.client, "bob");
                            got = true;
                        }
                    }
                }
                got
            },
            20
        ),
        "post-restart delivery to the reconnected client"
    );

    drop(alice);
    drop(bob);
    drop(l0b);
    drop(l1);
    d0b.shutdown().expect("clean shutdown");
    d1.shutdown().expect("clean shutdown");

    if durable {
        // Both incarnations journalled into the same directory; the
        // drained shutdowns left a synced log with the post-restart
        // traffic on disk.
        let rec = read_log_dir(&log_dir).expect("scan durable log");
        assert!(rec.records > 0, "durable log holds records");
        // Client payloads are journalled in their daemon envelope, so
        // look for the payload bytes inside the framed record.
        assert!(
            rec.deliveries
                .iter()
                .any(|(_, d)| d.payload.windows(2).any(|w| w == b"wb")),
            "post-restart delivery reached the disk"
        );
        std::fs::remove_dir_all(&log_dir).unwrap();
    }
}
