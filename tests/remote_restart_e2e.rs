//! End-to-end test of remote-client recovery: a TCP client survives
//! its daemon being shut down and restarted on the same port. The
//! client transparently redials with bounded exponential backoff,
//! re-runs the handshake, and re-joins its groups; the restarted
//! daemon (a fresh singleton incarnation) merges back into the ring
//! through the membership protocol.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, RemoteClient};
use accelerated_ring::net::LoopbackNet;
use bytes::Bytes;

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn tcp_client_survives_daemon_restart() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let mk = |p: ParticipantId| {
        Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone()).unwrap()
    };
    let d0 = spawn_daemon(mk(members[0]), net.endpoint(members[0]));
    let d1 = spawn_daemon(mk(members[1]), net.endpoint(members[1]));
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let l0 = d0.listen(any).expect("listen d0");
    let l1 = d1.listen(any).expect("listen d1");
    let addr0 = l0.local_addr();

    let mut alice = RemoteClient::connect(addr0, "alice").expect("connect alice");
    let mut bob = RemoteClient::connect(l1.local_addr(), "bob").expect("connect bob");
    alice.join("room").unwrap();
    bob.join("room").unwrap();
    let (mut na, mut nb) = (0, 0);
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        na = members.len();
                    }
                }
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        nb = members.len();
                    }
                }
                na == 2 && nb == 2
            },
            20
        ),
        "initial 2-member group"
    );

    // Kill alice's daemon: the listener drop frees the port, the
    // daemon drains and exits, and the surviving daemon reconfigures.
    drop(l0);
    d0.shutdown().expect("clean shutdown");
    net.detach(members[0]);

    // The surviving side sees alice leave when its daemon installs the
    // shrunken configuration.
    let mut n = usize::MAX;
    assert!(
        wait_for(
            || {
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 1
            },
            20
        ),
        "surviving daemon drops the dead daemon's client"
    );

    // Restart on the same port as a fresh singleton incarnation; the
    // membership protocol merges it back into the ring once traffic
    // flows.
    let part = Participant::new_singleton(members[0], ProtocolConfig::accelerated()).unwrap();
    let d0b = spawn_daemon(part, net.endpoint(members[0]));
    let l0b = d0b.listen(addr0).expect("re-listen on the same port");
    assert_eq!(l0b.local_addr(), addr0);

    // Alice's next operation reconnects transparently and re-joins
    // "room"; the join travels the merged ring, so eventually both
    // sides see a 2-member group again.
    let mut n = 0;
    assert!(
        wait_for(
            || {
                // Reconnect happens lazily on an operation; poke until
                // the socket is re-established and the ring re-merges.
                let _ = alice.multicast(
                    &["room"],
                    ServiceType::Agreed,
                    Bytes::from_static(b"are-you-there"),
                );
                for ev in bob.drain() {
                    if let ClientEvent::Membership { members, .. } = ev {
                        n = members.len();
                    }
                }
                n == 2
            },
            30
        ),
        "group re-forms after daemon restart"
    );
    assert!(alice.reconnects() >= 1, "client redialled");

    // Traffic flows end-to-end in both directions again.
    bob.multicast(&["room"], ServiceType::Agreed, Bytes::from_static(b"wb"))
        .unwrap();
    let mut got = false;
    assert!(
        wait_for(
            || {
                for ev in alice.drain() {
                    if let ClientEvent::Message {
                        payload, sender, ..
                    } = ev
                    {
                        if payload == Bytes::from_static(b"wb") {
                            assert_eq!(sender.client, "bob");
                            got = true;
                        }
                    }
                }
                got
            },
            20
        ),
        "post-restart delivery to the reconnected client"
    );

    drop(alice);
    drop(bob);
    drop(l0b);
    drop(l1);
    d0b.shutdown().expect("clean shutdown");
    d1.shutdown().expect("clean shutdown");
}
