//! Property tests of the receive buffer against a reference model:
//! arbitrary insertion orders, delivery points, and discard points.

use accelerated_ring::core::{
    DataMessage, ParticipantId, RecvBuffer, RingId, Round, Seq, ServiceType,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn msg(seq: u64, service: ServiceType) -> DataMessage {
    DataMessage {
        ring_id: RingId::new(ParticipantId::new(0), 1),
        seq: Seq::new(seq),
        pid: ParticipantId::new(1),
        round: Round::new(1),
        service,
        after_token: false,
        payload: Bytes::from(seq.to_be_bytes().to_vec()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// local_aru always equals the longest contiguous received prefix,
    /// regardless of insertion order and duplicates.
    #[test]
    fn local_aru_matches_model(
        seqs in prop::collection::vec(1u64..64, 0..80),
    ) {
        let mut buf = RecvBuffer::new(Seq::ZERO);
        let mut have: BTreeSet<u64> = BTreeSet::new();
        for s in seqs {
            buf.insert(msg(s, ServiceType::Agreed));
            have.insert(s);
            let mut aru = 0;
            while have.contains(&(aru + 1)) {
                aru += 1;
            }
            prop_assert_eq!(buf.local_aru().as_u64(), aru);
        }
    }

    /// missing_up_to reports exactly the gaps below the limit.
    #[test]
    fn missing_matches_model(
        seqs in prop::collection::btree_set(1u64..64, 0..40),
        limit in 0u64..80,
    ) {
        let mut buf = RecvBuffer::new(Seq::ZERO);
        for &s in &seqs {
            buf.insert(msg(s, ServiceType::Agreed));
        }
        let expected: Vec<u64> =
            (1..=limit).filter(|s| !seqs.contains(s)).collect();
        let got: Vec<u64> = buf
            .missing_up_to(Seq::new(limit))
            .into_iter()
            .map(|s| s.as_u64())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Deliveries come out in exact sequence order, never beyond the
    /// contiguous prefix, and Safe messages never before the given
    /// stability watermark.
    #[test]
    fn delivery_respects_order_and_stability(
        inserts in prop::collection::vec((1u64..48, prop::bool::ANY), 0..60),
        watermarks in prop::collection::vec(0u64..48, 1..6),
    ) {
        let mut buf = RecvBuffer::new(Seq::ZERO);
        let mut delivered: Vec<u64> = Vec::new();
        let mut max_watermark = 0u64;
        let mut i = 0;
        for (s, safe) in inserts {
            let service = if safe { ServiceType::Safe } else { ServiceType::Agreed };
            buf.insert(msg(s, service));
            // Periodically advance the watermark and deliver.
            if i < watermarks.len() {
                max_watermark = max_watermark.max(watermarks[i]);
                i += 1;
            }
            for d in buf.deliver_ready(Seq::new(max_watermark)) {
                if d.service == ServiceType::Safe {
                    prop_assert!(d.seq.as_u64() <= max_watermark,
                        "safe {} beyond watermark {}", d.seq, max_watermark);
                }
                delivered.push(d.seq.as_u64());
            }
        }
        // Strictly increasing, contiguous from 1.
        for (k, &s) in delivered.iter().enumerate() {
            prop_assert_eq!(s, k as u64 + 1);
        }
        prop_assert_eq!(buf.delivered_up_to().as_u64(), delivered.len() as u64);
    }

    /// Discard never loses undelivered data and `has` stays truthful.
    #[test]
    fn discard_preserves_retransmission_truth(
        n in 1u64..40,
        discard_at in 0u64..40,
    ) {
        let mut buf = RecvBuffer::new(Seq::ZERO);
        for s in 1..=n {
            buf.insert(msg(s, ServiceType::Agreed));
        }
        let _ = buf.deliver_ready(Seq::ZERO);
        let cut = discard_at.min(n);
        buf.discard_up_to(Seq::new(cut));
        for s in 1..=n {
            prop_assert!(buf.has(Seq::new(s)), "seq {s} still counted as received");
            let held = buf.get(Seq::new(s)).is_some();
            prop_assert_eq!(held, s > cut, "seq {} held iff beyond discard point", s);
        }
    }
}
