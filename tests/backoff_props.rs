//! Property tests for the shared backoff machinery
//! ([`accelerated_ring::core::backoff`]): every delay a schedule
//! produces is bounded on both sides for *arbitrary* configurations
//! (including degenerate ones like `base > cap`), schedules are
//! reproducible from their seed, and the deterministic [`ExpShift`]
//! envelope is monotone and saturating.

use std::time::Duration;

use accelerated_ring::core::backoff::{Backoff, BackoffConfig, ExpShift};
use proptest::prelude::*;

proptest! {
    /// Every delay satisfies `min(base, cap) <= d <= cap`, the
    /// schedule yields exactly `max_attempts` delays before `None`,
    /// and `reset` restores the full budget — for arbitrary configs,
    /// including base above cap and zero durations.
    #[test]
    fn delays_are_bounded_and_budgeted(
        base_us in 0u64..5_000_000,
        cap_us in 0u64..5_000_000,
        max_attempts in 0u32..40,
        seed in any::<u64>(),
    ) {
        let cfg = BackoffConfig {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us),
            max_attempts,
        };
        let lo = cfg.base.min(cfg.cap);
        let mut b = Backoff::new(cfg, seed);
        let mut drawn = 0u32;
        while let Some(d) = b.next_delay() {
            prop_assert!(d >= lo, "delay {d:?} below min(base, cap) {lo:?}");
            prop_assert!(d <= cfg.cap, "delay {d:?} above cap {:?}", cfg.cap);
            drawn += 1;
            prop_assert!(drawn <= max_attempts, "yielded more than the budget");
        }
        prop_assert_eq!(drawn, max_attempts);
        prop_assert!(b.next_delay().is_none(), "exhausted stays exhausted");
        b.reset();
        let mut again = 0u32;
        while b.next_delay().is_some() {
            again += 1;
        }
        prop_assert_eq!(again, max_attempts, "reset restores the budget");
    }

    /// The decorrelated-jitter envelope: each delay is at most three
    /// times its predecessor (plus the one-nanosecond floor that keeps
    /// the jitter range non-empty), so the schedule cannot explode
    /// past geometric growth before the cap takes over.
    #[test]
    fn envelope_grows_at_most_geometrically(
        base_ms in 1u64..50,
        cap_ms in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let cfg = BackoffConfig {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            max_attempts: 12,
        };
        let mut b = Backoff::new(cfg, seed);
        let mut prev = cfg.base.min(cfg.cap);
        while let Some(d) = b.next_delay() {
            let limit = (prev * 3).max(cfg.base.min(cfg.cap) + Duration::from_nanos(1));
            prop_assert!(
                d <= limit.min(cfg.cap).max(cfg.base.min(cfg.cap)),
                "delay {d:?} exceeds envelope {limit:?} (prev {prev:?})"
            );
            prev = d;
        }
    }

    /// Schedules are pure functions of (config, seed): two instances
    /// produce identical delay sequences, so chaos tests replay.
    #[test]
    fn schedules_replay_from_their_seed(seed in any::<u64>()) {
        let cfg = BackoffConfig::default();
        let mut a = Backoff::new(cfg, seed);
        let mut b = Backoff::new(cfg, seed);
        for _ in 0..cfg.max_attempts {
            prop_assert_eq!(a.next_delay(), b.next_delay());
        }
        prop_assert!(a.next_delay().is_none());
    }

    /// ExpShift: the scaled interval never exceeds the cap, never
    /// drops below `min(base, cap)`, is monotone non-decreasing under
    /// `step`, and saturates at `max_shift` doublings.
    #[test]
    fn exp_shift_is_monotone_bounded_and_saturating(
        base in 1u64..1_000_000,
        cap in 1u64..u64::MAX,
        max_shift in 0u32..80,
        steps in 0usize..100,
    ) {
        let mut e = ExpShift::new(max_shift);
        let mut prev = e.scale(base, cap);
        prop_assert_eq!(prev, base.min(cap), "starts at the base");
        for _ in 0..steps {
            e.step();
            let cur = e.scale(base, cap);
            prop_assert!(cur >= prev, "scale regressed: {cur} < {prev}");
            prop_assert!(cur <= cap, "scale {cur} above cap {cap}");
            prop_assert!(cur >= base.min(cap));
            prev = cur;
        }
        prop_assert!(e.shift() <= max_shift, "shift past saturation");
        // Drive to saturation: once there, further failures cannot
        // grow the interval.
        for _ in 0..=max_shift {
            e.step();
        }
        prop_assert_eq!(e.shift(), max_shift);
        let at_sat = e.scale(base, cap);
        e.step();
        prop_assert_eq!(e.scale(base, cap), at_sat);
        e.reset();
        prop_assert_eq!(e.scale(base, cap), base.min(cap), "reset restores base");
    }
}
