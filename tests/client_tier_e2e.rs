//! End-to-end tests of the client service tier: a real (loopback)
//! daemon serving flow-controlled clients over TCP.
//!
//! Covers the ISSUE's required scenarios: 100 concurrent clients
//! seeing one total order per group, a publish-credit stall that
//! releases as messages reach Agreed order, and a deliberately slow
//! consumer that is evicted by policy without perturbing healthy
//! clients.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, DaemonHandle};
use accelerated_ring::net::LoopbackNet;
use accelerated_ring::svc::{
    serve_clients, FlowConfig, PublishError, SvcClient, SvcConfig, SvcEvent, SvcListeners,
};
use bytes::Bytes;

const DEADLINE: Duration = Duration::from_secs(60);

fn single_daemon() -> (LoopbackNet, DaemonHandle) {
    let net = LoopbackNet::new();
    let members = vec![ParticipantId::new(0)];
    let ring_id = RingId::new(members[0], 1);
    let part = Participant::new(
        members[0],
        ProtocolConfig::accelerated(),
        ring_id,
        members.clone(),
    )
    .expect("participant");
    let handle = spawn_daemon(part, net.endpoint(members[0]));
    (net, handle)
}

fn tcp_listeners() -> SvcListeners {
    SvcListeners {
        tcp: Some("127.0.0.1:0".parse().unwrap()),
        uds: None,
    }
}

/// Pumps until the client has seen its group reach `n` members.
fn wait_for_members(client: &mut SvcClient, group: &str, n: usize) {
    let deadline = Instant::now() + DEADLINE;
    let mut seen = 0;
    while seen < n {
        assert!(
            Instant::now() < deadline,
            "membership of {group} never hit {n}"
        );
        if let Some(SvcEvent::Membership { group: g, members }) =
            client.recv(Duration::from_millis(100))
        {
            if g == group {
                seen = members.len();
            }
        }
    }
}

#[test]
fn hundred_clients_agree_on_one_order_per_group() {
    const CLIENTS: usize = 100;
    const GROUPS: usize = 4;
    const PER_CLIENT: usize = 5;
    let per_group = CLIENTS / GROUPS;

    let (_net, daemon) = single_daemon();
    let svc = serve_clients(&daemon, tcp_listeners(), SvcConfig::default()).expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let group = format!("g{}", i % GROUPS);
                let name = format!("c{i}");
                let mut client = SvcClient::connect_tcp(addr, &name).expect("connect");
                client.join(&group).expect("join");
                wait_for_members(&mut client, &group, per_group);
                // Every member is in: published messages now reach the
                // whole group.
                barrier.wait();
                for k in 0..PER_CLIENT {
                    client
                        .publish(
                            &[&group],
                            ServiceType::Agreed,
                            Bytes::from(format!("{i}:{k}")),
                            DEADLINE,
                        )
                        .expect("publish");
                }
                // Collect the group's full transcript.
                let want = per_group * PER_CLIENT;
                let mut transcript: Vec<(u64, String)> = Vec::with_capacity(want);
                let deadline = Instant::now() + DEADLINE;
                while transcript.len() < want {
                    assert!(
                        Instant::now() < deadline,
                        "client {i}: got {} of {want} deliveries",
                        transcript.len()
                    );
                    if let Some(SvcEvent::Deliver {
                        ring_seq, payload, ..
                    }) = client.recv(Duration::from_millis(100))
                    {
                        transcript.push((ring_seq, String::from_utf8(payload.to_vec()).unwrap()));
                    }
                }
                (i % GROUPS, i, transcript)
            })
        })
        .collect();

    type Transcript = Vec<(u64, String)>;
    let mut by_group: Vec<Vec<(usize, Transcript)>> = vec![Vec::new(); GROUPS];
    for h in handles {
        let (g, i, transcript) = h.join().expect("client thread");
        by_group[g].push((i, transcript));
    }

    for (g, members) in by_group.iter().enumerate() {
        assert_eq!(members.len(), per_group);
        let (ref_id, reference) = &members[0];
        // Total order: every member of the group saw the identical
        // delivery sequence (payloads and ring sequence numbers).
        for (id, transcript) in members {
            assert_eq!(
                transcript, reference,
                "group g{g}: client {id} disagrees with client {ref_id}"
            );
        }
        // Ring sequence numbers never go backwards along the
        // transcript (ties are messages packed into one ring bundle).
        for w in reference.windows(2) {
            assert!(w[0].0 <= w[1].0, "ring_seq went backwards: {w:?}");
        }
        // FIFO per publisher: each sender's messages appear in
        // submission order.
        for (id, _) in members {
            let ks: Vec<usize> = reference
                .iter()
                .filter_map(|(_, p)| {
                    let (sender, k) = p.split_once(':')?;
                    (sender == id.to_string()).then(|| k.parse().unwrap())
                })
                .collect();
            assert_eq!(ks, (0..PER_CLIENT).collect::<Vec<_>>());
        }
    }
    assert_eq!(svc.stats().evicted.get(), 0, "no evictions expected");
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn credit_stall_releases_as_messages_reach_agreed() {
    let (_net, daemon) = single_daemon();
    let mut config = SvcConfig::default();
    config.flow.publish_credits = 4;
    let svc = serve_clients(&daemon, tcp_listeners(), config).expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut client = SvcClient::connect_tcp(addr, "stall").expect("connect");
    assert_eq!(client.credits(), 4);

    // Exhaust the window without pumping: the fifth publish must stall.
    for _ in 0..4 {
        client
            .try_publish(&["g"], ServiceType::Agreed, Bytes::from_static(b"x"))
            .expect("publish within credits");
    }
    assert!(matches!(
        client.try_publish(&["g"], ServiceType::Agreed, Bytes::from_static(b"x")),
        Err(PublishError::NoCredits)
    ));

    // The blocking publish waits for a CreditGrant and then proceeds;
    // run well past the window to prove credits keep cycling.
    for _ in 0..28 {
        client
            .publish(
                &["g"],
                ServiceType::Agreed,
                Bytes::from_static(b"x"),
                DEADLINE,
            )
            .expect("stalled publish released");
    }

    // All 32 eventually complete and every credit comes home.
    let deadline = Instant::now() + DEADLINE;
    let mut ordered = 0;
    while ordered < 32 {
        assert!(
            Instant::now() < deadline,
            "only {ordered} of 32 publishes ordered"
        );
        if let Some(SvcEvent::PublishOrdered { .. }) = client.recv(Duration::from_millis(100)) {
            ordered += 1;
        }
    }
    assert_eq!(client.credits(), 4, "all credits replenished");
    assert!(svc.stats().credit_grants.get() >= 32);
    svc.shutdown().expect("clean shutdown");
}

#[test]
fn slow_consumer_is_evicted_without_perturbing_others() {
    const MSGS: usize = 64;
    let (_net, daemon) = single_daemon();
    let config = SvcConfig {
        flow: FlowConfig {
            publish_credits: 128,
            delivery_window: 4,
            max_pending: 8,
            max_write_buffer: 1 << 20,
        },
        ..SvcConfig::default()
    };
    let svc = serve_clients(&daemon, tcp_listeners(), config).expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut slow = SvcClient::connect_tcp(addr, "slow").expect("connect");
    slow.set_auto_ack(false); // reads frames but never opens the window
    let mut healthy = SvcClient::connect_tcp(addr, "healthy").expect("connect");
    slow.join("g").expect("join");
    healthy.join("g").expect("join");
    wait_for_members(&mut slow, "g", 2);
    wait_for_members(&mut healthy, "g", 2);

    // The healthy consumer drains (and auto-acks) concurrently — a
    // consumer that keeps up never accumulates backlog, so the small
    // pending bound chosen to trip the slow one never applies to it.
    let consumer_thread = std::thread::spawn(move || {
        let mut got = Vec::new();
        let deadline = Instant::now() + DEADLINE;
        while got.len() < MSGS {
            assert!(
                Instant::now() < deadline,
                "healthy consumer stalled at {} of {MSGS}",
                got.len()
            );
            if let Some(SvcEvent::Deliver { payload, .. }) =
                healthy.recv(Duration::from_millis(100))
            {
                got.push(String::from_utf8(payload.to_vec()).unwrap());
            }
        }
        (healthy, got)
    });

    // Pace the publisher so the pending bound measures consumer
    // progress, not burst arrival: a consumer that acks keeps its
    // backlog near zero; one that never acks still accumulates every
    // message past its window.
    let mut publisher = SvcClient::connect_tcp(addr, "pub").expect("connect");
    let mut slow_deliveries = 0;
    let mut evict_reason = None;
    for k in 0..MSGS {
        publisher
            .publish(
                &["g"],
                ServiceType::Agreed,
                Bytes::from(format!("m{k}")),
                DEADLINE,
            )
            .expect("publish");
        // Keep the slow consumer reading (but never acking), so its
        // eviction is triggered by the ack window, not a full socket.
        match slow.recv(Duration::from_millis(5)) {
            Some(SvcEvent::Deliver { .. }) => slow_deliveries += 1,
            Some(SvcEvent::Evicted { reason }) => evict_reason = Some(reason),
            _ => {}
        }
    }

    let (mut healthy, got) = consumer_thread.join().expect("healthy consumer");
    let want: Vec<String> = (0..MSGS).map(|k| format!("m{k}")).collect();
    assert_eq!(
        got, want,
        "healthy consumer must see every message in order"
    );

    // The slow consumer received at most a window's worth before the
    // server cut it loose for pending overflow.
    let deadline = Instant::now() + DEADLINE;
    while evict_reason.is_none() {
        assert!(Instant::now() < deadline, "slow consumer never evicted");
        match slow.recv(Duration::from_millis(100)) {
            Some(SvcEvent::Deliver { .. }) => slow_deliveries += 1,
            Some(SvcEvent::Evicted { reason }) => evict_reason = Some(reason),
            _ => {}
        }
    }
    assert!(
        evict_reason.unwrap().contains("backlog"),
        "eviction should name the delivery backlog policy"
    );
    assert!(
        slow_deliveries <= 4,
        "an unacking consumer must not receive past its window (got {slow_deliveries})"
    );
    assert_eq!(
        svc.stats().evicted.get(),
        1,
        "exactly the slow consumer evicted"
    );

    // The tier keeps serving: a post-eviction publish still reaches the
    // healthy consumer (the eviction's ordered leave did not disturb
    // the group).
    publisher
        .publish(
            &["g"],
            ServiceType::Agreed,
            Bytes::from_static(b"after"),
            DEADLINE,
        )
        .expect("publish after eviction");
    let deadline = Instant::now() + DEADLINE;
    loop {
        assert!(Instant::now() < deadline, "post-eviction delivery lost");
        if let Some(SvcEvent::Deliver { payload, .. }) = healthy.recv(Duration::from_millis(100)) {
            assert_eq!(&payload[..], b"after");
            break;
        }
    }
    svc.shutdown().expect("clean shutdown");
}
