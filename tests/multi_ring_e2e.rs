//! End-to-end test of sharded multi-ring dispatch: one process runs
//! two independent token rings, the service tier routes groups to the
//! ring that owns them, and subscribers still observe *per-publisher
//! FIFO* even when a publisher alternates between groups that hash to
//! different rings — the cross-shard hold-back queue at work.
//!
//! The transcript audit is the point: each ring orders only its own
//! groups, so without the hold-back layer, interleaved publishes to
//! two rings race and arrive out of publisher order.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{DaemonConfig, ShardedDaemon};
use accelerated_ring::net::LoopbackNet;
use accelerated_ring::svc::{serve_clients_sharded, SvcClient, SvcConfig, SvcEvent, SvcListeners};
use bytes::Bytes;
use std::collections::HashMap;

const DEADLINE: Duration = Duration::from_secs(60);

/// A sharded daemon of `rings` single-member loopback rings, all
/// presenting participant 0.
fn sharded_daemon(rings: usize) -> ShardedDaemon {
    ShardedDaemon::spawn(rings, |k| {
        let pid = ParticipantId::new(0);
        let net = LoopbackNet::new();
        let part = Participant::new(
            pid,
            ProtocolConfig::accelerated(),
            RingId::new(pid, k as u64 + 1),
            vec![pid],
        )
        .expect("participant");
        (part, net.endpoint(pid), DaemonConfig::default())
    })
}

fn tcp_listeners() -> SvcListeners {
    SvcListeners {
        tcp: Some("127.0.0.1:0".parse().unwrap()),
        uds: None,
    }
}

/// Two group names the shard map places on different rings.
fn split_groups(sharded: &ShardedDaemon) -> (String, String) {
    let a = "room-0".to_string();
    let sa = sharded.shard_of(&a);
    for i in 1..1000 {
        let b = format!("room-{i}");
        if sharded.shard_of(&b) != sa {
            return (a, b);
        }
    }
    panic!("no group found on the other shard");
}

/// Pumps until the client has seen every listed group reach `n`
/// members. One loop for all groups: shards forward memberships in
/// shard order, not join order, so waiting on them one at a time
/// would discard the other group's event.
fn wait_for_members(client: &mut SvcClient, groups: &[&str], n: usize) {
    let deadline = Instant::now() + DEADLINE;
    let mut seen: HashMap<String, usize> = HashMap::new();
    while groups
        .iter()
        .any(|g| seen.get(*g).copied().unwrap_or(0) < n)
    {
        assert!(
            Instant::now() < deadline,
            "membership never hit {n} everywhere: {seen:?}"
        );
        if let Some(SvcEvent::Membership { group, members }) =
            client.recv(Duration::from_millis(100))
        {
            seen.insert(group, members.len());
        }
    }
}

#[test]
fn per_publisher_fifo_survives_cross_shard_placement() {
    const PUBLISHERS: usize = 3;
    const PER_PUBLISHER: usize = 40;

    let sharded = sharded_daemon(2);
    let (ga, gb) = split_groups(&sharded);
    let svc = serve_clients_sharded(&sharded, tcp_listeners(), SvcConfig::default())
        .expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut sub = SvcClient::connect_tcp(addr, "sub").expect("connect sub");
    assert_eq!(sub.rings(), 2, "welcome advertises the ring count");
    sub.join(&ga).expect("join a");
    sub.join(&gb).expect("join b");
    wait_for_members(&mut sub, &[&ga, &gb], 1);

    // Publishers alternate between the two rings on consecutive
    // publishes — the adversarial schedule for cross-ring ordering.
    let start = Arc::new(Barrier::new(PUBLISHERS));
    let pubs: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let start = Arc::clone(&start);
            let (ga, gb) = (ga.clone(), gb.clone());
            std::thread::spawn(move || {
                let name = format!("pub{p}");
                let mut client = SvcClient::connect_tcp(addr, &name).expect("connect pub");
                start.wait();
                for k in 0..PER_PUBLISHER {
                    let group = if k % 2 == 0 { &ga } else { &gb };
                    client
                        .publish(
                            &[group],
                            ServiceType::Agreed,
                            Bytes::from(format!("{name}:{k}")),
                            DEADLINE,
                        )
                        .expect("publish");
                }
                // Keep the connection (and its ordering floor) alive
                // until the subscriber has the full transcript.
                client
            })
        })
        .collect();

    // Transcript audit: every delivery in arrival order, tagged with
    // the shard that ordered it.
    let want = PUBLISHERS * PER_PUBLISHER;
    let mut transcript: Vec<(u16, String)> = Vec::with_capacity(want);
    let deadline = Instant::now() + DEADLINE;
    while transcript.len() < want {
        assert!(
            Instant::now() < deadline,
            "got {} of {want} deliveries",
            transcript.len()
        );
        if let Some(SvcEvent::Deliver { shard, payload, .. }) = sub.recv(Duration::from_millis(100))
        {
            transcript.push((shard, String::from_utf8(payload.to_vec()).unwrap()));
        }
    }

    // The schedule really crossed rings…
    let shards: std::collections::BTreeSet<u16> = transcript.iter().map(|(s, _)| *s).collect();
    assert!(
        shards.len() >= 2,
        "transcript only touched shards {shards:?}"
    );

    // …and each publisher's messages arrived in publish order anyway.
    let mut next: HashMap<String, usize> = HashMap::new();
    for (_, tag) in &transcript {
        let (name, k) = tag.split_once(':').expect("tag format");
        let k: usize = k.parse().unwrap();
        let slot = next.entry(name.to_string()).or_insert(0);
        assert_eq!(
            k, *slot,
            "publisher {name} out of order: saw {k}, expected {slot}"
        );
        *slot += 1;
    }
    for (name, count) in &next {
        assert_eq!(*count, PER_PUBLISHER, "{name} transcript incomplete");
    }

    for h in pubs {
        drop(h.join().expect("publisher thread"));
    }
    drop(sub);
    drop(svc);
    sharded.shutdown().expect("shutdown");
}

#[test]
fn multi_shard_publish_reaches_a_dual_member_once() {
    // One publish naming groups on both rings: a subscriber in both
    // groups sees exactly one copy (the hold-back queue collapses the
    // per-shard duplicates), matching single-ring multi-group
    // semantics.
    let sharded = sharded_daemon(2);
    let (ga, gb) = split_groups(&sharded);
    let svc = serve_clients_sharded(&sharded, tcp_listeners(), SvcConfig::default())
        .expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut sub = SvcClient::connect_tcp(addr, "sub").expect("connect sub");
    sub.join(&ga).expect("join a");
    sub.join(&gb).expect("join b");
    wait_for_members(&mut sub, &[&ga, &gb], 1);

    let mut publisher = SvcClient::connect_tcp(addr, "pub").expect("connect pub");
    for k in 0..10 {
        publisher
            .publish(
                &[&ga, &gb],
                ServiceType::Agreed,
                Bytes::from(format!("both:{k}")),
                DEADLINE,
            )
            .expect("publish");
    }

    let mut seen: Vec<String> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline && seen.len() < 10 {
        if let Some(SvcEvent::Deliver { payload, .. }) = sub.recv(Duration::from_millis(100)) {
            seen.push(String::from_utf8(payload.to_vec()).unwrap());
        }
    }
    let want: Vec<String> = (0..10).map(|k| format!("both:{k}")).collect();
    assert_eq!(seen, want, "exactly one in-order copy per publish");
    // Grace period: no late duplicate copies trickle out.
    let quiet = Instant::now() + Duration::from_secs(2);
    while Instant::now() < quiet {
        if let Some(SvcEvent::Deliver { payload, .. }) = sub.recv(Duration::from_millis(100)) {
            panic!(
                "late duplicate delivery: {}",
                String::from_utf8_lossy(&payload)
            );
        }
    }

    drop(publisher);
    drop(sub);
    drop(svc);
    sharded.shutdown().expect("shutdown");
}
