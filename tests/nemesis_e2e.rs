//! End-to-end chaos tests: the deterministic nemesis harness driving
//! virtual rings through seeded fault plans, plus a live
//! multi-threaded daemon ring perturbed through [`ChaosTransport`]
//! controls.
//!
//! The virtual-clock runs are bit-reproducible: the same (plan, seed)
//! always produces the same trace digest, so a failing schedule can be
//! replayed exactly.

use std::time::{Duration, Instant};

use accelerated_ring::core::{
    Connectivity, FaultEvent, Participant, ParticipantId, ProtocolConfig, RingId, ServiceType,
};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent};
use accelerated_ring::net::{
    nemesis::apply_connectivity, ChaosConfig, ChaosControl, ChaosTransport, LoopbackNet,
    NemesisPlan, NemesisRunner,
};
use accelerated_ring::sim::{FaultPlan, SimTime};
use bytes::Bytes;
use proptest::prelude::*;

/// The acceptance plan: message loss plus a crash plus a
/// partition/heal, on a five-node ring.
fn acceptance_plan() -> NemesisPlan {
    NemesisPlan::none()
        .crash(Duration::from_millis(25), 4)
        .partition(Duration::from_millis(60), vec![0, 0, 0, 1, 1])
        .heal(Duration::from_millis(300))
}

fn run_acceptance(seed: u64) -> accelerated_ring::net::NemesisOutcome {
    let mut r = NemesisRunner::new(
        5,
        ProtocolConfig::accelerated(),
        acceptance_plan(),
        0.05,
        seed,
    );
    for i in 0..5 {
        for k in 0..3 {
            r.submit(i, format!("h{i}-m{k}").as_bytes(), ServiceType::Agreed);
        }
    }
    // Post-heal probes from both sides of the partition: the traffic
    // that lets the separated components hear each other and merge.
    r.submit_at(
        Duration::from_millis(350),
        0,
        b"post-heal-0",
        ServiceType::Agreed,
    );
    r.submit_at(
        Duration::from_millis(350),
        3,
        b"post-heal-3",
        ServiceType::Agreed,
    );
    r.start();
    r.run(Duration::from_secs(30))
}

#[test]
fn five_node_ring_converges_under_seeded_chaos() {
    let out = run_acceptance(7);
    out.assert_clean();
    assert_eq!(out.survivors, vec![0, 1, 2, 3], "host 4 stays crashed");
    assert!(out.final_rings[4].is_none());
    let rings: Vec<_> = out.final_rings.iter().flatten().collect();
    assert!(
        rings.windows(2).all(|w| w[0] == w[1]),
        "survivors share one ring: {rings:?}"
    );
    assert!(out.dropped > 0, "the plan actually dropped messages");
    assert!(out.tokens_seen > 0);
}

#[test]
fn digests_bit_identical_across_repeats_for_three_seeds() {
    let seeds = [7u64, 21, 42];
    let mut digests = Vec::new();
    for &seed in &seeds {
        let a = run_acceptance(seed);
        let b = run_acceptance(seed);
        assert_eq!(
            a.digest, b.digest,
            "seed {seed}: repeat runs must be bit-identical"
        );
        a.assert_clean();
        digests.push(a.digest);
    }
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), seeds.len(), "seeds explore distinct runs");
}

#[test]
fn flight_recorders_dump_and_are_digest_stable() {
    // Every host's flight recorder captured protocol history (the
    // crashed host recorded events up to its crash), and identical
    // (plan, seed) runs leave bit-identical per-host event tails.
    let a = run_acceptance(7);
    let b = run_acceptance(7);
    assert_eq!(a.flight.len(), 5);
    for (host, fr) in a.flight.iter().enumerate() {
        assert!(fr.total() > 0, "host {host} recorded no events");
        assert!(!fr.dump().is_empty(), "host {host} dumped nothing");
        assert!(
            !fr.render().is_empty(),
            "host {host} renders an empty post-mortem"
        );
    }
    assert_eq!(
        a.flight_digests, b.flight_digests,
        "identical (plan, seed) must leave identical flight tails"
    );
    let c = run_acceptance(8);
    assert_ne!(
        a.flight_digests, c.flight_digests,
        "a different seed explores a different event history"
    );
}

#[test]
fn fault_plans_are_shared_between_sim_and_live() {
    // A plan authored against the simulator's clock converts losslessly
    // to the live harness's schedule and back: one fault model for
    // both stacks.
    let plan = FaultPlan::none()
        .crash(SimTime::from_nanos(2_000_000), 1)
        .partition(SimTime::from_nanos(5_000_000), vec![0, 1, 0])
        .heal(SimTime::from_nanos(9_000_000))
        .restart(SimTime::from_nanos(12_000_000), 1);
    let schedule: NemesisPlan = plan.to_schedule();
    assert_eq!(schedule.events().len(), 4);
    assert_eq!(FaultPlan::from_schedule(&schedule).to_schedule(), schedule);

    // And the converted plan drives a live-harness run directly.
    let mut r = NemesisRunner::new(3, ProtocolConfig::accelerated(), schedule, 0.0, 11);
    for i in 0..3 {
        r.submit(i, format!("pre-{i}").as_bytes(), ServiceType::Agreed);
    }
    r.submit_at(
        Duration::from_millis(14),
        0,
        b"post-restart",
        ServiceType::Agreed,
    );
    r.start();
    let out = r.run(Duration::from_secs(30));
    out.assert_clean();
    assert_eq!(out.survivors.len(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Membership convergence holds across the (seed, drop-prob,
    /// ring-size) space: after a partition heals and probe traffic
    /// flows, every survivor installs the same full-membership ring
    /// and the EVS checker stays clean.
    #[test]
    fn membership_converges_across_seeds_loss_and_sizes(
        n in 2usize..6,
        drop_prob in 0.0f64..0.10,
        seed in any::<u64>(),
    ) {
        // Split the ring roughly in half, then heal.
        let component_of: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        let plan = NemesisPlan::none()
            .partition(Duration::from_millis(30), component_of)
            .heal(Duration::from_millis(300));
        let mut r = NemesisRunner::new(
            n as u16,
            ProtocolConfig::accelerated(),
            plan,
            drop_prob,
            seed,
        );
        for i in 0..n {
            r.submit(i, format!("w{i}").as_bytes(), ServiceType::Agreed);
        }
        // Probes from both sides after the heal.
        r.submit_at(Duration::from_millis(350), 0, b"probe-a", ServiceType::Agreed);
        r.submit_at(Duration::from_millis(350), n - 1, b"probe-b", ServiceType::Agreed);
        r.start();
        let out = r.run(Duration::from_secs(60));
        prop_assert!(
            out.evs_violations.is_empty(),
            "EVS violations: {:#?}",
            out.evs_violations
        );
        prop_assert!(
            out.token_violations.is_empty(),
            "token violations: {:#?}",
            out.token_violations
        );
        prop_assert!(out.converged, "did not reconverge: {:?}", out.final_rings);
        let rings: Vec<_> = out.final_rings.iter().flatten().collect();
        prop_assert!(rings.windows(2).all(|w| w[0] == w[1]), "{rings:?}");
    }
}

// ---- live multi-threaded ring under chaos controls ------------------------

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn live_daemon_ring_partitions_and_heals_under_chaos_controls() {
    // Three real daemon threads on chaos-wrapped loopback transports.
    // The nemesis here is wall-clock: a partition is injected through
    // the shared fault model (Connectivity + apply_connectivity), the
    // isolated side reconfigures away, and after the heal the ring
    // merges back and client traffic flows end-to-end.
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..3).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let mut controls: Vec<ChaosControl> = Vec::new();
    let daemons: Vec<_> = members
        .iter()
        .map(|&p| {
            let part = Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                .unwrap();
            let chaos = ChaosTransport::new(
                net.endpoint(p),
                ChaosConfig::quiet(p.as_u16() as u64 + 1).with_loss(0.01),
            )
            .with_peers(members.clone());
            controls.push(chaos.control());
            spawn_daemon(part, chaos)
        })
        .collect();

    let clients: Vec<_> = (0..3)
        .map(|i| daemons[i].connect(&format!("c{i}")).unwrap())
        .collect();
    for c in &clients {
        c.join("g").unwrap();
    }
    let mut seen = vec![0usize; 3];
    assert!(
        wait_for(
            || {
                for (i, c) in clients.iter().enumerate() {
                    for ev in c.drain() {
                        if let ClientEvent::Membership { members, .. } = ev {
                            seen[i] = members.len();
                        }
                    }
                }
                seen.iter().all(|&s| s == 3)
            },
            30
        ),
        "initial 3-member group, got {seen:?}"
    );

    // Partition: {0, 1} | {2}.
    let mut conn = Connectivity::full(3);
    conn.apply(&FaultEvent::Partition {
        component_of: vec![0, 0, 1],
    });
    apply_connectivity(&controls, &conn);
    let mut majority = usize::MAX;
    let mut minority = usize::MAX;
    assert!(
        wait_for(
            || {
                for (i, c) in clients.iter().enumerate() {
                    for ev in c.drain() {
                        if let ClientEvent::Membership { members, .. } = ev {
                            if i == 2 {
                                minority = members.len();
                            } else {
                                majority = members.len();
                            }
                        }
                    }
                }
                majority == 2 && minority == 1
            },
            30
        ),
        "partition observed by both sides (majority={majority}, minority={minority})"
    );

    // Heal, then probe from both sides so the components hear each
    // other and merge (tokens alone never cross ring boundaries).
    conn.apply(&FaultEvent::Heal);
    apply_connectivity(&controls, &conn);
    let mut seen = vec![0usize; 3];
    assert!(
        wait_for(
            || {
                let _ = clients[0].multicast(&["g"], ServiceType::Agreed, Bytes::from_static(b"a"));
                let _ = clients[2].multicast(&["g"], ServiceType::Agreed, Bytes::from_static(b"b"));
                for (i, c) in clients.iter().enumerate() {
                    for ev in c.drain() {
                        if let ClientEvent::Membership { members, .. } = ev {
                            seen[i] = members.len();
                        }
                    }
                }
                seen.iter().all(|&s| s == 3)
            },
            60
        ),
        "ring re-merges after heal, got {seen:?}"
    );

    // End-to-end traffic across the healed ring.
    clients[2]
        .multicast(&["g"], ServiceType::Agreed, Bytes::from_static(b"healed"))
        .unwrap();
    let mut got = false;
    assert!(
        wait_for(
            || {
                for ev in clients[0].drain() {
                    if let ClientEvent::Message { payload, .. } = ev {
                        if payload == Bytes::from_static(b"healed") {
                            got = true;
                        }
                    }
                }
                got
            },
            30
        ),
        "post-heal delivery"
    );

    drop(clients);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}
