//! End-to-end test: three Spread-style daemons over *real UDP sockets*
//! on localhost, with clients joining groups and exchanging totally
//! ordered messages — the full stack the paper ships (protocol +
//! daemon architecture + dual-socket UDP transport).

use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, DaemonHandle};
use accelerated_ring::net::{PeerMap, UdpTransport};
use bytes::Bytes;

fn udp_daemons(n: u16, base_port: u16) -> Option<Vec<DaemonHandle>> {
    // Probe for a free port range (tests may run concurrently).
    for attempt in 0..20u16 {
        let base = base_port + attempt * 64;
        let map = PeerMap::localhost(n, base);
        let members: Vec<ParticipantId> = (0..n).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let mut transports = Vec::new();
        let mut ok = true;
        for &p in &members {
            match UdpTransport::bind(p, map.clone()) {
                Ok(t) => transports.push(t),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let daemons = members
            .iter()
            .zip(transports)
            .map(|(&p, t)| {
                let part =
                    Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                        .expect("valid ring");
                spawn_daemon(part, t)
            })
            .collect();
        return Some(daemons);
    }
    None
}

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn udp_ring_total_order_across_daemons() {
    let Some(daemons) = udp_daemons(3, 47100) else {
        eprintln!("skipping: no free UDP port range");
        return;
    };
    let clients: Vec<_> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| d.connect(&format!("c{i}")).expect("connect"))
        .collect();
    for c in &clients {
        c.join("orders").expect("join");
    }
    // Wait until every client sees the full group.
    let mut sizes = vec![0usize; clients.len()];
    assert!(
        wait_for(
            || {
                for (i, c) in clients.iter().enumerate() {
                    for ev in c.drain() {
                        if let ClientEvent::Membership { members, .. } = ev {
                            sizes[i] = members.len();
                        }
                    }
                }
                sizes.iter().all(|&s| s == 3)
            },
            30
        ),
        "group formed over UDP: {sizes:?}"
    );

    // Every client multicasts; everyone must deliver all 9 messages in
    // the identical order.
    for (i, c) in clients.iter().enumerate() {
        for k in 0..3 {
            c.multicast(
                &["orders"],
                ServiceType::Agreed,
                Bytes::from(format!("c{i}-m{k}")),
            )
            .expect("multicast");
        }
    }
    let mut logs: Vec<Vec<String>> = vec![Vec::new(); clients.len()];
    assert!(
        wait_for(
            || {
                for (i, c) in clients.iter().enumerate() {
                    for ev in c.drain() {
                        if let ClientEvent::Message { payload, .. } = ev {
                            logs[i].push(String::from_utf8_lossy(&payload).into_owned());
                        }
                    }
                }
                logs.iter().all(|l| l.len() >= 9)
            },
            30
        ),
        "all messages delivered over UDP: {:?}",
        logs.iter().map(Vec::len).collect::<Vec<_>>()
    );
    assert_eq!(logs[0].len(), 9);
    assert_eq!(logs[0], logs[1], "identical order at c0 and c1");
    assert_eq!(logs[1], logs[2], "identical order at c1 and c2");

    drop(clients);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}

#[test]
fn udp_safe_delivery_round_trip() {
    let Some(daemons) = udp_daemons(2, 48900) else {
        eprintln!("skipping: no free UDP port range");
        return;
    };
    let a = daemons[0].connect("a").expect("connect");
    let b = daemons[1].connect("b").expect("connect");
    a.join("g").expect("join");
    b.join("g").expect("join");
    assert!(wait_for(
        || {
            let mut n = 0;
            for ev in a.drain() {
                if let ClientEvent::Membership { members, .. } = ev {
                    n = members.len();
                }
            }
            n == 2
        },
        30
    ));
    b.multicast(&["g"], ServiceType::Safe, Bytes::from_static(b"stable"))
        .expect("multicast");
    assert!(
        wait_for(
            || a.drain().iter().any(|e| matches!(
                e,
                ClientEvent::Message {
                    service: ServiceType::Safe,
                    ..
                }
            )),
            30
        ),
        "safe message delivered over UDP"
    );
    drop((a, b));
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}
