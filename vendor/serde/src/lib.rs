//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and
//! metrics types for forward compatibility, but never actually invokes
//! a serializer (there is no `serde_json` or similar in the dependency
//! tree). This stub therefore provides the two traits as markers with
//! no required methods, and the `derive` feature re-exports no-op
//! derive macros from `serde_derive` that emit empty impls.
//!
//! If real serialization is ever needed, swap this vendored crate for
//! the genuine `serde` by restoring the registry dependency.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_marker {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_marker!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
