//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, ranges,
//! tuples (≤ 8), [`Just`], [`any`], [`prop_oneof!`], simple char-class
//! string strategies, and the `collection`/`bool`/`option` modules —
//! over a deterministic seeded RNG. Unlike the real crate there is no
//! shrinking: a failing case reports its seed, case index, and the
//! generated inputs, which is enough to reproduce (generation is a pure
//! function of the per-test seed).
//!
//! Case count comes from [`ProptestConfig::with_cases`] and can be
//! overridden globally with the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic RNG handed to [`Strategy::generate`].
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`. `n` must be non-zero.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
///
/// The stub keeps proptest's shape (`Value` associated type,
/// `prop_map`, `boxed`) but generates directly from an RNG instead of
/// building shrinkable value trees.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f` applied to this one's values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a single cloned value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a whole type's value space; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )*};
}
range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy_impls {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
tuple_strategy_impls!(A);
tuple_strategy_impls!(A, B);
tuple_strategy_impls!(A, B, C);
tuple_strategy_impls!(A, B, C, D);
tuple_strategy_impls!(A, B, C, D, E);
tuple_strategy_impls!(A, B, C, D, E, F);
tuple_strategy_impls!(A, B, C, D, E, F, G);
tuple_strategy_impls!(A, B, C, D, E, F, G, H);

/// String-valued strategy from a simplified regex pattern.
///
/// Supports literal characters, `[a-z]`-style classes (ranges and
/// single characters), and the quantifiers `{n}`, `{n,m}`, `?`, `*`,
/// `+` (unbounded repetition capped at 8). This covers the char-class
/// patterns the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                for cc in chars.by_ref() {
                    match cc {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range: reuse `prev` as the low end; the
                            // high end is consumed on the next pass.
                            class.push('-');
                        }
                        _ => {
                            if class.last() == Some(&'-') && prev.is_some() {
                                class.pop();
                                let lo = class.pop().expect("range low end");
                                for x in lo..=cc {
                                    class.push(x);
                                }
                                prev = None;
                            } else {
                                class.push(cc);
                                prev = Some(cc);
                            }
                        }
                    }
                }
                assert!(!class.is_empty(), "empty character class in pattern");
                class
            }
            '\\' => vec![chars.next().expect("dangling escape in pattern")],
            _ => vec![c],
        };
        let (lo, hi) = match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad {n,m} quantifier"),
                        b.trim().parse().expect("bad {n,m} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1usize, 1usize),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let idx = rng.below(choices.len() as u64) as usize;
            out.push(choices[idx]);
        }
    }
    out
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo + 1) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy producing vectors whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy producing sets with up to `size` elements
    /// (duplicates collapse, matching real proptest's behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            for _ in 0..target {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for both boolean values; see [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Returns a strategy producing `None` one time in four and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-test configuration; see [`ProptestConfig::with_cases`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the per-case loop for one property; called by generated code.
///
/// Each case gets an RNG seeded from the test name and case index, so
/// runs are reproducible without any persisted state. On failure the
/// case index, seed, and generated inputs are printed before the panic
/// propagates.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    for i in 0..cases {
        let seed = fnv1a(name) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        let mut desc = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest '{name}': case {i} of {cases} failed (seed {seed:#018x})\n  \
                 inputs: {desc}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) {...}`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__rng, __desc| {
                $(
                    let __value = $crate::Strategy::generate(&($strat), __rng);
                    __desc.push_str(stringify!($arg));
                    __desc.push_str(" = ");
                    __desc.push_str(&format!("{:?}; ", __value));
                    let $arg = __value;
                )+
                $body
            });
        }
    )*};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, collection, option};
    }
}

// Re-exported for use in doctests and downstream unit tests.
pub use collection::SizeRange;

#[allow(unused_imports)]
mod sanity {
    // Compile-time check that the prelude names resolve.
    use crate::prelude::*;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet as StdBTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u16..9, b in 1usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Collections respect their size ranges; maps apply.
        #[test]
        fn collections_and_maps(
            v in prop::collection::vec(any::<u8>(), 2..6),
            s in prop::collection::btree_set(0u64..100, 0..10),
            t in (0u8..4, prop_oneof![Just("x".to_string()), "[a-d]"]),
            o in prop::option::of(any::<u32>()),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
            let _: StdBTreeSet<u64> = s;
            prop_assert!(t.0 < 4);
            prop_assert!(t.1 == "x" || ('a'..='d').contains(&t.1.chars().next().unwrap()));
            if let Some(x) = o {
                let _ = x;
            }
            let _ = flag;
            let doubled = Just(21u32).prop_map(|x| x * 2);
            prop_assert_eq!(crate::Strategy::generate(&doubled, &mut super::TestRng::from_seed(0)), 42);
            prop_assert_ne!(1, 2);
        }
    }

    #[test]
    fn pattern_strings() {
        let mut rng = super::TestRng::from_seed(7);
        for _ in 0..50 {
            let s = super::generate_from_pattern("[a-d]", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
            let r = super::generate_from_pattern("x[0-1]{2,4}", &mut rng);
            assert!(r.starts_with('x') && r.len() >= 3 && r.len() <= 5);
        }
    }

    #[test]
    fn deterministic_given_name() {
        let cfg = ProptestConfig::with_cases(5);
        let mut first: Vec<u64> = Vec::new();
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases(&cfg, "det", |rng, _| first.push(rng.next_u64()));
        crate::run_cases(&cfg, "det", |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
