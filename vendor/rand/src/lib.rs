//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (xoshiro256**
//! seeded through SplitMix64) and the [`Rng`] extension methods the
//! workspace uses: `gen::<T>()`, `gen_range(..)` over integer ranges,
//! and `gen_bool`. The sequences differ from the real crate's StdRng
//! (which is ChaCha12), but every use in this workspace only requires
//! determinism-given-seed, not a specific stream.

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** seeded via
    /// SplitMix64. (The real crate uses ChaCha12; only
    /// determinism-given-seed matters here.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=3);
            assert!(w <= 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
