//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the [`channel`] module subset the workspace uses:
//! [`channel::unbounded`], [`channel::bounded`], cloneable senders,
//! blocking/timeout/non-blocking receives, and the matching error
//! types. Built on `std::sync::{Mutex, Condvar}`; the `select!` macro
//! is intentionally absent (the one former call site now uses a
//! dual-queue mailbox instead).

/// Multi-producer single-consumer channels with crossbeam's API shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is waiting.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed without a message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if !inner.receiver_alive {
                    return Err(SendError(value));
                }
                let full = matches!(inner.cap, Some(c) if inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] at capacity,
        /// [`TrySendError::Disconnected`] if the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if !inner.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if matches!(inner.cap, Some(c) if inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when all senders are gone and the
        /// queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Receives, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, remaining)
                    .unwrap();
                inner = guard;
                if result.timed_out() && inner.queue.is_empty() {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if nothing is waiting,
        /// [`TryRecvError::Disconnected`] when all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Iterator draining already-queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receiver_alive = false;
            inner.queue.clear();
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_detected_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx2, rx2) = unbounded::<u32>();
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx2.recv().unwrap(), 9);
        assert!(rx2.recv().is_err());
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = 0;
        while got < 100 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
            got += 1;
        }
        t.join().unwrap();
    }

    #[test]
    fn try_iter_drains() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let v: Vec<u32> = rx.try_iter().collect();
        assert_eq!(v, vec![1, 2]);
    }
}
