//! Offline stand-in for the `bytes` crate.
//!
//! The build environment for this repository has no access to
//! crates.io, so the workspace vendors minimal implementations of its
//! third-party dependencies. This crate reimplements the subset of the
//! `bytes` 1.x API the workspace uses: [`Bytes`] (cheaply cloneable,
//! immutable byte buffer), [`BytesMut`] (growable builder), and the
//! [`Buf`]/[`BufMut`] read/write cursors with big-endian accessors.
//!
//! Semantics match the real crate for the covered surface; performance
//! characteristics are close enough for tests and benchmarks (shared
//! `Arc` storage, amortized growth).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    inner: Inner,
    off: usize,
    len: usize,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Default for Inner {
    fn default() -> Self {
        Inner::Static(&[])
    }
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            inner: Inner::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            inner: Inner::Static(data),
            off: 0,
            len: data.len(),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(v) => v.as_slice(),
        };
        &full[self.off..self.off + self.len]
    }

    /// Returns a slice of self for the provided range, sharing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            inner: self.inner.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Splits the buffer at `at`; self keeps `[0, at)`, the returned
    /// buffer holds `[at, len)`. Storage is shared.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_off out of bounds");
        let tail = Bytes {
            inner: self.inner.clone(),
            off: self.off + at,
            len: self.len - at,
        };
        self.len = at;
        tail
    }

    /// Splits the buffer at `at`; self keeps `[at, len)`, the returned
    /// buffer holds `[0, at)`. Storage is shared.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to out of bounds");
        let head = Bytes {
            inner: self.inner.clone(),
            off: self.off,
            len: at,
        };
        self.off += at;
        self.len -= at;
        head
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            inner: Inner::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, used to build messages before freezing them
/// into immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Resizes to `new_len`, filling any new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Shortens the buffer to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Splits off the tail starting at `at`, leaving `[0, at)` in self.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            data: self.data.split_off(at),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

macro_rules! buf_get_impl {
    ($this:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let mut arr = [0u8; N];
        $this.copy_to_slice(&mut arr);
        <$ty>::from_be_bytes(arr)
    }};
}

/// Read access to a buffer of bytes, advancing an internal cursor.
///
/// Big-endian (`get_*`) accessors panic if the buffer is too short,
/// matching the real crate; callers bounds-check first.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the buffer into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        buf_get_impl!(self, u8)
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        buf_get_impl!(self, u16)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        buf_get_impl!(self, u32)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        buf_get_impl!(self, u64)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        buf_get_impl!(self, i64)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance past end");
        self.off += cnt;
        self.len -= cnt;
    }
}

/// Write access to a growable buffer with big-endian appenders.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_sharing() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4), Bytes::from(vec![2, 3, 4]));
        let mut d = b.clone();
        let tail = d.split_off(2);
        assert_eq!(&d[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
    }

    #[test]
    fn bufmut_and_buf_roundtrip() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090a0b0c0d0e);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        assert_eq!(r.chunk(), b"xy");
        assert_eq!(r.remaining(), 2);
        r.advance(2);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16();
    }

    #[test]
    fn static_and_string_constructors() {
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(Bytes::from(String::from("abc")), Bytes::from_static(b"abc"));
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from_static(b"abc"));
        assert!(Bytes::new().is_empty());
    }
}
