//! No-op `Serialize`/`Deserialize` derive macros for the vendored
//! serde stub. The stub traits have no required methods, so the derives
//! emit empty impl blocks. Implemented with the bare `proc_macro` API —
//! no `syn`/`quote` — because the build environment is offline.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct or enum a derive is attached to.
///
/// Handles leading attributes (`#[...]`), doc comments, and visibility
/// qualifiers (`pub`, `pub(crate)` …). Returns `None` for generic types
/// (none exist at this workspace's derive sites) so the derive degrades
/// to emitting nothing rather than invalid code.
fn type_name(input: &TokenStream) -> Option<(String, bool)> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the following [...] group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(name)) = iter.next() {
                        let generic = matches!(
                            iter.peek(),
                            Some(TokenTree::Punct(p)) if p.as_char() == '<'
                        );
                        return Some((name.to_string(), generic));
                    }
                    return None;
                }
                // `pub`, `crate`, etc: keep scanning.
            }
            _ => {}
        }
    }
    None
}

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}
