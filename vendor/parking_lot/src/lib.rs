//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! [`Mutex::lock`] returns the guard directly (a poisoned std mutex —
//! only possible after a panic while locked — is recovered rather than
//! propagated, matching parking_lot's behaviour of never poisoning).

use std::fmt;
use std::sync::TryLockError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: reports whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, result) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(poison) => poison.into_inner(),
            };
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Replaces the std guard inside a [`MutexGuard`] through `f`, used to
/// thread ownership through std's by-value condvar wait API.
fn take_mut_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `guard.inner` is restored with a live guard for the same
    // mutex before this function returns; the brief window where the
    // slot holds a bitwise copy is not observable because `f` cannot
    // access `guard`.
    unsafe {
        let slot = &mut guard.inner as *mut std::sync::MutexGuard<'a, T>;
        let owned = slot.read();
        let replacement = f(owned);
        slot.write(replacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*guard {
            assert!(Instant::now() < deadline, "missed wakeup");
            cv.wait_for(&mut guard, Duration::from_millis(50));
        }
        drop(guard);
        t.join().unwrap();
    }
}
