//! Offline stand-in for the `criterion` crate.
//!
//! Provides a functional subset — [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — so `cargo bench`
//! runs and prints per-benchmark mean times. There is no statistical
//! analysis, warm-up tuning, or report output; numbers are indicative
//! only. The iteration count can be set with `CRITERION_STUB_ITERS`
//! (default 30).

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Benchmark driver; handed to each `criterion_group!` target.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        Criterion {
            iters: iters.max(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_name();
        run_one(&name, self.iters, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub
    /// uses a fixed iteration count instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, so per-unit
    /// rates can be derived.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_name());
        run_one(&name, self.criterion.iters, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_name());
        run_one(&name, self.criterion.iters, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Conversion of `&str` / [`BenchmarkId`] into a display name.
pub trait IntoBenchmarkName {
    /// The display name used in output.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-batch setup sizing (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    iters: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / per_iter_ns * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter_ns * 1e9)
        }
        None => String::new(),
    };
    println!("bench {name}: {per_iter_ns:.0} ns/iter{rate}");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2) + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
