//! # Accelerated Ring
//!
//! A from-scratch Rust reproduction of the **Accelerated Ring** protocol
//! ("Fast Total Ordering for Modern Data Centers", Babay & Amir,
//! ICDCS 2016): a privilege-based token-ring protocol for reliable,
//! totally ordered multicast in data-center networks.
//!
//! The key idea of the protocol is that a ring participant may pass the
//! token to its successor *before* it finishes multicasting its messages
//! for the round. The token is updated to reflect every message the
//! participant will send during the round, so the successor can start
//! multicasting immediately; the predecessor flushes its remaining
//! (post-token) messages in parallel. This accelerates the token rotation
//! and overlaps sending, improving throughput *and* latency at once.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`core`] ([`ar_core`]) — the sans-io protocol state machine: ordering,
//!   flow control, retransmission, Agreed/Safe delivery, and the
//!   Totem-style membership algorithm (Extended Virtual Synchrony).
//! * [`sim`] ([`ar_sim`]) — a discrete-event network/host simulator used to
//!   reproduce the paper's 1-gigabit and 10-gigabit evaluation.
//! * [`net`] ([`ar_net`]) — real transports: UDP multicast/unicast with the
//!   paper's dual-socket priority scheme, plus an in-process loopback.
//! * [`daemon`] ([`ar_daemon`]) — a Spread-style client/daemon architecture
//!   with groups, open-group semantics and multi-group multicast.
//! * [`log`] ([`ar_log`]) — a durable segmented append-only log for
//!   crash-safe Safe delivery: CRC-framed records, pluggable fsync
//!   policies, and torn-tail repair on recovery (`ard --log-dir`).
//! * [`telemetry`] ([`ar_telemetry`]) — low-overhead observability:
//!   bounded log-linear histograms, a lock-free metrics registry, and a
//!   flight recorder of recent protocol events (served live by `ard
//!   --metrics-addr`).
//! * [`explore`] ([`ar_explore`]) — systematic testing: a bounded
//!   deterministic state-space explorer with DPOR-style pruning over
//!   the sans-io core, and a structure-aware seeded fuzzer for the
//!   wire codec (`cargo run -p ar-explore`).
//! * [`svc`] ([`ar_svc`]) — the client service tier: a versioned
//!   length-prefixed client protocol over TCP and Unix sockets, one
//!   thread multiplexing thousands of flow-controlled client
//!   connections, publish credits and delivery windows, and
//!   slow-consumer eviction (the `ard`/`arclient` binaries live here).
//!
//! ## Quickstart
//!
//! ```
//! use accelerated_ring::core::{ProtocolConfig, ProtocolVariant};
//!
//! // The accelerated protocol versus the original Totem Ring baseline
//! // differ in configuration: the original never multicasts after the
//! // token and uses the conservative priority-switching method.
//! let accel = ProtocolConfig::accelerated();
//! let orig = ProtocolConfig::original();
//! assert!(accel.accelerated_window > 0);
//! assert_eq!(orig.accelerated_window, 0);
//! assert_eq!(orig.variant, ProtocolVariant::Original);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses that regenerate each figure of the paper.

pub use ar_core as core;
pub use ar_daemon as daemon;
pub use ar_explore as explore;
pub use ar_log as log;
pub use ar_net as net;
pub use ar_sim as sim;
pub use ar_svc as svc;
pub use ar_telemetry as telemetry;
